#ifndef WSIE_TEXT_NGRAM_H_
#define WSIE_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wsie::text {

/// Character n-gram frequency profile, the building block of the n-gram
/// language filter (Sect. 2.1) in the style of Cavnar & Trenkle.
class CharNgramProfile {
 public:
  /// Creates an empty profile over n-grams of size `n` (1..8).
  explicit CharNgramProfile(int n = 3) : n_(n) {}

  /// Accumulates the n-grams of `text` into the profile.
  void Add(std::string_view text);

  /// Returns the `top_k` most frequent n-grams, most frequent first; ties
  /// break lexicographically for determinism.
  std::vector<std::string> TopK(size_t top_k) const;

  /// Out-of-place rank distance between this profile's top-k list and
  /// another's (lower = more similar). `max_rank` bounds the penalty for
  /// n-grams missing from `other`.
  static double RankDistance(const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

  int n() const { return n_; }
  size_t distinct_ngrams() const { return counts_.size(); }
  uint64_t total_ngrams() const { return total_; }

 private:
  int n_;
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Word-level n-gram counts (used by corpus text generators and analytics).
class WordNgramCounter {
 public:
  explicit WordNgramCounter(int n = 2) : n_(n) {}

  /// Adds the n-grams over `tokens` (joined with a single space).
  void Add(const std::vector<std::string>& tokens);

  uint64_t Count(const std::string& gram) const;
  size_t distinct() const { return counts_.size(); }
  uint64_t total() const { return total_; }

  const std::unordered_map<std::string, uint64_t>& counts() const {
    return counts_;
  }

 private:
  int n_;
  std::unordered_map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_NGRAM_H_
