#include "text/sentence_splitter.h"

#include <cctype>

#include "common/string_util.h"

namespace wsie::text {
namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

}  // namespace

SentenceSplitter::SentenceSplitter(SentenceSplitterOptions options)
    : options_(options),
      abbreviations_({"e.g", "i.e", "etc", "cf", "vs", "dr", "prof", "fig",
                      "figs", "tab", "no", "vol", "al", "approx", "resp",
                      "mr", "mrs", "ms", "st", "jr", "sr", "inc", "ltd"}) {}

bool SentenceSplitter::IsAbbreviation(std::string_view text,
                                      size_t period_pos) const {
  // Extract the word immediately preceding the period.
  size_t end = period_pos;
  size_t begin = end;
  while (begin > 0) {
    char c = text[begin - 1];
    if (IsSpace(c) || c == '(' || c == '"') break;
    --begin;
  }
  if (begin == end) return false;
  std::string word = AsciiToLower(text.substr(begin, end - begin));
  // Single capital initial: "J. Meier".
  if (word.size() == 1 && std::isalpha(static_cast<unsigned char>(text[begin])))
    return true;
  for (const auto& abbr : abbreviations_) {
    if (word == abbr) return true;
  }
  // Dotted abbreviations like "e.g" already contain a period.
  if (word.find('.') != std::string::npos && word.size() <= 6) return true;
  return false;
}

std::vector<SentenceSpan> SentenceSplitter::Split(
    std::string_view text) const {
  std::vector<SentenceSpan> spans;
  const size_t n = text.size();
  size_t start = 0;
  auto emit = [&](size_t begin, size_t end) {
    // Trim whitespace inside the span boundaries.
    while (begin < end && IsSpace(text[begin])) ++begin;
    while (end > begin && IsSpace(text[end - 1])) --end;
    if (end <= begin) return;
    if (options_.max_sentence_chars > 0) {
      // Force-split runaway spans (web text without sentence structure).
      while (end - begin > options_.max_sentence_chars) {
        size_t cut = begin + options_.max_sentence_chars;
        // Back off to the previous whitespace to avoid splitting a token.
        size_t probe = cut;
        while (probe > begin && !IsSpace(text[probe - 1])) --probe;
        if (probe == begin) probe = cut;
        spans.push_back(SentenceSpan{begin, probe});
        begin = probe;
        while (begin < end && IsSpace(text[begin])) ++begin;
      }
    }
    if (end > begin) spans.push_back(SentenceSpan{begin, end});
  };
  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    if (options_.break_on_newline && c == '\n') {
      emit(start, i);
      start = i + 1;
      continue;
    }
    if (c != '.' && c != '!' && c != '?') continue;
    // Consume a run of terminal punctuation ("?!", "...").
    size_t j = i;
    while (j + 1 < n &&
           (text[j + 1] == '.' || text[j + 1] == '!' || text[j + 1] == '?' ||
            text[j + 1] == ')' || text[j + 1] == '"'))
      ++j;
    if (c == '.' && IsAbbreviation(text, i)) {
      i = j;
      continue;
    }
    // A boundary requires whitespace then an uppercase letter, digit, or end.
    size_t k = j + 1;
    while (k < n && text[k] == ' ') ++k;
    bool at_end = k >= n;
    bool next_ok =
        !at_end && (std::isupper(static_cast<unsigned char>(text[k])) ||
                    std::isdigit(static_cast<unsigned char>(text[k])) ||
                    text[k] == '(' || text[k] == '"' || text[k] == '\n');
    if (k == j + 1 && !at_end && text[k] != '\n') next_ok = false;  // no space
    if (at_end || next_ok) {
      emit(start, j + 1);
      start = j + 1;
      i = j;
    }
  }
  emit(start, n);
  return spans;
}

}  // namespace wsie::text
