#include "text/bag_of_words.h"

#include <algorithm>

#include "common/char_class.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wsie::text {

BagOfWords::BagOfWords(BagOfWordsOptions options)
    : options_(options),
      stopwords_({"a",    "an",   "and",  "are",  "as",   "at",   "be",
                  "by",   "for",  "from", "has",  "have", "he",   "in",
                  "is",   "it",   "its",  "of",   "on",   "or",   "that",
                  "the",  "this", "to",   "was",  "were", "will", "with",
                  "we",   "you",  "they", "but",  "not",  "can",  "their",
                  "which", "been", "more", "also", "these", "such", "other"}) {
  std::sort(stopwords_.begin(), stopwords_.end());
}

bool BagOfWords::IsStopword(std::string_view term) const {
  return std::binary_search(stopwords_.begin(), stopwords_.end(),
                            std::string(term));
}

TermCounts BagOfWords::Featurize(std::string_view doc_text) const {
  static const Tokenizer kTokenizer;
  TermCounts counts;
  for (const Token& tok : kTokenizer.Tokenize(doc_text)) {
    std::string term = options_.lowercase ? AsciiToLower(tok.text)
                                          : std::string(tok.text);
    if (term.size() < options_.min_token_length) continue;
    if (term.size() > options_.max_token_length) continue;
    if (options_.drop_pure_numbers &&
        std::all_of(term.begin(), term.end(), [](char c) {
          return IsAsciiDigit(c) || c == '.' || c == ',';
        }))
      continue;
    if (options_.drop_stopwords && IsStopword(term)) continue;
    // Skip bare punctuation tokens.
    if (!std::any_of(term.begin(), term.end(),
                     [](char c) { return IsAsciiAlnum(c); }))
      continue;
    ++counts[term];
  }
  return counts;
}

}  // namespace wsie::text
