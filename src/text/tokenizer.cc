#include "text/tokenizer.h"

#include "common/char_class.h"

namespace wsie::text {
namespace {

// Word characters are alphanumerics plus apostrophe, plus hyphen when the
// tokenizer keeps hyphenated compounds intact. Classification comes from the
// branch-free ASCII tables in common/char_class.h rather than the
// locale-dependent <cctype> calls, so tokenization is byte-deterministic
// across libcs.
inline bool IsWordChar(char c, bool keep_hyphen) {
  if (IsAsciiAlnum(c)) return true;
  if (c == '\'') return true;
  if (keep_hyphen && c == '-') return true;
  return false;
}

}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view text,
                                       size_t base_offset) const {
  std::vector<Token> tokens;
  TokenizeInto(text, base_offset, &tokens);
  return tokens;
}

void Tokenizer::TokenizeInto(std::string_view text, size_t base_offset,
                             std::vector<Token>* tokens) const {
  tokens->clear();
  size_t i = 0;
  const size_t n = text.size();
  auto emit = [&](size_t begin, size_t end) {
    if (end > begin) {
      // Zero-copy: the token text is a view of the caller's buffer.
      tokens->push_back(Token{text.substr(begin, end - begin),
                              base_offset + begin, base_offset + end});
    }
  };
  while (i < n) {
    while (i < n && IsAsciiSpace(text[i])) ++i;
    if (i >= n) break;
    size_t start = i;
    while (i < n && !IsAsciiSpace(text[i])) ++i;
    size_t end = i;
    if (!options_.split_punctuation) {
      emit(start, end);
      continue;
    }
    // Peel leading punctuation characters one by one.
    size_t core_begin = start;
    while (core_begin < end &&
           !IsWordChar(text[core_begin], options_.keep_internal_hyphens)) {
      emit(core_begin, core_begin + 1);
      ++core_begin;
    }
    // Peel trailing punctuation (collected, then emitted after the core).
    size_t core_end = end;
    while (core_end > core_begin &&
           !IsWordChar(text[core_end - 1], options_.keep_internal_hyphens)) {
      --core_end;
    }
    // A trailing hyphen/apostrophe with no following word char is punctuation.
    while (core_end > core_begin &&
           (text[core_end - 1] == '-' || text[core_end - 1] == '\'')) {
      --core_end;
    }
    emit(core_begin, core_end);
    for (size_t p = core_end; p < end; ++p) emit(p, p + 1);
  }
}

}  // namespace wsie::text
