#include "text/tokenizer.h"

#include <cctype>

namespace wsie::text {
namespace {

bool IsWordChar(char c, bool keep_hyphen) {
  unsigned char u = static_cast<unsigned char>(c);
  if (std::isalnum(u)) return true;
  if (c == '\'' ) return true;
  if (keep_hyphen && c == '-') return true;
  return false;
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view text,
                                       size_t base_offset) const {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto emit = [&](size_t begin, size_t end) {
    if (end > begin) {
      tokens.push_back(Token{std::string(text.substr(begin, end - begin)),
                             base_offset + begin, base_offset + end});
    }
  };
  while (i < n) {
    while (i < n && IsSpace(text[i])) ++i;
    if (i >= n) break;
    size_t start = i;
    while (i < n && !IsSpace(text[i])) ++i;
    size_t end = i;
    if (!options_.split_punctuation) {
      emit(start, end);
      continue;
    }
    // Peel leading punctuation characters one by one.
    size_t core_begin = start;
    while (core_begin < end &&
           !IsWordChar(text[core_begin], options_.keep_internal_hyphens)) {
      emit(core_begin, core_begin + 1);
      ++core_begin;
    }
    // Peel trailing punctuation (collected, then emitted after the core).
    size_t core_end = end;
    while (core_end > core_begin &&
           !IsWordChar(text[core_end - 1], options_.keep_internal_hyphens)) {
      --core_end;
    }
    // A trailing hyphen/apostrophe with no following word char is punctuation.
    while (core_end > core_begin &&
           (text[core_end - 1] == '-' || text[core_end - 1] == '\'')) {
      --core_end;
    }
    emit(core_begin, core_end);
    for (size_t p = core_end; p < end; ++p) emit(p, p + 1);
  }
  return tokens;
}

}  // namespace wsie::text
