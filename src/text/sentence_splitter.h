#ifndef WSIE_TEXT_SENTENCE_SPLITTER_H_
#define WSIE_TEXT_SENTENCE_SPLITTER_H_

#include <string_view>
#include <vector>

#include "text/token.h"

namespace wsie::text {

/// Options for sentence boundary detection.
struct SentenceSplitterOptions {
  /// Maximum sentence length in characters; 0 means unlimited. The paper
  /// (Sect. 4.2 / 5) discusses imposing such a cap because boilerplate
  /// extraction can feed the splitter text without sentence structure,
  /// producing pathological >2000-character "sentences" that crash tools.
  size_t max_sentence_chars = 0;
  /// Treat newlines as hard sentence breaks (useful for web text where list
  /// items and headings carry no terminal punctuation).
  bool break_on_newline = true;
};

/// Rule-based sentence boundary detector with abbreviation handling.
///
/// Splits at '.', '!', '?' followed by whitespace and an uppercase letter or
/// digit, avoiding splits after common abbreviations ("e.g.", "Dr.", "Fig.")
/// and single capital initials. On malformed web text (no punctuation at
/// all), the optional max-length cap force-splits runaway spans.
class SentenceSplitter {
 public:
  explicit SentenceSplitter(SentenceSplitterOptions options = {});

  /// Returns sentence spans over `doc_text` (offsets into the input).
  std::vector<SentenceSpan> Split(std::string_view doc_text) const;

 private:
  bool IsAbbreviation(std::string_view text, size_t period_pos) const;

  SentenceSplitterOptions options_;
  std::vector<std::string> abbreviations_;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_SENTENCE_SPLITTER_H_
