#ifndef WSIE_TEXT_TOKEN_H_
#define WSIE_TEXT_TOKEN_H_

#include <cstddef>
#include <string_view>
#include <vector>

namespace wsie::text {

/// A token with character offsets into the source text (half-open range).
///
/// `text` is a NON-OWNING view into the buffer that was tokenized: the
/// tokenizer allocates nothing per token, and every downstream consumer
/// reads the document bytes in place. The producer of a token vector is
/// responsible for keeping the source buffer alive and unmoved for as long
/// as the tokens are used (see DESIGN.md "Hot-path memory model"). Holders
/// that outlive the tokenization scope (e.g. `ie::TaggedSentence`) pin the
/// buffer explicitly.
struct Token {
  std::string_view text;
  size_t begin = 0;
  size_t end = 0;

  friend bool operator==(const Token& a, const Token& b) {
    return a.text == b.text && a.begin == b.begin && a.end == b.end;
  }
};

/// A sentence span with character offsets into the source text.
struct SentenceSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }

  friend bool operator==(const SentenceSpan& a, const SentenceSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// A tokenized sentence: its span plus its tokens.
struct Sentence {
  SentenceSpan span;
  std::vector<Token> tokens;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_TOKEN_H_
