#ifndef WSIE_TEXT_TOKEN_H_
#define WSIE_TEXT_TOKEN_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wsie::text {

/// A token with character offsets into the source text (half-open range).
struct Token {
  std::string text;
  size_t begin = 0;
  size_t end = 0;

  friend bool operator==(const Token& a, const Token& b) {
    return a.text == b.text && a.begin == b.begin && a.end == b.end;
  }
};

/// A sentence span with character offsets into the source text.
struct SentenceSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }

  friend bool operator==(const SentenceSpan& a, const SentenceSpan& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// A tokenized sentence: its span plus its tokens.
struct Sentence {
  SentenceSpan span;
  std::vector<Token> tokens;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_TOKEN_H_
