#ifndef WSIE_TEXT_BAG_OF_WORDS_H_
#define WSIE_TEXT_BAG_OF_WORDS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace wsie::text {

/// Sparse term-frequency vector keyed by term string.
using TermCounts = std::unordered_map<std::string, uint32_t>;

/// Options for the Bag-of-Words featurizer used by the crawl classifier.
struct BagOfWordsOptions {
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 2;
  /// Drop tokens longer than this many characters (markup debris guard).
  size_t max_token_length = 40;
  bool drop_stopwords = true;
  bool drop_pure_numbers = true;
};

/// Converts raw text into a Bag-of-Words model (Sect. 2.1: net text of each
/// crawled page is converted to a BoW and classified for relevance).
class BagOfWords {
 public:
  explicit BagOfWords(BagOfWordsOptions options = {});

  /// Tokenizes `doc_text` and returns term counts.
  TermCounts Featurize(std::string_view doc_text) const;

  /// True if `term` is in the built-in English stopword list.
  bool IsStopword(std::string_view term) const;

 private:
  BagOfWordsOptions options_;
  std::vector<std::string> stopwords_;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_BAG_OF_WORDS_H_
