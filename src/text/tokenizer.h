#ifndef WSIE_TEXT_TOKENIZER_H_
#define WSIE_TEXT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "text/token.h"

namespace wsie::text {

/// Options for the rule-based tokenizer.
struct TokenizerOptions {
  /// Keep hyphenated compounds ("GAD-67") as single tokens. Biomedical
  /// entity names frequently contain internal hyphens and digits, so the
  /// default is true (as in the biomedical tokenizers the paper wraps).
  bool keep_internal_hyphens = true;
  /// Split trailing sentence punctuation into its own token.
  bool split_punctuation = true;
};

/// Rule-based word tokenizer with character offsets.
///
/// Splits on whitespace, then peels leading/trailing punctuation into
/// separate tokens while keeping alphanumeric cores (possibly with internal
/// hyphens, digits, and apostrophes) intact.
///
/// Tokens are zero-copy views into `sentence_text`: the caller must keep
/// that buffer alive and unmoved while the tokens are in use.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenizes `sentence_text`; offsets are relative to `base_offset`.
  std::vector<Token> Tokenize(std::string_view sentence_text,
                              size_t base_offset = 0) const;

  /// Allocation-reusing variant: clears `*tokens` and fills it in place so a
  /// hot loop can amortize the vector's capacity across sentences.
  void TokenizeInto(std::string_view sentence_text, size_t base_offset,
                    std::vector<Token>* tokens) const;

 private:
  TokenizerOptions options_;
};

}  // namespace wsie::text

#endif  // WSIE_TEXT_TOKENIZER_H_
