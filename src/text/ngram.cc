#include "text/ngram.h"

#include <algorithm>
#include <cctype>

namespace wsie::text {

void CharNgramProfile::Add(std::string_view text) {
  // Normalize: lowercase letters, collapse non-letters to '_' (word marker),
  // as in classic n-gram language identification.
  std::string norm;
  norm.reserve(text.size() + 2);
  norm.push_back('_');
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) {
      norm.push_back(static_cast<char>(std::tolower(u)));
    } else if (!norm.empty() && norm.back() != '_') {
      norm.push_back('_');
    }
  }
  if (norm.back() != '_') norm.push_back('_');
  if (norm.size() < static_cast<size_t>(n_)) return;
  for (size_t i = 0; i + n_ <= norm.size(); ++i) {
    ++counts_[norm.substr(i, n_)];
    ++total_;
  }
}

std::vector<std::string> CharNgramProfile::TopK(size_t top_k) const {
  std::vector<std::pair<std::string, uint64_t>> items(counts_.begin(),
                                                      counts_.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (items.size() > top_k) items.resize(top_k);
  std::vector<std::string> out;
  out.reserve(items.size());
  for (auto& [gram, count] : items) out.push_back(std::move(gram));
  return out;
}

double CharNgramProfile::RankDistance(const std::vector<std::string>& a,
                                      const std::vector<std::string>& b) {
  // Out-of-place measure: for each gram in `a`, the absolute rank difference
  // in `b`, with a max penalty for grams absent from `b`.
  std::unordered_map<std::string_view, size_t> rank_b;
  rank_b.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) rank_b.emplace(b[i], i);
  const double max_penalty = static_cast<double>(b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = rank_b.find(a[i]);
    if (it == rank_b.end()) {
      total += max_penalty;
    } else {
      double diff = static_cast<double>(i) - static_cast<double>(it->second);
      total += diff < 0 ? -diff : diff;
    }
  }
  return a.empty() ? max_penalty : total / static_cast<double>(a.size());
}

void WordNgramCounter::Add(const std::vector<std::string>& tokens) {
  if (tokens.size() < static_cast<size_t>(n_)) return;
  for (size_t i = 0; i + n_ <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (int k = 1; k < n_; ++k) {
      gram.push_back(' ');
      gram.append(tokens[i + k]);
    }
    ++counts_[gram];
    ++total_;
  }
}

uint64_t WordNgramCounter::Count(const std::string& gram) const {
  auto it = counts_.find(gram);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace wsie::text
