#include "ie/aho_corasick.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <deque>

namespace wsie::ie {

AhoCorasick::AhoCorasick() {
  Node root;
  std::memset(root.children, -1, sizeof(root.children));
  next_.push_back(root);
  output_.emplace_back();
}

int AhoCorasick::FoldChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (u >= 'a' && u <= 'z') return u - 'a';            // 0..25
  if (u >= 'A' && u <= 'Z') return u - 'A';            // fold case
  if (u >= '0' && u <= '9') return 26 + (u - '0');     // 26..35
  switch (c) {
    case '-':
      return 36;
    case ' ':
      return 37;
    case '\'':
      return 38;
    case '.':
      return 39;
    case ',':
      return 40;
    case '(':
      return 41;
    case ')':
      return 42;
    case '/':
      return 43;
    case '+':
      return 44;
    default:
      return 45;  // everything else folds to one bucket
  }
}

uint32_t AhoCorasick::AddPattern(std::string_view pattern) {
  built_ = false;
  int node = 0;
  for (char c : pattern) {
    int sym = FoldChar(c);
    if (next_[node].children[sym] < 0) {
      Node fresh;
      std::memset(fresh.children, -1, sizeof(fresh.children));
      next_[node].children[sym] = static_cast<int32_t>(next_.size());
      next_.push_back(fresh);
      output_.emplace_back();
    }
    node = next_[node].children[sym];
  }
  uint32_t id = static_cast<uint32_t>(num_patterns_++);
  output_[node].push_back(id);
  pattern_lengths_.push_back(static_cast<uint32_t>(pattern.size()));
  return id;
}

void AhoCorasick::Build() {
  fail_.assign(next_.size(), 0);
  std::deque<int> queue;
  for (int sym = 0; sym < kAlphabet; ++sym) {
    int child = next_[0].children[sym];
    if (child < 0) {
      next_[0].children[sym] = 0;  // goto-automaton: missing root edges loop
    } else {
      fail_[child] = 0;
      queue.push_back(child);
    }
  }
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    // Merge output of the failure target (suffix matches).
    const auto& fail_out = output_[fail_[node]];
    if (!fail_out.empty()) {
      output_[node].insert(output_[node].end(), fail_out.begin(),
                           fail_out.end());
    }
    for (int sym = 0; sym < kAlphabet; ++sym) {
      int child = next_[node].children[sym];
      if (child < 0) {
        next_[node].children[sym] = next_[fail_[node]].children[sym];
      } else {
        fail_[child] = next_[fail_[node]].children[sym];
        queue.push_back(child);
      }
    }
  }
  built_ = true;
}

std::vector<AutomatonMatch> AhoCorasick::FindAll(std::string_view text) const {
  std::vector<AutomatonMatch> matches;
  int node = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    node = next_[node].children[FoldChar(text[i])];
    for (uint32_t pid : output_[node]) {
      size_t len = pattern_lengths_[pid];
      matches.push_back(AutomatonMatch{pid, i + 1 - len, i + 1});
    }
  }
  return matches;
}

std::vector<AutomatonMatch> AhoCorasick::KeepLongest(
    std::vector<AutomatonMatch> matches) {
  if (matches.empty()) return matches;
  std::sort(matches.begin(), matches.end(),
            [](const AutomatonMatch& a, const AutomatonMatch& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;  // longer first at same start
            });
  std::vector<AutomatonMatch> kept;
  size_t covered_end = 0;
  for (const auto& m : matches) {
    if (m.begin >= covered_end) {
      kept.push_back(m);
      covered_end = m.end;
    } else if (m.end > covered_end) {
      // Overlapping but extends past: keep only if not contained.
      // Contained matches are dropped (longest-match-wins).
      kept.push_back(m);
      covered_end = m.end;
    }
  }
  return kept;
}

size_t AhoCorasick::ApproxMemoryBytes() const {
  size_t bytes = next_.size() * sizeof(Node) + fail_.size() * sizeof(int32_t);
  for (const auto& out : output_) bytes += out.size() * sizeof(uint32_t) + 8;
  bytes += pattern_lengths_.size() * sizeof(uint32_t);
  return bytes;
}

}  // namespace wsie::ie
