#include "ie/crf_tagger.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace wsie::ie {
namespace {

constexpr int kLabelO = 0;
constexpr int kLabelB = 1;
constexpr int kLabelI = 2;

std::string WordShape(std::string_view token) {
  std::string shape;
  shape.reserve(token.size());
  for (char c : token) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isupper(u)) {
      shape.push_back('A');
    } else if (std::islower(u)) {
      shape.push_back('a');
    } else if (std::isdigit(u)) {
      shape.push_back('0');
    } else {
      shape.push_back('-');
    }
  }
  return shape;
}

std::string CompressShape(std::string_view shape) {
  std::string out;
  for (char c : shape) {
    if (out.empty() || out.back() != c) out.push_back(c);
  }
  return out;
}

void AddTokenFeatures(const std::string& prefix, std::string_view token,
                      ml::PositionFeatures& out) {
  std::string lower = wsie::AsciiToLower(token);
  std::string shape = WordShape(token);
  out.push_back(ml::HashFeature(prefix + "w=" + std::string(token)));
  out.push_back(ml::HashFeature(prefix + "lw=" + lower));
  out.push_back(ml::HashFeature(prefix + "sh=" + shape));
  out.push_back(ml::HashFeature(prefix + "csh=" + CompressShape(shape)));
  for (size_t len = 2; len <= 4 && len <= token.size(); ++len) {
    out.push_back(
        ml::HashFeature(prefix + "pre=" + std::string(token.substr(0, len))));
    out.push_back(ml::HashFeature(
        prefix + "suf=" + std::string(token.substr(token.size() - len))));
  }
  if (wsie::ContainsDigit(token))
    out.push_back(ml::HashFeature(prefix + "hasdigit"));
  if (token.find('-') != std::string_view::npos)
    out.push_back(ml::HashFeature(prefix + "hashyphen"));
  if (wsie::IsAllUpper(token)) out.push_back(ml::HashFeature(prefix + "allcaps"));
  if (!token.empty() && std::isupper(static_cast<unsigned char>(token[0])))
    out.push_back(ml::HashFeature(prefix + "initcap"));
  size_t bucket = token.size() <= 2   ? 2
                  : token.size() <= 4 ? 4
                  : token.size() <= 8 ? 8
                                      : 9;
  out.push_back(ml::HashFeature(prefix + "len=" + std::to_string(bucket)));
}

}  // namespace

std::vector<ml::PositionFeatures> ExtractNerFeatures(
    const std::vector<text::Token>& tokens) {
  std::vector<ml::PositionFeatures> features(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    ml::PositionFeatures& f = features[i];
    f.reserve(64);
    AddTokenFeatures("", tokens[i].text, f);
    // Internal character trigrams of the focus token (BANNER-style char
    // n-gram features; important for morphology-heavy biomedical names).
    const std::string& w = tokens[i].text;
    for (size_t c = 0; c + 3 <= w.size(); ++c) {
      f.push_back(ml::HashFeature("c3=" + w.substr(c, 3)));
    }
    if (i > 0) {
      AddTokenFeatures("p1:", tokens[i - 1].text, f);
    } else {
      f.push_back(ml::HashFeature("BOS"));
    }
    if (i + 1 < tokens.size()) {
      AddTokenFeatures("n1:", tokens[i + 1].text, f);
    } else {
      f.push_back(ml::HashFeature("EOS"));
    }
    // +-2 context word identities.
    if (i > 1) {
      f.push_back(ml::HashFeature("p2w=" + AsciiToLower(tokens[i - 2].text)));
    }
    if (i + 2 < tokens.size()) {
      f.push_back(ml::HashFeature("n2w=" + AsciiToLower(tokens[i + 2].text)));
    }
  }
  return features;
}

CrfTagger::CrfTagger(EntityType type, size_t feature_dim)
    : type_(type), crf_(3, feature_dim) {}

void CrfTagger::Train(const std::vector<TaggedSentence>& sentences,
                      const ml::CrfTrainOptions& options) {
  std::vector<ml::CrfInstance> data;
  data.reserve(sentences.size());
  for (const TaggedSentence& sentence : sentences) {
    ml::CrfInstance instance;
    instance.features = ExtractNerFeatures(sentence.tokens);
    instance.labels.assign(sentence.tokens.size(), kLabelO);
    for (const GoldSpan& span : sentence.spans) {
      for (size_t t = span.begin_token;
           t < span.end_token && t < instance.labels.size(); ++t) {
        instance.labels[t] = (t == span.begin_token) ? kLabelB : kLabelI;
      }
    }
    data.push_back(std::move(instance));
  }
  crf_.Train(data, options);
}

std::vector<Annotation> CrfTagger::TagSentence(
    uint64_t doc_id, uint32_t sentence_id, std::string_view doc_text,
    const std::vector<text::Token>& tokens) const {
  std::vector<Annotation> annotations;
  if (tokens.empty()) return annotations;
  std::vector<int> labels = crf_.Decode(ExtractNerFeatures(tokens));
  size_t i = 0;
  while (i < labels.size()) {
    if (labels[i] != kLabelB && labels[i] != kLabelI) {
      ++i;
      continue;
    }
    size_t begin = i;
    ++i;
    while (i < labels.size() && labels[i] == kLabelI) ++i;
    Annotation a;
    a.doc_id = doc_id;
    a.sentence_id = sentence_id;
    a.begin = static_cast<uint32_t>(tokens[begin].begin);
    a.end = static_cast<uint32_t>(tokens[i - 1].end);
    a.entity_type = type_;
    a.method = AnnotationMethod::kMl;
    if (a.end <= doc_text.size() && a.begin < a.end) {
      a.surface = std::string(doc_text.substr(a.begin, a.end - a.begin));
    } else {
      // Offsets relative to a sentence slice: recover from token texts.
      a.surface = tokens[begin].text;
      for (size_t t = begin + 1; t < i; ++t) {
        a.surface += " " + tokens[t].text;
      }
    }
    annotations.push_back(std::move(a));
  }
  return annotations;
}

std::vector<Annotation> MergeHybrid(
    std::vector<Annotation> crf_annotations,
    const std::vector<Annotation>& dict_annotations) {
  auto overlaps = [](const Annotation& a, const Annotation& b) {
    return a.doc_id == b.doc_id && a.begin < b.end && b.begin < a.end;
  };
  std::vector<Annotation> merged = std::move(crf_annotations);
  for (const Annotation& d : dict_annotations) {
    bool clashed = false;
    for (const Annotation& c : merged) {
      if (overlaps(c, d)) {
        clashed = true;
        break;
      }
    }
    if (!clashed) {
      Annotation copy = d;
      copy.method = AnnotationMethod::kMl;  // hybrid output counts as ML
      merged.push_back(std::move(copy));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Annotation& a, const Annotation& b) {
              if (a.doc_id != b.doc_id) return a.doc_id < b.doc_id;
              return a.begin < b.begin;
            });
  return merged;
}

std::vector<Annotation> FilterTlaAnnotations(
    std::vector<Annotation> annotations, size_t* num_removed) {
  size_t removed = 0;
  std::vector<Annotation> kept;
  kept.reserve(annotations.size());
  for (auto& a : annotations) {
    bool is_tla = a.surface.size() == 3 && wsie::IsAllUpper(a.surface);
    if (is_tla && a.method == AnnotationMethod::kMl) {
      ++removed;
      continue;
    }
    kept.push_back(std::move(a));
  }
  if (num_removed != nullptr) *num_removed = removed;
  return kept;
}

}  // namespace wsie::ie
