#include "ie/crf_tagger.h"

#include <algorithm>

#include "common/char_class.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wsie::ie {
namespace {

constexpr int kLabelO = 0;
constexpr int kLabelB = 1;
constexpr int kLabelI = 2;

constexpr char ShapeChar(char c) {
  if (IsAsciiUpper(c)) return 'A';
  if (IsAsciiLower(c)) return 'a';
  if (IsAsciiDigit(c)) return '0';
  return '-';
}

std::string WordShape(std::string_view token) {
  std::string shape;
  shape.reserve(token.size());
  for (char c : token) shape.push_back(ShapeChar(c));
  return shape;
}

std::string CompressShape(std::string_view shape) {
  std::string out;
  for (char c : shape) {
    if (out.empty() || out.back() != c) out.push_back(c);
  }
  return out;
}

void AddTokenFeatures(const std::string& prefix, std::string_view token,
                      ml::PositionFeatures& out) {
  std::string lower = wsie::AsciiToLower(token);
  std::string shape = WordShape(token);
  out.push_back(ml::HashFeature(prefix + "w=" + std::string(token)));
  out.push_back(ml::HashFeature(prefix + "lw=" + lower));
  out.push_back(ml::HashFeature(prefix + "sh=" + shape));
  out.push_back(ml::HashFeature(prefix + "csh=" + CompressShape(shape)));
  for (size_t len = 2; len <= 4 && len <= token.size(); ++len) {
    out.push_back(
        ml::HashFeature(prefix + "pre=" + std::string(token.substr(0, len))));
    out.push_back(ml::HashFeature(
        prefix + "suf=" + std::string(token.substr(token.size() - len))));
  }
  if (wsie::ContainsDigit(token))
    out.push_back(ml::HashFeature(prefix + "hasdigit"));
  if (token.find('-') != std::string_view::npos)
    out.push_back(ml::HashFeature(prefix + "hashyphen"));
  if (wsie::IsAllUpper(token)) out.push_back(ml::HashFeature(prefix + "allcaps"));
  if (!token.empty() && IsAsciiUpper(token[0]))
    out.push_back(ml::HashFeature(prefix + "initcap"));
  size_t bucket = token.size() <= 2   ? 2
                  : token.size() <= 4 ? 4
                  : token.size() <= 8 ? 8
                                      : 9;
  out.push_back(ml::HashFeature(prefix + "len=" + std::to_string(bucket)));
}

// ---------------------------------------------------------------------------
// Streaming (allocation-free) feature extraction.
//
// Every feature template is "<prefix><name>=<payload>" hashed with FNV-1a.
// FNV-1a folds bytes left-to-right, so the hash of the concatenation equals
// continuing the hash of the fixed prefix over the payload bytes. All fixed
// parts are folded at compile time into seeds below; per token we fold the
// payload bytes ONCE for all three context prefixes simultaneously, and
// fixed-payload features (indicator flags, length buckets, BOS/EOS) are
// full compile-time constants. Result: zero strings built, hashes
// byte-identical to AddTokenFeatures (golden-tested in hotpath_test.cc).
// ---------------------------------------------------------------------------

struct PrefixSeeds {
  uint64_t w = 0, lw = 0, sh = 0, csh = 0, pre = 0, suf = 0;
  uint64_t hasdigit = 0, hashyphen = 0, allcaps = 0, initcap = 0;
  uint64_t len[4] = {0, 0, 0, 0};  // buckets 2, 4, 8, 9
};

constexpr PrefixSeeds MakeSeeds(std::string_view prefix) {
  PrefixSeeds s;
  const uint64_t p = ml::HashFeatureSeed(ml::kFnvOffsetBasis, prefix);
  s.w = ml::HashFeatureSeed(p, "w=");
  s.lw = ml::HashFeatureSeed(p, "lw=");
  s.sh = ml::HashFeatureSeed(p, "sh=");
  s.csh = ml::HashFeatureSeed(p, "csh=");
  s.pre = ml::HashFeatureSeed(p, "pre=");
  s.suf = ml::HashFeatureSeed(p, "suf=");
  s.hasdigit = ml::HashFeatureSeed(p, "hasdigit");
  s.hashyphen = ml::HashFeatureSeed(p, "hashyphen");
  s.allcaps = ml::HashFeatureSeed(p, "allcaps");
  s.initcap = ml::HashFeatureSeed(p, "initcap");
  s.len[0] = ml::HashFeatureSeed(p, "len=2");
  s.len[1] = ml::HashFeatureSeed(p, "len=4");
  s.len[2] = ml::HashFeatureSeed(p, "len=8");
  s.len[3] = ml::HashFeatureSeed(p, "len=9");
  return s;
}

// Context prefixes, in emission-slot order: focus, previous, next.
constexpr PrefixSeeds kSeeds[3] = {MakeSeeds(""), MakeSeeds("p1:"),
                                   MakeSeeds("n1:")};
constexpr uint64_t kBosHash = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "BOS");
constexpr uint64_t kEosHash = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "EOS");
constexpr uint64_t kC3Seed = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "c3=");
constexpr uint64_t kP2wSeed = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "p2w=");
constexpr uint64_t kN2wSeed = ml::HashFeatureSeed(ml::kFnvOffsetBasis, "n2w=");

/// All prefix-continued hashes for one token, computed in a single pass
/// over its bytes and reused wherever the token appears as focus / p1 / n1 /
/// p2w / n2w context (the seed path recomputed lower/shape per appearance).
struct TokenHashes {
  uint64_t w[3], lw[3], sh[3], csh[3];
  uint64_t pre[3][3], suf[3][3];  // [prefix][affix_len - 2]
  uint64_t p2w, n2w;
  uint8_t num_affix;       // valid entries in pre/suf (lengths 2..4)
  uint8_t len_bucket_idx;  // index into PrefixSeeds::len
  bool hasdigit, hashyphen, allcaps, initcap;
};

void ComputeTokenHashes(std::string_view token, TokenHashes* out) {
  for (int p = 0; p < 3; ++p) {
    out->w[p] = kSeeds[p].w;
    out->lw[p] = kSeeds[p].lw;
    out->sh[p] = kSeeds[p].sh;
    out->csh[p] = kSeeds[p].csh;
  }
  out->p2w = kP2wSeed;
  out->n2w = kN2wSeed;
  out->hasdigit = false;
  out->hashyphen = false;
  out->allcaps = !token.empty();
  out->initcap = !token.empty() && IsAsciiUpper(token[0]);
  char last_shape = '\0';
  for (char c : token) {
    const char lc = AsciiLowerChar(c);
    const char sc = ShapeChar(c);
    for (int p = 0; p < 3; ++p) {
      out->w[p] = ml::HashFeatureChar(out->w[p], c);
      out->lw[p] = ml::HashFeatureChar(out->lw[p], lc);
      out->sh[p] = ml::HashFeatureChar(out->sh[p], sc);
    }
    if (sc != last_shape) {
      for (int p = 0; p < 3; ++p) {
        out->csh[p] = ml::HashFeatureChar(out->csh[p], sc);
      }
      last_shape = sc;
    }
    out->p2w = ml::HashFeatureChar(out->p2w, lc);
    out->n2w = ml::HashFeatureChar(out->n2w, lc);
    out->hasdigit |= IsAsciiDigit(c);
    out->hashyphen |= c == '-';
    out->allcaps &= IsAsciiUpper(c);
  }
  const size_t max_affix = std::min<size_t>(4, token.size());
  out->num_affix = max_affix >= 2 ? static_cast<uint8_t>(max_affix - 1) : 0;
  for (int p = 0; p < 3; ++p) {
    uint64_t h = kSeeds[p].pre;
    for (size_t i = 0; i < max_affix; ++i) {
      h = ml::HashFeatureChar(h, token[i]);
      if (i >= 1) out->pre[p][i - 1] = h;
    }
    for (size_t len = 2; len <= max_affix; ++len) {
      out->suf[p][len - 2] =
          ml::HashFeatureSeed(kSeeds[p].suf, token.substr(token.size() - len));
    }
  }
  out->len_bucket_idx = token.size() <= 2   ? 0
                        : token.size() <= 4 ? 1
                        : token.size() <= 8 ? 2
                                            : 3;
}

/// Emits the AddTokenFeatures-equivalent hashes for context slot `p`
/// (0=focus, 1=p1:, 2=n1:), in the exact seed-path feature order.
void EmitTokenFeatures(const TokenHashes& h, int p,
                       ml::HashedFeatureMatrix* out) {
  out->Add(h.w[p]);
  out->Add(h.lw[p]);
  out->Add(h.sh[p]);
  out->Add(h.csh[p]);
  for (int a = 0; a < h.num_affix; ++a) {
    out->Add(h.pre[p][a]);
    out->Add(h.suf[p][a]);
  }
  if (h.hasdigit) out->Add(kSeeds[p].hasdigit);
  if (h.hashyphen) out->Add(kSeeds[p].hashyphen);
  if (h.allcaps) out->Add(kSeeds[p].allcaps);
  if (h.initcap) out->Add(kSeeds[p].initcap);
  out->Add(kSeeds[p].len[h.len_bucket_idx]);
}

}  // namespace

std::vector<ml::PositionFeatures> ExtractNerFeatures(
    const std::vector<text::Token>& tokens) {
  std::vector<ml::PositionFeatures> features(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    ml::PositionFeatures& f = features[i];
    f.reserve(64);
    AddTokenFeatures("", tokens[i].text, f);
    // Internal character trigrams of the focus token (BANNER-style char
    // n-gram features; important for morphology-heavy biomedical names).
    std::string_view w = tokens[i].text;
    for (size_t c = 0; c + 3 <= w.size(); ++c) {
      f.push_back(ml::HashFeature("c3=" + std::string(w.substr(c, 3))));
    }
    if (i > 0) {
      AddTokenFeatures("p1:", tokens[i - 1].text, f);
    } else {
      f.push_back(ml::HashFeature("BOS"));
    }
    if (i + 1 < tokens.size()) {
      AddTokenFeatures("n1:", tokens[i + 1].text, f);
    } else {
      f.push_back(ml::HashFeature("EOS"));
    }
    // +-2 context word identities.
    if (i > 1) {
      f.push_back(ml::HashFeature("p2w=" + AsciiToLower(tokens[i - 2].text)));
    }
    if (i + 2 < tokens.size()) {
      f.push_back(ml::HashFeature("n2w=" + AsciiToLower(tokens[i + 2].text)));
    }
  }
  return features;
}

void ExtractNerFeaturesInto(const std::vector<text::Token>& tokens,
                            ml::HashedFeatureMatrix* out) {
  thread_local std::vector<TokenHashes> token_hashes;
  const size_t n = tokens.size();
  if (token_hashes.size() < n) token_hashes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ComputeTokenHashes(tokens[i].text, &token_hashes[i]);
  }
  out->Reset();
  for (size_t i = 0; i < n; ++i) {
    EmitTokenFeatures(token_hashes[i], 0, out);
    std::string_view w = tokens[i].text;
    for (size_t c = 0; c + 3 <= w.size(); ++c) {
      out->Add(ml::HashFeatureSeed(kC3Seed, w.substr(c, 3)));
    }
    if (i > 0) {
      EmitTokenFeatures(token_hashes[i - 1], 1, out);
    } else {
      out->Add(kBosHash);
    }
    if (i + 1 < n) {
      EmitTokenFeatures(token_hashes[i + 1], 2, out);
    } else {
      out->Add(kEosHash);
    }
    if (i > 1) out->Add(token_hashes[i - 2].p2w);
    if (i + 2 < n) out->Add(token_hashes[i + 2].n2w);
    out->FinishPosition();
  }
}

TaggedSentence MakeTaggedSentence(std::string_view sentence_text) {
  static const text::Tokenizer tokenizer;
  TaggedSentence sentence;
  auto buffer = std::make_shared<const std::string>(sentence_text);
  sentence.tokens = tokenizer.Tokenize(*buffer);
  sentence.buffer = std::move(buffer);
  return sentence;
}

CrfTagger::CrfTagger(EntityType type, size_t feature_dim)
    : type_(type), crf_(3, feature_dim) {}

void CrfTagger::Train(const std::vector<TaggedSentence>& sentences,
                      const ml::CrfTrainOptions& options) {
  std::vector<ml::CrfInstance> data;
  data.reserve(sentences.size());
  for (const TaggedSentence& sentence : sentences) {
    ml::CrfInstance instance;
    instance.features = ExtractNerFeatures(sentence.tokens);
    instance.labels.assign(sentence.tokens.size(), kLabelO);
    for (const GoldSpan& span : sentence.spans) {
      for (size_t t = span.begin_token;
           t < span.end_token && t < instance.labels.size(); ++t) {
        instance.labels[t] = (t == span.begin_token) ? kLabelB : kLabelI;
      }
    }
    data.push_back(std::move(instance));
  }
  crf_.Train(data, options);
}

std::vector<Annotation> CrfTagger::TagSentence(
    uint64_t doc_id, uint32_t sentence_id, std::string_view doc_text,
    const std::vector<text::Token>& tokens) const {
  std::vector<Annotation> annotations;
  if (tokens.empty()) return annotations;
  // Hot path: stream features into a flat matrix and Viterbi-decode with
  // reused per-thread scratch — no allocation per sentence at steady state
  // (beyond the returned annotations themselves).
  thread_local ml::HashedFeatureMatrix features;
  thread_local ml::LinearChainCrf::DecodeScratch decode_scratch;
  thread_local std::vector<int> labels;
  ExtractNerFeaturesInto(tokens, &features);
  crf_.Decode(features, &decode_scratch, &labels);
  size_t i = 0;
  while (i < labels.size()) {
    if (labels[i] != kLabelB && labels[i] != kLabelI) {
      ++i;
      continue;
    }
    size_t begin = i;
    ++i;
    while (i < labels.size() && labels[i] == kLabelI) ++i;
    Annotation a;
    a.doc_id = doc_id;
    a.sentence_id = sentence_id;
    a.begin = static_cast<uint32_t>(tokens[begin].begin);
    a.end = static_cast<uint32_t>(tokens[i - 1].end);
    a.entity_type = type_;
    a.method = AnnotationMethod::kMl;
    if (a.end <= doc_text.size() && a.begin < a.end) {
      a.surface = std::string(doc_text.substr(a.begin, a.end - a.begin));
    } else {
      // Offsets relative to a sentence slice: recover from token texts.
      a.surface = std::string(tokens[begin].text);
      for (size_t t = begin + 1; t < i; ++t) {
        a.surface += ' ';
        a.surface += tokens[t].text;
      }
    }
    annotations.push_back(std::move(a));
  }
  return annotations;
}

std::vector<Annotation> MergeHybrid(
    std::vector<Annotation> crf_annotations,
    const std::vector<Annotation>& dict_annotations) {
  auto overlaps = [](const Annotation& a, const Annotation& b) {
    return a.doc_id == b.doc_id && a.begin < b.end && b.begin < a.end;
  };
  std::vector<Annotation> merged = std::move(crf_annotations);
  for (const Annotation& d : dict_annotations) {
    bool clashed = false;
    for (const Annotation& c : merged) {
      if (overlaps(c, d)) {
        clashed = true;
        break;
      }
    }
    if (!clashed) {
      Annotation copy = d;
      copy.method = AnnotationMethod::kMl;  // hybrid output counts as ML
      merged.push_back(std::move(copy));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Annotation& a, const Annotation& b) {
              if (a.doc_id != b.doc_id) return a.doc_id < b.doc_id;
              return a.begin < b.begin;
            });
  return merged;
}

std::vector<Annotation> FilterTlaAnnotations(
    std::vector<Annotation> annotations, size_t* num_removed) {
  size_t removed = 0;
  std::vector<Annotation> kept;
  kept.reserve(annotations.size());
  for (auto& a : annotations) {
    bool is_tla = a.surface.size() == 3 && wsie::IsAllUpper(a.surface);
    if (is_tla && a.method == AnnotationMethod::kMl) {
      ++removed;
      continue;
    }
    kept.push_back(std::move(a));
  }
  if (num_removed != nullptr) *num_removed = removed;
  return kept;
}

}  // namespace wsie::ie
