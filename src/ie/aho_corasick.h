#ifndef WSIE_IE_AHO_CORASICK_H_
#define WSIE_IE_AHO_CORASICK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wsie::ie {

/// A dictionary hit: pattern id plus the matched character span.
struct AutomatonMatch {
  uint32_t pattern_id = 0;
  size_t begin = 0;
  size_t end = 0;  ///< half-open
};

/// Aho-Corasick multi-pattern string automaton.
///
/// This is the matching core of the dictionary-based entity taggers
/// (LINNAEUS-style, [11]): matching is a single linear pass regardless of
/// dictionary size, but *building* the automaton for a large dictionary is
/// expensive in both time and memory — exactly the start-up cost and RAM
/// footprint that capped the paper's degree of parallelism (Sect. 4.2: ~20
/// minutes and 6-20 GB per worker for the 700k-entry gene dictionary).
///
/// Matching is case-insensitive (patterns and text are folded to ASCII
/// lowercase); candidate hits are filtered to word boundaries by the caller
/// (see DictionaryTagger).
class AhoCorasick {
 public:
  AhoCorasick();

  /// Adds a pattern before Build(). Returns its pattern id.
  uint32_t AddPattern(std::string_view pattern);

  /// Freezes the trie and computes failure links. Must be called once after
  /// all AddPattern() calls and before FindAll().
  void Build();

  /// Scans `text` and returns all (possibly overlapping) dictionary hits.
  std::vector<AutomatonMatch> FindAll(std::string_view text) const;

  /// Longest-match-wins filtering: keeps only matches not strictly contained
  /// in a longer match.
  static std::vector<AutomatonMatch> KeepLongest(
      std::vector<AutomatonMatch> matches);

  size_t num_patterns() const { return num_patterns_; }
  size_t num_nodes() const { return next_.size(); }
  bool built() const { return built_; }

  /// Automaton memory footprint in bytes (nodes + outputs), for the
  /// Sect. 4.2 memory accounting.
  size_t ApproxMemoryBytes() const;

 private:
  static constexpr int kAlphabet = 64;  // folded alphabet, see FoldChar
  static int FoldChar(char c);

  struct Node {
    int32_t children[kAlphabet];
  };

  std::vector<Node> next_;
  std::vector<int32_t> fail_;
  std::vector<std::vector<uint32_t>> output_;  // pattern ids ending here
  std::vector<uint32_t> pattern_lengths_;
  size_t num_patterns_ = 0;
  bool built_ = false;
};

}  // namespace wsie::ie

#endif  // WSIE_IE_AHO_CORASICK_H_
