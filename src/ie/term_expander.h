#ifndef WSIE_IE_TERM_EXPANDER_H_
#define WSIE_IE_TERM_EXPANDER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wsie::ie {

/// Options for dictionary term-variant generation.
struct TermExpanderOptions {
  bool plural_variants = true;       ///< "tumor" -> "tumors"; "-y" -> "-ies"
  bool hyphen_space_variants = true; ///< "GAD-67" <-> "GAD 67"
  bool greek_letter_variants = true; ///< "alpha" <-> "a" in gene names
};

/// Expands a dictionary term into its surface variants.
///
/// The paper "transformed each dictionary term into a regular expression"
/// to tolerate small variations, noting the transformations "almost only
/// affect very short word suffixes" (Sect. 4.2). We enumerate the variant
/// set explicitly instead of compiling regexes — each variant becomes one
/// automaton pattern, which reproduces both the matching behaviour and the
/// automaton-size blow-up (the NFA-expansion memory cost described in
/// Sect. 4.2).
class TermExpander {
 public:
  explicit TermExpander(TermExpanderOptions options = {})
      : options_(options) {}

  /// Returns the variants of `term`, always including `term` itself first.
  /// Variants are deduplicated.
  std::vector<std::string> Expand(std::string_view term) const;

 private:
  TermExpanderOptions options_;
};

}  // namespace wsie::ie

#endif  // WSIE_IE_TERM_EXPANDER_H_
