#include "ie/dictionary_tagger.h"

#include "common/char_class.h"
#include "common/stopwatch.h"

namespace wsie::ie {

DictionaryTagger::DictionaryTagger(EntityType type,
                                   const std::vector<std::string>& dictionary,
                                   TermExpanderOptions expander_options)
    : type_(type) {
  Stopwatch timer;
  TermExpander expander(expander_options);
  build_stats_.dictionary_entries = dictionary.size();
  for (const std::string& term : dictionary) {
    for (const std::string& variant : expander.Expand(term)) {
      if (variant.size() < kMinMentionLength) continue;
      automaton_.AddPattern(variant);
      ++build_stats_.expanded_patterns;
    }
  }
  automaton_.Build();
  build_stats_.automaton_nodes = automaton_.num_nodes();
  build_stats_.memory_bytes = automaton_.ApproxMemoryBytes();
  build_stats_.build_seconds = timer.ElapsedSeconds();
}

bool DictionaryTagger::IsWordBoundary(std::string_view text, size_t begin,
                                      size_t end) {
  if (begin > 0 && IsAsciiAlnum(text[begin - 1]) && IsAsciiAlnum(text[begin]))
    return false;
  if (end < text.size() && IsAsciiAlnum(text[end - 1]) &&
      IsAsciiAlnum(text[end]))
    return false;
  return true;
}

void DictionaryTagger::TagSpans(std::string_view doc_text,
                                std::vector<AutomatonMatch>* out) const {
  std::vector<AutomatonMatch> raw = automaton_.FindAll(doc_text);
  // Word-boundary filter before longest-match resolution.
  std::vector<AutomatonMatch> bounded;
  bounded.reserve(raw.size());
  for (const auto& m : raw) {
    if (m.end - m.begin < kMinMentionLength) continue;
    if (IsWordBoundary(doc_text, m.begin, m.end)) bounded.push_back(m);
  }
  *out = AhoCorasick::KeepLongest(std::move(bounded));
}

std::vector<Annotation> DictionaryTagger::Tag(uint64_t doc_id,
                                              std::string_view doc_text) const {
  std::vector<AutomatonMatch> kept;
  TagSpans(doc_text, &kept);
  std::vector<Annotation> annotations;
  annotations.reserve(kept.size());
  for (const auto& m : kept) {
    Annotation a;
    a.doc_id = doc_id;
    a.begin = static_cast<uint32_t>(m.begin);
    a.end = static_cast<uint32_t>(m.end);
    a.entity_type = type_;
    a.method = AnnotationMethod::kDictionary;
    a.surface = std::string(doc_text.substr(m.begin, m.end - m.begin));
    annotations.push_back(std::move(a));
  }
  return annotations;
}

}  // namespace wsie::ie
