#include "ie/relation_extractor.h"

#include <algorithm>

#include "common/char_class.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wsie::ie {
namespace {

struct TriggerSet {
  RelationType type;
  std::vector<const char*> triggers;
};

const std::vector<TriggerSet>& Triggers() {
  static const std::vector<TriggerSet>* kTriggers = new std::vector<TriggerSet>{
      {RelationType::kDrugTreatsDisease,
       {"treats", "treated", "treatment", "helps", "improved", "reduces",
        "reduced", "therapy", "effective"}},
      {RelationType::kGeneAssociatedDisease,
       {"associated", "linked", "implicated", "causes", "risk", "mutation",
        "mutations"}},
      {RelationType::kDrugTargetsGene,
       {"inhibits", "inhibited", "targets", "binds", "blocks", "regulates",
        "suppresses"}},
  };
  return *kTriggers;
}

RelationType TypeForPair(EntityType a, EntityType b, bool* swap) {
  *swap = false;
  if (a == EntityType::kDrug && b == EntityType::kDisease) {
    return RelationType::kDrugTreatsDisease;
  }
  if (a == EntityType::kDisease && b == EntityType::kDrug) {
    *swap = true;
    return RelationType::kDrugTreatsDisease;
  }
  if (a == EntityType::kGene && b == EntityType::kDisease) {
    return RelationType::kGeneAssociatedDisease;
  }
  if (a == EntityType::kDisease && b == EntityType::kGene) {
    *swap = true;
    return RelationType::kGeneAssociatedDisease;
  }
  if (a == EntityType::kDrug && b == EntityType::kGene) {
    return RelationType::kDrugTargetsGene;
  }
  // gene-drug
  *swap = true;
  return RelationType::kDrugTargetsGene;
}

}  // namespace

const char* RelationTypeName(RelationType type) {
  switch (type) {
    case RelationType::kDrugTreatsDisease:
      return "drug-treats-disease";
    case RelationType::kGeneAssociatedDisease:
      return "gene-associated-disease";
    case RelationType::kDrugTargetsGene:
      return "drug-targets-gene";
  }
  return "unknown";
}

RelationExtractor::RelationExtractor(RelationExtractorOptions options)
    : options_(options) {}

bool RelationExtractor::ContainsNegation(std::string_view sentence) {
  static const text::Tokenizer kTokenizer;
  return ContainsNegation(kTokenizer.Tokenize(sentence));
}

bool RelationExtractor::ContainsNegation(
    const std::vector<text::Token>& tokens) {
  for (const text::Token& tok : tokens) {
    if (EqualsIgnoreCase(tok.text, "not") || EqualsIgnoreCase(tok.text, "nor") ||
        EqualsIgnoreCase(tok.text, "neither")) {
      return true;
    }
  }
  return false;
}

bool RelationExtractor::HasTriggerBetween(std::string_view sentence,
                                          size_t begin, size_t end,
                                          RelationType type,
                                          std::string* trigger) const {
  // Search the span between the mentions plus a small neighbourhood.
  size_t lo = begin > 30 ? begin - 30 : 0;
  size_t hi = std::min(sentence.size(), end + 30);
  std::string window = AsciiToLower(sentence.substr(lo, hi - lo));
  for (const TriggerSet& set : Triggers()) {
    if (set.type != type) continue;
    for (const char* t : set.triggers) {
      size_t pos = window.find(t);
      if (pos == std::string::npos) continue;
      // Word-boundary check on both sides.
      bool left_ok = pos == 0 || !IsAsciiAlnum(window[pos - 1]);
      size_t after = pos + std::string_view(t).size();
      bool right_ok = after >= window.size() || !IsAsciiAlnum(window[after]);
      if (left_ok && right_ok) {
        *trigger = t;
        return true;
      }
    }
  }
  return false;
}

std::vector<Relation> RelationExtractor::ExtractFromSentence(
    std::string_view sentence, size_t base_offset,
    const std::vector<Annotation>& entities) const {
  return ExtractImpl(sentence, base_offset, entities,
                     ContainsNegation(sentence));
}

std::vector<Relation> RelationExtractor::ExtractFromSentence(
    std::string_view sentence, size_t base_offset,
    const std::vector<Annotation>& entities,
    const std::vector<text::Token>& tokens) const {
  return ExtractImpl(sentence, base_offset, entities,
                     ContainsNegation(tokens));
}

std::vector<Relation> RelationExtractor::ExtractImpl(
    std::string_view sentence, size_t base_offset,
    const std::vector<Annotation>& entities, bool negated) const {
  std::vector<Relation> relations;
  for (size_t i = 0; i < entities.size(); ++i) {
    for (size_t j = i + 1; j < entities.size(); ++j) {
      const Annotation& a = entities[i];
      const Annotation& b = entities[j];
      if (a.entity_type == b.entity_type) continue;
      if (a.method == AnnotationMethod::kRegex ||
          b.method == AnnotationMethod::kRegex)
        continue;
      size_t span_begin = std::min(a.begin, b.begin);
      size_t span_end = std::max(a.end, b.end);
      if (span_end - span_begin > options_.max_span_chars) continue;

      bool swap = false;
      Relation rel;
      rel.type = TypeForPair(a.entity_type, b.entity_type, &swap);
      rel.arg1 = swap ? b : a;
      rel.arg2 = swap ? a : b;
      rel.doc_id = a.doc_id;
      rel.sentence_id = a.sentence_id;
      rel.confidence = options_.cooccurrence_confidence;
      // Trigger search uses sentence-relative offsets.
      size_t rel_begin =
          span_begin >= base_offset ? span_begin - base_offset : 0;
      size_t rel_end = span_end >= base_offset ? span_end - base_offset : 0;
      std::string trigger;
      if (HasTriggerBetween(sentence, rel_begin, rel_end, rel.type,
                            &trigger)) {
        rel.confidence += options_.trigger_bonus;
        rel.trigger = trigger;
      }
      if (negated) rel.confidence -= options_.negation_penalty;
      rel.confidence = std::clamp(rel.confidence, 0.0, 1.0);
      relations.push_back(std::move(rel));
    }
  }
  return relations;
}

}  // namespace wsie::ie
