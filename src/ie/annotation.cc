#include "ie/annotation.h"

namespace wsie::ie {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kGene:
      return "gene";
    case EntityType::kDrug:
      return "drug";
    case EntityType::kDisease:
      return "disease";
  }
  return "unknown";
}

const char* AnnotationMethodName(AnnotationMethod method) {
  switch (method) {
    case AnnotationMethod::kDictionary:
      return "dict";
    case AnnotationMethod::kMl:
      return "ml";
    case AnnotationMethod::kRegex:
      return "regex";
  }
  return "unknown";
}

size_t AnnotationByteSize(const Annotation& annotation) {
  // Fixed fields plus the variable-length strings, as a flat serialization
  // (the paper's pipeline materialized annotations through HDFS).
  return sizeof(uint64_t) + sizeof(uint32_t) * 3 + 2 /* enums */ +
         annotation.surface.size() + annotation.category.size() + 8;
}

}  // namespace wsie::ie
