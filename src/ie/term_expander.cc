#include "ie/term_expander.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace wsie::ie {
namespace {

void AddUnique(std::vector<std::string>& variants, std::string candidate) {
  if (candidate.empty()) return;
  if (std::find(variants.begin(), variants.end(), candidate) ==
      variants.end()) {
    variants.push_back(std::move(candidate));
  }
}

bool EndsWithConsonantY(std::string_view term) {
  if (term.size() < 2 || term.back() != 'y') return false;
  char prev = static_cast<char>(
      std::tolower(static_cast<unsigned char>(term[term.size() - 2])));
  return prev != 'a' && prev != 'e' && prev != 'i' && prev != 'o' &&
         prev != 'u';
}

}  // namespace

std::vector<std::string> TermExpander::Expand(std::string_view term) const {
  std::vector<std::string> variants;
  AddUnique(variants, std::string(term));

  if (options_.plural_variants) {
    // Suffix-level plural variants only (the "very short word suffixes" of
    // Sect. 4.2): applied to the final word of multi-word terms.
    std::string base(term);
    bool alpha_tail =
        !base.empty() && std::isalpha(static_cast<unsigned char>(base.back()));
    if (alpha_tail) {
      if (EndsWithConsonantY(base)) {
        AddUnique(variants, base.substr(0, base.size() - 1) + "ies");
      } else if (EndsWith(base, "s") || EndsWith(base, "x") ||
                 EndsWith(base, "ch")) {
        AddUnique(variants, base + "es");
      } else {
        AddUnique(variants, base + "s");
      }
      // Singularize an already-plural dictionary entry.
      if (EndsWith(base, "ies") && base.size() > 3) {
        AddUnique(variants, base.substr(0, base.size() - 3) + "y");
      } else if (EndsWith(base, "s") && !EndsWith(base, "ss") &&
                 base.size() > 3) {
        AddUnique(variants, base.substr(0, base.size() - 1));
      }
    }
  }

  if (options_.hyphen_space_variants) {
    size_t current = variants.size();
    for (size_t i = 0; i < current; ++i) {
      const std::string v = variants[i];
      if (v.find('-') != std::string::npos) {
        AddUnique(variants, ReplaceAll(v, "-", " "));
        AddUnique(variants, ReplaceAll(v, "-", ""));
      } else if (v.find(' ') != std::string::npos) {
        AddUnique(variants, ReplaceAll(v, " ", "-"));
      }
    }
  }

  if (options_.greek_letter_variants) {
    static constexpr std::pair<const char*, const char*> kGreek[] = {
        {"alpha", "a"}, {"beta", "b"}, {"gamma", "g"}, {"delta", "d"},
        {"kappa", "k"},
    };
    size_t current = variants.size();
    for (size_t i = 0; i < current; ++i) {
      const std::string v = variants[i];
      std::string lower = AsciiToLower(v);
      for (const auto& [word, letter] : kGreek) {
        size_t pos = lower.find(word);
        if (pos != std::string::npos) {
          std::string replaced = v.substr(0, pos);
          replaced += letter;
          replaced += v.substr(pos + std::string(word).size());
          AddUnique(variants, std::move(replaced));
        }
      }
    }
  }
  return variants;
}

}  // namespace wsie::ie
