#ifndef WSIE_IE_CRF_TAGGER_H_
#define WSIE_IE_CRF_TAGGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ie/annotation.h"
#include "ml/crf.h"
#include "text/token.h"

namespace wsie::ie {

/// A gold entity span over token indices [begin_token, end_token).
struct GoldSpan {
  size_t begin_token = 0;
  size_t end_token = 0;
};

/// One training sentence for an ML tagger: its tokens plus gold spans.
///
/// Tokens are views; `buffer`, when set, pins the text they point into so a
/// TaggedSentence can outlive (and be moved independently of) the document
/// it was tokenized from. A heap-owned std::string keeps its character array
/// stable across moves of the shared_ptr, so the views stay valid.
struct TaggedSentence {
  std::vector<text::Token> tokens;
  std::vector<GoldSpan> spans;
  std::shared_ptr<const std::string> buffer;
};

/// Pins `sentence_text` in a fresh TaggedSentence and tokenizes it. The
/// canonical way to build a self-owning tagged sentence (training corpora,
/// tests).
TaggedSentence MakeTaggedSentence(std::string_view sentence_text);

/// Orthographic feature extractor shared by all CRF taggers.
///
/// BANNER-style features [17]: token identity, lowercased identity, word
/// shape ("BRCA1" -> "AAAA0"), compressed shape ("A0"), prefixes/suffixes
/// of length 2..4, digit/hyphen/case indicators, token length bucket, and
/// the same set for the +-1 context tokens. Feature strings are hashed
/// (ml::HashFeature) into the CRF's weight space.
///
/// This is the SEED reference implementation: it materializes every feature
/// string before hashing. Kept for training-time use, the golden equality
/// test, and the seed-vs-view bench gate.
std::vector<ml::PositionFeatures> ExtractNerFeatures(
    const std::vector<text::Token>& tokens);

/// Allocation-free extractor for the decode hot path: streams precomputed
/// per-token component hashes (FNV prefix-seed continuation) into `*out`,
/// materializing no feature strings. Emits hashes byte-identical to
/// ExtractNerFeatures, in the same order (golden-tested), so decoded
/// annotations do not change. Reuses thread-local scratch; safe to call
/// concurrently from multiple threads.
void ExtractNerFeaturesInto(const std::vector<text::Token>& tokens,
                            ml::HashedFeatureMatrix* out);

/// CRF-based named entity tagger with BIO encoding (the ML method of the
/// paper: BANNER for genes, ChemSpot's CRF for drugs, a Mallet-based tool
/// for diseases — all linear-chain CRFs).
class CrfTagger {
 public:
  /// Creates an untrained tagger for `type`. `feature_dim` bounds model
  /// memory (hashed features).
  explicit CrfTagger(EntityType type, size_t feature_dim = 1 << 18);

  /// Trains on gold sentences. Label scheme: 0=O, 1=B, 2=I.
  void Train(const std::vector<TaggedSentence>& sentences,
             const ml::CrfTrainOptions& options = {});

  /// Tags one tokenized sentence; emits document-offset annotations.
  std::vector<Annotation> TagSentence(uint64_t doc_id, uint32_t sentence_id,
                                      std::string_view doc_text,
                                      const std::vector<text::Token>& tokens) const;

  EntityType entity_type() const { return type_; }
  const ml::LinearChainCrf& model() const { return crf_; }

 private:
  EntityType type_;
  ml::LinearChainCrf crf_;
};

/// ChemSpot-style hybrid tagger [24]: unions CRF and dictionary annotations,
/// dropping dictionary hits that overlap a (higher-priority) CRF span.
std::vector<Annotation> MergeHybrid(std::vector<Annotation> crf_annotations,
                                    const std::vector<Annotation>& dict_annotations);

/// Three-letter-acronym filter (Sect. 4.3.2): removes ML gene annotations
/// whose surface is exactly three uppercase letters — the dominant false-
/// positive class when Medline-trained taggers run on web text. Returns the
/// filtered list and reports how many were removed via `num_removed`.
std::vector<Annotation> FilterTlaAnnotations(std::vector<Annotation> annotations,
                                             size_t* num_removed = nullptr);

}  // namespace wsie::ie

#endif  // WSIE_IE_CRF_TAGGER_H_
