#ifndef WSIE_IE_CRF_TAGGER_H_
#define WSIE_IE_CRF_TAGGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ie/annotation.h"
#include "ml/crf.h"
#include "text/token.h"

namespace wsie::ie {

/// A gold entity span over token indices [begin_token, end_token).
struct GoldSpan {
  size_t begin_token = 0;
  size_t end_token = 0;
};

/// One training sentence for an ML tagger: its tokens plus gold spans.
struct TaggedSentence {
  std::vector<text::Token> tokens;
  std::vector<GoldSpan> spans;
};

/// Orthographic feature extractor shared by all CRF taggers.
///
/// BANNER-style features [17]: token identity, lowercased identity, word
/// shape ("BRCA1" -> "AAAA0"), compressed shape ("A0"), prefixes/suffixes
/// of length 2..4, digit/hyphen/case indicators, token length bucket, and
/// the same set for the +-1 context tokens. Feature strings are hashed
/// (ml::HashFeature) into the CRF's weight space.
std::vector<ml::PositionFeatures> ExtractNerFeatures(
    const std::vector<text::Token>& tokens);

/// CRF-based named entity tagger with BIO encoding (the ML method of the
/// paper: BANNER for genes, ChemSpot's CRF for drugs, a Mallet-based tool
/// for diseases — all linear-chain CRFs).
class CrfTagger {
 public:
  /// Creates an untrained tagger for `type`. `feature_dim` bounds model
  /// memory (hashed features).
  explicit CrfTagger(EntityType type, size_t feature_dim = 1 << 18);

  /// Trains on gold sentences. Label scheme: 0=O, 1=B, 2=I.
  void Train(const std::vector<TaggedSentence>& sentences,
             const ml::CrfTrainOptions& options = {});

  /// Tags one tokenized sentence; emits document-offset annotations.
  std::vector<Annotation> TagSentence(uint64_t doc_id, uint32_t sentence_id,
                                      std::string_view doc_text,
                                      const std::vector<text::Token>& tokens) const;

  EntityType entity_type() const { return type_; }
  const ml::LinearChainCrf& model() const { return crf_; }

 private:
  EntityType type_;
  ml::LinearChainCrf crf_;
};

/// ChemSpot-style hybrid tagger [24]: unions CRF and dictionary annotations,
/// dropping dictionary hits that overlap a (higher-priority) CRF span.
std::vector<Annotation> MergeHybrid(std::vector<Annotation> crf_annotations,
                                    const std::vector<Annotation>& dict_annotations);

/// Three-letter-acronym filter (Sect. 4.3.2): removes ML gene annotations
/// whose surface is exactly three uppercase letters — the dominant false-
/// positive class when Medline-trained taggers run on web text. Returns the
/// filtered list and reports how many were removed via `num_removed`.
std::vector<Annotation> FilterTlaAnnotations(std::vector<Annotation> annotations,
                                             size_t* num_removed = nullptr);

}  // namespace wsie::ie

#endif  // WSIE_IE_CRF_TAGGER_H_
