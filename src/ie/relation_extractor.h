#ifndef WSIE_IE_RELATION_EXTRACTOR_H_
#define WSIE_IE_RELATION_EXTRACTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ie/annotation.h"
#include "text/token.h"

namespace wsie::ie {

/// Binary biomedical relation classes over entity pairs.
enum class RelationType {
  kDrugTreatsDisease,
  kGeneAssociatedDisease,
  kDrugTargetsGene,
};

const char* RelationTypeName(RelationType type);

/// One extracted relation instance.
struct Relation {
  uint64_t doc_id = 0;
  uint32_t sentence_id = 0;
  RelationType type = RelationType::kDrugTreatsDisease;
  Annotation arg1;  ///< drug or gene
  Annotation arg2;  ///< disease or gene
  /// Heuristic confidence: co-occurrence only = 0.5; trigger word between
  /// the arguments raises it; sentence-level negation lowers it.
  double confidence = 0.5;
  std::string trigger;  ///< matched trigger word, if any
};

/// Tuning of the sentence-window relation extractor.
struct RelationExtractorOptions {
  /// Maximum character distance between the two argument mentions.
  size_t max_span_chars = 200;
  double cooccurrence_confidence = 0.5;
  double trigger_bonus = 0.35;
  double negation_penalty = 0.3;
};

/// Co-occurrence + trigger-pattern relation extractor (the "relationships
/// between entities" operators of the Sopremo IE package, Sect. 3.1).
///
/// Candidate pairs are entity mentions of compatible types inside one
/// sentence; a trigger word ("treats", "inhibits", "associated", ...)
/// between or adjacent to the pair raises confidence, a negation token in
/// the sentence lowers it (the paper's motivation for negation detection:
/// "detecting negation is important ... for relation extraction").
class RelationExtractor {
 public:
  explicit RelationExtractor(RelationExtractorOptions options = {});

  /// Extracts relations from one sentence's entity annotations. `sentence`
  /// is the sentence text and `base_offset` its document offset; entity
  /// annotations must carry document offsets. This overload tokenizes the
  /// sentence itself for the negation check.
  std::vector<Relation> ExtractFromSentence(
      std::string_view sentence, size_t base_offset,
      const std::vector<Annotation>& entities) const;

  /// Token-reusing overload: the negation check runs over `tokens` (the
  /// shared sentence tokenization) instead of re-tokenizing the sentence.
  std::vector<Relation> ExtractFromSentence(
      std::string_view sentence, size_t base_offset,
      const std::vector<Annotation>& entities,
      const std::vector<text::Token>& tokens) const;

  /// True when the token list contains a negation word. Exposed so callers
  /// holding shared sentence tokens can pre-compute it.
  static bool ContainsNegation(const std::vector<text::Token>& tokens);

 private:
  std::vector<Relation> ExtractImpl(std::string_view sentence,
                                    size_t base_offset,
                                    const std::vector<Annotation>& entities,
                                    bool negated) const;
  bool HasTriggerBetween(std::string_view sentence, size_t begin, size_t end,
                         RelationType type, std::string* trigger) const;
  static bool ContainsNegation(std::string_view sentence);

  RelationExtractorOptions options_;
};

}  // namespace wsie::ie

#endif  // WSIE_IE_RELATION_EXTRACTOR_H_
