#ifndef WSIE_IE_DICTIONARY_TAGGER_H_
#define WSIE_IE_DICTIONARY_TAGGER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ie/aho_corasick.h"
#include "ie/annotation.h"
#include "ie/term_expander.h"

namespace wsie::ie {

/// Build-time statistics of a dictionary tagger — the start-up cost and
/// memory footprint that dominated the paper's scale-out behaviour
/// (Sect. 4.2: the gene dictionary took ~20 minutes to load and 6-20 GB per
/// worker).
struct DictionaryBuildStats {
  size_t dictionary_entries = 0;
  size_t expanded_patterns = 0;
  size_t automaton_nodes = 0;
  size_t memory_bytes = 0;
  double build_seconds = 0.0;
};

/// Automaton-based fuzzy dictionary entity tagger (LINNAEUS-style, [11]).
///
/// Construction expands every dictionary term into its variants and inserts
/// them into one Aho-Corasick automaton; Tag() is a single linear scan with
/// word-boundary and length filtering. Construction cost is deliberately
/// *not* amortized or lazily avoided: it models the per-worker start-up cost
/// central to Sect. 4.2.
class DictionaryTagger {
 public:
  /// Builds the tagger. `dictionary` holds canonical terms of `type`.
  DictionaryTagger(EntityType type, const std::vector<std::string>& dictionary,
                   TermExpanderOptions expander_options = {});

  /// Tags entity mentions in `doc_text`. `doc_id` stamps the annotations;
  /// sentence ids are left 0 (assigned downstream by the pipeline).
  std::vector<Annotation> Tag(uint64_t doc_id, std::string_view doc_text) const;

  /// Offset-only hot path: runs the automaton over the pinned document
  /// buffer and appends boundary/length-filtered longest matches to `*out`
  /// (cleared first) WITHOUT materializing surface strings — callers slice
  /// `doc_text` with the returned offsets. Filtering and match resolution
  /// are identical to Tag().
  void TagSpans(std::string_view doc_text,
                std::vector<AutomatonMatch>* out) const;

  const DictionaryBuildStats& build_stats() const { return build_stats_; }
  EntityType entity_type() const { return type_; }

  /// Minimum mention length; hits shorter than this are discarded (guards
  /// against 1-2 character dictionary debris).
  static constexpr size_t kMinMentionLength = 3;

 private:
  static bool IsWordBoundary(std::string_view text, size_t begin, size_t end);

  EntityType type_;
  AhoCorasick automaton_;
  DictionaryBuildStats build_stats_;
};

}  // namespace wsie::ie

#endif  // WSIE_IE_DICTIONARY_TAGGER_H_
