#ifndef WSIE_IE_ANNOTATION_H_
#define WSIE_IE_ANNOTATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wsie::ie {

/// Biomedical entity classes analyzed in the study (Sect. 3.2).
enum class EntityType {
  kGene,
  kDrug,
  kDisease,
};

const char* EntityTypeName(EntityType type);

/// Extraction method provenance.
enum class AnnotationMethod {
  kDictionary,  ///< automaton-based fuzzy dictionary matching
  kMl,          ///< CRF-based tagger
  kRegex,       ///< regular-expression extractor (linguistic categories)
};

const char* AnnotationMethodName(AnnotationMethod method);

/// One annotation: an entity (or linguistic) mention with provenance and
/// position, mirroring the paper's result-set schema ("document ID, sentence
/// ID, and start/end positions", Sect. 3.2).
struct Annotation {
  uint64_t doc_id = 0;
  uint32_t sentence_id = 0;
  uint32_t begin = 0;  ///< character offset in the document
  uint32_t end = 0;
  EntityType entity_type = EntityType::kGene;
  AnnotationMethod method = AnnotationMethod::kDictionary;
  std::string surface;  ///< matched text
  std::string category; ///< linguistic category for regex annotations

  uint32_t length() const { return end - begin; }

  friend bool operator==(const Annotation& a, const Annotation& b) {
    return a.doc_id == b.doc_id && a.sentence_id == b.sentence_id &&
           a.begin == b.begin && a.end == b.end &&
           a.entity_type == b.entity_type && a.method == b.method &&
           a.surface == b.surface && a.category == b.category;
  }
};

/// Serialized size of one annotation, used for the Sect. 4.2 observation
/// that annotations *grow* the data volume flowing through the pipeline
/// (1 TB raw text produced 1.6 TB of annotations).
size_t AnnotationByteSize(const Annotation& annotation);

}  // namespace wsie::ie

#endif  // WSIE_IE_ANNOTATION_H_
