#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "fault/checkpoint.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_plan.h"
#include "fault/retry_policy.h"
#include "fault/wire_format.h"

namespace wsie::fault {
namespace {

// ---------------------------------------------------------- wire format

TEST(WireFormatTest, U64RoundTrip) {
  std::string buf;
  wire::PutU64(&buf, 0);
  wire::PutU64(&buf, 42);
  wire::PutU64(&buf, ~uint64_t{0});
  std::string_view in(buf);
  uint64_t v = 1;
  ASSERT_TRUE(wire::GetU64(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(wire::GetU64(&in, &v));
  EXPECT_EQ(v, 42u);
  ASSERT_TRUE(wire::GetU64(&in, &v));
  EXPECT_EQ(v, ~uint64_t{0});
  EXPECT_TRUE(in.empty());
  EXPECT_FALSE(wire::GetU64(&in, &v));  // exhausted
}

TEST(WireFormatTest, DoubleRoundTripIsExact) {
  // Hexfloat encoding must reproduce the bit pattern, including values that
  // decimal shortest-round-trip printing tends to mangle.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           3.141592653589793,
                           6.02214076e23,
                           5e-324,  // min denormal
                           -123456.789012345};
  std::string buf;
  for (double v : values) wire::PutDouble(&buf, v);
  std::string_view in(buf);
  for (double expected : values) {
    double v = 99.0;
    ASSERT_TRUE(wire::GetDouble(&in, &v));
    EXPECT_EQ(std::memcmp(&v, &expected, sizeof v), 0)
        << "expected " << expected << " got " << v;
  }
}

TEST(WireFormatTest, StringRoundTripWithBinaryBytes) {
  std::string nasty("line\nbreak\0null\xff high", 21);
  std::string buf;
  wire::PutString(&buf, nasty);
  wire::PutString(&buf, "");
  std::string_view in(buf);
  std::string out;
  ASSERT_TRUE(wire::GetString(&in, &out));
  EXPECT_EQ(out, nasty);
  ASSERT_TRUE(wire::GetString(&in, &out));
  EXPECT_EQ(out, "");
}

TEST(WireFormatTest, MalformedInputFailsSafely) {
  uint64_t v;
  double d;
  std::string s;
  std::string_view not_a_number("abc\n");
  EXPECT_FALSE(wire::GetU64(&not_a_number, &v));
  std::string_view no_delim("123");
  EXPECT_FALSE(wire::GetU64(&no_delim, &v));
  std::string_view bad_double("zz\n");
  EXPECT_FALSE(wire::GetDouble(&bad_double, &d));
  // String whose declared length exceeds the remaining bytes.
  std::string truncated;
  wire::PutU64(&truncated, 1000);
  truncated += "short";
  std::string_view in(truncated);
  EXPECT_FALSE(wire::GetString(&in, &s));
}

TEST(WireFormatTest, MixAndFnvAreStable) {
  EXPECT_EQ(wire::Fnv1a("host-3.example"), wire::Fnv1a("host-3.example"));
  EXPECT_NE(wire::Fnv1a("host-3.example"), wire::Fnv1a("host-4.example"));
  EXPECT_EQ(wire::Mix(1, 2), wire::Mix(1, 2));
  EXPECT_NE(wire::Mix(1, 2), wire::Mix(2, 1));
}

// ------------------------------------------------------------ fault plan

TEST(FaultPlanTest, DecisionsAreDeterministic) {
  FaultPlanConfig config;
  config.seed = 1234;
  config.flaky_host_frac = 1.0;  // every host flaky: maximal fault surface
  FaultPlan a(config), b(config);
  for (int h = 0; h < 50; ++h) {
    std::string host = "host-" + std::to_string(h) + ".example";
    EXPECT_EQ(a.HostIsFlaky(host), b.HostIsFlaky(host));
    for (int p = 0; p < 10; ++p) {
      std::string path = "/page/" + std::to_string(p);
      for (int attempt = 0; attempt < 3; ++attempt) {
        FaultDecision da = a.Decide(host, path, attempt);
        FaultDecision db = b.Decide(host, path, attempt);
        EXPECT_EQ(da.kind, db.kind);
        EXPECT_EQ(da.extra_latency_ms, db.extra_latency_ms);
        EXPECT_EQ(da.mangle_seed, db.mangle_seed);
      }
      EXPECT_EQ(a.RobotsAvailable(host, p % 3), b.RobotsAvailable(host, p % 3));
    }
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u) << "default profile should fire on "
                                     << a.decisions() << " decisions";
  EXPECT_EQ(a.SortedTrace().size(), b.SortedTrace().size());
  EXPECT_TRUE(a.SortedTrace() == b.SortedTrace());
}

TEST(FaultPlanTest, TraceIsScheduleIndependent) {
  // The same decision set issued from many threads in scrambled order must
  // leave the identical sorted trace as a serial pass — the subsystem's
  // determinism guard at the plan level.
  FaultPlanConfig config;
  config.seed = 77;
  config.flaky_host_frac = 1.0;
  FaultPlan serial(config), threaded(config);
  constexpr int kHosts = 12, kPaths = 24;
  for (int h = 0; h < kHosts; ++h) {
    for (int p = 0; p < kPaths; ++p) {
      serial.Decide("h" + std::to_string(h), "/p" + std::to_string(p), 0);
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&threaded, t] {
      // Each thread covers a strided subset; union covers everything.
      for (int i = t; i < kHosts * kPaths; i += 4) {
        threaded.Decide("h" + std::to_string(i / kPaths),
                        "/p" + std::to_string(i % kPaths), 0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(serial.SortedTrace() == threaded.SortedTrace());
}

TEST(FaultPlanTest, StableHostsNeverFault) {
  FaultPlanConfig config;
  config.flaky_host_frac = 0.0;
  FaultPlan plan(config);
  for (int i = 0; i < 100; ++i) {
    FaultDecision d = plan.Decide("any-host", "/p" + std::to_string(i), 0);
    EXPECT_EQ(d.kind, FaultKind::kNone);
  }
  EXPECT_EQ(plan.faults_injected(), 0u);
}

TEST(FaultPlanTest, FlakyFractionRoughlyMatchesConfig) {
  FaultPlanConfig config;
  config.flaky_host_frac = 0.35;
  FaultPlan plan(config);
  int flaky = 0;
  const int kHosts = 2000;
  for (int i = 0; i < kHosts; ++i) {
    if (plan.HostIsFlaky("host-" + std::to_string(i) + ".example")) ++flaky;
  }
  double frac = static_cast<double>(flaky) / kHosts;
  EXPECT_NEAR(frac, 0.35, 0.05);
}

TEST(FaultPlanTest, AttemptsBeyondBudgetAreServedClean) {
  FaultPlanConfig config;
  config.flaky_host_frac = 1.0;
  config.max_faulty_attempts = 2;
  FaultPlan plan(config);
  for (int h = 0; h < 200; ++h) {
    std::string host = "h" + std::to_string(h);
    EXPECT_EQ(plan.Decide(host, "/x", 2).kind, FaultKind::kNone);
    EXPECT_EQ(plan.Decide(host, "/x", 7).kind, FaultKind::kNone);
    EXPECT_TRUE(plan.RobotsAvailable(host, 2));
  }
}

TEST(FaultPlanTest, CountersMatchTrace) {
  FaultPlanConfig config;
  config.flaky_host_frac = 1.0;
  FaultPlan plan(config);
  for (int i = 0; i < 500; ++i) {
    plan.Decide("host-" + std::to_string(i % 20), "/p" + std::to_string(i), 0);
  }
  uint64_t by_kind = 0;
  for (int k = 1; k < kNumFaultKinds; ++k) {
    by_kind += plan.CountOf(static_cast<FaultKind>(k));
  }
  EXPECT_EQ(by_kind, plan.faults_injected());
  EXPECT_EQ(plan.SortedTrace().size(), plan.faults_injected());
  plan.ClearTrace();
  EXPECT_TRUE(plan.SortedTrace().empty());
}

// ----------------------------------------------------------- retry policy

TEST(RetryPolicyTest, RetryEligibility) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.ShouldRetry(Status::Timeout("t"), 0));
  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("u"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::Unavailable("u"), 2));  // exhausted
  EXPECT_FALSE(policy.ShouldRetry(Status::NotFound("404"), 0));   // permanent
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 0));
  policy.max_attempts = 1;  // retries disabled
  EXPECT_FALSE(policy.ShouldRetry(Status::Timeout("t"), 0));
}

TEST(RetryPolicyTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 500.0;
  policy.jitter_frac = 0.2;
  for (int attempt = 0; attempt < 6; ++attempt) {
    double term = std::min(100.0 * std::pow(2.0, attempt), 500.0);
    double b1 = policy.BackoffMs(attempt, /*key=*/0xabc);
    double b2 = policy.BackoffMs(attempt, /*key=*/0xabc);
    EXPECT_EQ(b1, b2);
    EXPECT_GE(b1, term * 0.8);
    EXPECT_LE(b1, term * 1.2);
  }
  // Different keys jitter differently (with overwhelming probability).
  EXPECT_NE(policy.BackoffMs(1, 1), policy.BackoffMs(1, 2));
  // Jitter off: exact exponential.
  policy.jitter_frac = 0.0;
  EXPECT_EQ(policy.BackoffMs(0, 7), 100.0);
  EXPECT_EQ(policy.BackoffMs(2, 7), 400.0);
  EXPECT_EQ(policy.BackoffMs(5, 7), 500.0);  // capped
}

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, DisabledBreakerAllowsEverything) {
  HostCircuitBreaker breaker;  // failure_threshold = 0
  EXPECT_FALSE(breaker.enabled());
  breaker.RecordBatch("h", /*failures=*/100, /*successes=*/0, /*tick=*/0);
  EXPECT_TRUE(breaker.Allow("h", 1));
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, TripsAfterThresholdAndCoolsDown) {
  CircuitBreakerConfig config;
  config.failure_threshold = 5;
  config.open_ticks = 3;
  HostCircuitBreaker breaker(config);
  EXPECT_TRUE(breaker.Allow("h", 0));
  breaker.RecordBatch("h", 3, 0, /*tick=*/0);
  EXPECT_TRUE(breaker.Allow("h", 1)) << "below threshold";
  breaker.RecordBatch("h", 2, 0, /*tick=*/1);  // streak hits 5: trips
  EXPECT_FALSE(breaker.Allow("h", 2));
  EXPECT_FALSE(breaker.Allow("h", 3));
  EXPECT_TRUE(breaker.Allow("h", 4)) << "open_ticks elapsed";
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_TRUE(breaker.Allow("other-host", 2)) << "breaker is per-host";
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreakerConfig config;
  config.failure_threshold = 4;
  HostCircuitBreaker breaker(config);
  breaker.RecordBatch("h", 3, 0, 0);
  breaker.RecordBatch("h", 0, 1, 1);  // one success: streak cleared
  breaker.RecordBatch("h", 3, 0, 2);
  EXPECT_TRUE(breaker.Allow("h", 3)) << "3 + 3 with a success between";
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, SerializationRoundTrip) {
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_ticks = 10;
  HostCircuitBreaker breaker(config);
  breaker.RecordBatch("a", 2, 0, 5);  // opens until tick 15
  breaker.RecordBatch("b", 1, 0, 6);  // streak 1
  std::string bytes;
  breaker.EncodeTo(&bytes);

  HostCircuitBreaker restored(config);
  std::string_view in(bytes);
  ASSERT_TRUE(restored.DecodeFrom(&in).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(restored.times_opened(), 1u);
  EXPECT_FALSE(restored.Allow("a", 14));
  EXPECT_TRUE(restored.Allow("a", 15));
  restored.RecordBatch("b", 1, 0, 7);  // restored streak 1 + 1 = threshold
  EXPECT_FALSE(restored.Allow("b", 8));

  std::string_view garbage("not a breaker\n");
  HostCircuitBreaker scratch(config);
  EXPECT_FALSE(scratch.DecodeFrom(&garbage).ok());
}

// -------------------------------------------------------------- checkpoint

TEST(CheckpointTest, SerializeDeserializeRoundTrip) {
  Checkpoint ckpt;
  ckpt.SetSection("alpha", "payload-a");
  ckpt.SetSection("beta", std::string("bin\0\n\xff", 6));
  ckpt.SetSection("gamma", "");
  std::string bytes = ckpt.Serialize();

  Result<Checkpoint> restored = Checkpoint::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_sections(), 3u);
  ASSERT_NE(restored->FindSection("alpha"), nullptr);
  EXPECT_EQ(*restored->FindSection("alpha"), "payload-a");
  EXPECT_EQ(*restored->FindSection("beta"), std::string("bin\0\n\xff", 6));
  EXPECT_EQ(*restored->FindSection("gamma"), "");
  EXPECT_EQ(restored->FindSection("missing"), nullptr);
}

TEST(CheckpointTest, SerializationIsCanonical) {
  // Insertion order must not leak into the bytes (sections are sorted).
  Checkpoint a, b;
  a.SetSection("x", "1");
  a.SetSection("y", "2");
  b.SetSection("y", "2");
  b.SetSection("x", "1");
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(CheckpointTest, RejectsCorruptBytes) {
  Checkpoint ckpt;
  ckpt.SetSection("data", "the quick brown fox");
  std::string bytes = ckpt.Serialize();

  // Bit damage anywhere must be caught by the checksum (or framing).
  for (size_t pos : {size_t{0}, bytes.size() / 2, bytes.size() - 2}) {
    std::string corrupt = bytes;
    corrupt[pos] ^= 0x20;
    EXPECT_FALSE(Checkpoint::Deserialize(corrupt).ok())
        << "flip at " << pos << " accepted";
  }
  // Truncation (torn write).
  EXPECT_FALSE(Checkpoint::Deserialize(bytes.substr(0, bytes.size() / 2)).ok());
  EXPECT_FALSE(Checkpoint::Deserialize("").ok());
  EXPECT_FALSE(Checkpoint::Deserialize("WSIECKPT\n").ok());
  EXPECT_FALSE(Checkpoint::Deserialize("random junk, no magic").ok());
}

TEST(CheckpointTest, FileRoundTripAndMissingFile) {
  std::string path = testing::TempDir() + "wsie_ckpt_test.bin";
  Checkpoint ckpt;
  ckpt.SetSection("frontier", "url1\nurl2\n");
  ASSERT_TRUE(ckpt.WriteFile(path).ok());

  Result<Checkpoint> restored = Checkpoint::ReadFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored->FindSection("frontier"), "url1\nurl2\n");

  // Overwrite is atomic: a second write replaces, never appends.
  ckpt.SetSection("frontier", "url3\n");
  ASSERT_TRUE(ckpt.WriteFile(path).ok());
  restored = Checkpoint::ReadFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored->FindSection("frontier"), "url3\n");

  EXPECT_FALSE(Checkpoint::ReadFile(path + ".does-not-exist").ok());
  // A corrupt file on disk is rejected too.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "WSIECKPT\ngarbage";
  }
  EXPECT_FALSE(Checkpoint::ReadFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wsie::fault
