#include <gtest/gtest.h>

#include <memory>

#include "core/analysis_context.h"
#include "core/analytics.h"
#include "core/operators_ie.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"

namespace wsie::core {
namespace {

/// One shared (expensive-to-train) context for the whole test binary.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AnalysisContextConfig config;
    config.crf_training_sentences = 300;
    config.pos_training_sentences = 1000;
    context_ = new std::shared_ptr<const AnalysisContext>(
        std::make_shared<const AnalysisContext>(config));
  }
  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
  }
  static ContextPtr context() { return *context_; }

  static std::vector<corpus::Document> MakeCorpus(corpus::CorpusKind kind,
                                                  size_t n, uint64_t seed) {
    corpus::TextGenerator generator(&context()->lexicons(),
                                    corpus::ProfileFor(kind), seed);
    return generator.GenerateCorpus(seed * 1000, n);
  }

  static std::shared_ptr<const AnalysisContext>* context_;
};

std::shared_ptr<const AnalysisContext>* CoreTest::context_ = nullptr;

// -------------------------------------------------------- AnalysisContext

TEST_F(CoreTest, GoldSentencesHaveSpans) {
  auto gold = AnalysisContext::MakeGoldSentences(
      context()->lexicons(), ie::EntityType::kDrug, 100, 5);
  EXPECT_EQ(gold.size(), 100u);
  size_t with_spans = 0;
  for (const auto& s : gold) {
    if (!s.spans.empty()) ++with_spans;
    for (const auto& span : s.spans) {
      EXPECT_LT(span.begin_token, span.end_token);
      EXPECT_LE(span.end_token, s.tokens.size());
    }
  }
  EXPECT_GT(with_spans, 10u);
}

TEST_F(CoreTest, CrfTaggersFindLexiconMentions) {
  // On fresh Medline-style text, the trained drug CRF should find most of
  // the gold drug mentions.
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 20, 99);
  const ie::CrfTagger& tagger = context()->crf_tagger(ie::EntityType::kDrug);
  size_t gold_mentions = 0, found = 0;
  for (const auto& doc : docs) {
    for (const auto& span : context()->splitter().Split(doc.text)) {
      auto tokens = context()->tokenizer().Tokenize(
          std::string_view(doc.text).substr(span.begin, span.length()),
          span.begin);
      auto annotations = tagger.TagSentence(doc.id, 0, doc.text, tokens);
      for (const auto& g : doc.gold_entities) {
        if (g.type != ie::EntityType::kDrug || !g.from_lexicon) continue;
        if (g.begin < span.begin || g.end > span.begin + span.length())
          continue;
        ++gold_mentions;
        for (const auto& a : annotations) {
          if (a.begin <= g.begin && a.end >= g.end) {
            ++found;
            break;
          }
        }
      }
    }
  }
  ASSERT_GT(gold_mentions, 20u);
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(gold_mentions),
            0.6);
}

TEST_F(CoreTest, DictionaryIsIncomplete) {
  const auto& tagger = context()->dictionary_tagger(ie::EntityType::kGene);
  EXPECT_LT(tagger.build_stats().dictionary_entries,
            context()->lexicons().genes().size());
  EXPECT_GT(tagger.build_stats().dictionary_entries,
            context()->lexicons().genes().size() / 2);
}

// -------------------------------------------------------- Flow building

TEST_F(CoreTest, FullFlowOperatorCount) {
  FlowOptions options;
  options.web_preprocessing = true;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  // 3 web ops + sentences + 4 linguistic + pos + 6 entity + union = 16.
  EXPECT_EQ(plan.num_operators(), 16u);
}

TEST_F(CoreTest, PerEntityFlowSmaller) {
  FlowOptions options;
  options.linguistic_analysis = false;
  options.entity_types = {ie::EntityType::kDisease};
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  EXPECT_EQ(plan.num_operators(), 4u);  // sentences + pos + dict + ml
}

TEST_F(CoreTest, RunFlowProducesAnalyzedSink) {
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 10, 7);
  FlowOptions options;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto result = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->sink_outputs.at("analyzed").size(), 0u);
}

TEST_F(CoreTest, WebPreprocessingHandlesHtml) {
  // Wrap documents in simple HTML; web preprocessing strips it.
  auto docs = MakeCorpus(corpus::CorpusKind::kRelevantWeb, 4, 8);
  for (auto& doc : docs) {
    doc.text = "<html><body><div><p>" + doc.text +
               "</p></div><div><p><a href='/x'>Home About Contact Login "
               "Register</a></p></div></body></html>";
  }
  FlowOptions options;
  options.web_preprocessing = true;
  options.entity_annotation = false;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto result = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(result.ok());
  const auto& analyzed = result->sink_outputs.at("analyzed");
  ASSERT_FALSE(analyzed.empty());
  const std::string& text = analyzed[0].Field(kFieldText).AsString();
  EXPECT_EQ(text.find("<html>"), std::string::npos);
  EXPECT_EQ(text.find("Home About"), std::string::npos);  // boilerplate gone
}

TEST_F(CoreTest, DocumentsToRecordsSchema) {
  auto docs = MakeCorpus(corpus::CorpusKind::kPmc, 2, 9);
  auto records = DocumentsToRecords(docs);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].Field(kFieldId).AsInt(),
            static_cast<int64_t>(docs[0].id));
  EXPECT_EQ(records[0].Field(kFieldCorpus).AsString(), "PMC");
  EXPECT_EQ(records[0].Field(kFieldText).AsString(), docs[0].text);
}

// -------------------------------------------------------- War stories

TEST_F(CoreTest, PaperScaleFlowExceeds24GbNodes) {
  FlowOptions options;
  options.paper_scale_memory = true;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  dataflow::ExecutorConfig config;
  config.memory_per_worker_budget = 24ull << 30;  // paper's nodes
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 2, 10);
  auto result = RunFlow(plan, docs, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CoreTest, SplitFlowPartsFitBudget) {
  FlowOptions full;
  full.paper_scale_memory = true;
  auto parts = SplitFlowByMemory(full, 24ull << 30);
  ASSERT_GE(parts.size(), 4u);  // linguistic + >=3 entity parts
  // The gene part must have been split further (20 GB dict + 10 GB ML > 24).
  size_t gene_parts = 0;
  for (const auto& part : parts) {
    if (part.entity_annotation && part.entity_types.size() == 1 &&
        part.entity_types[0] == ie::EntityType::kGene) {
      ++gene_parts;
      EXPECT_FALSE(part.dictionary_methods && part.ml_methods);
    }
  }
  EXPECT_EQ(gene_parts, 2u);
}

TEST_F(CoreTest, LibraryConflictDetected) {
  FlowOptions options;
  options.linguistic_analysis = false;
  options.entity_types = {ie::EntityType::kDisease};
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  Status status = CheckLibraryConflicts(plan);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("opennlp"), std::string::npos);
}

TEST_F(CoreTest, NoConflictWithoutDiseaseMl) {
  FlowOptions options;
  options.entity_types = {ie::EntityType::kGene, ie::EntityType::kDrug};
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  EXPECT_TRUE(CheckLibraryConflicts(plan).ok());
}

TEST_F(CoreTest, AnnotationsInflateDataVolume) {
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 10, 11);
  size_t input_bytes = 0;
  for (const auto& d : docs) input_bytes += d.text.size();
  FlowOptions options;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto result = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(result.ok());
  // Total bytes produced across the pipeline exceed the raw input — the
  // Sect. 4.2 network-pressure effect. Fused stages stream part of that
  // volume without materializing it; both shares are accounted.
  uint64_t produced =
      result->total_bytes_materialized + result->total_bytes_streamed;
  EXPECT_GT(produced, 2 * input_bytes);
  EXPECT_GT(result->total_bytes_materialized, input_bytes);
  EXPECT_GT(result->total_bytes_streamed, 0u);
}

TEST_F(CoreTest, DictionaryOpenCachedAcrossRuns) {
  // The Fig. 5 "hard lower bound": dictionary automaton construction runs
  // in Open(). With the process-wide cache, a second Run() of the same flow
  // must not pay it again — every operator reports a cached open.
  dataflow::Executor::ClearOpenCache();
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 4, 21);
  FlowOptions options;
  options.linguistic_analysis = false;  // entity flow: dict + ML taggers
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto first = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->open_cold, 0u);
  EXPECT_EQ(first->open_cached, 0u);
  auto second = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->open_cold, 0u);
  EXPECT_EQ(second->open_cached, first->open_cold);
  for (const auto& s : second->operator_stats) {
    EXPECT_TRUE(s.open_cached) << s.name;
    EXPECT_EQ(s.open_seconds, 0.0) << s.name;
  }
  dataflow::Executor::ClearOpenCache();
}

// -------------------------------------------------------- Analytics

TEST_F(CoreTest, AnalyzeRecordsMergesBranches) {
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 8, 12);
  FlowOptions options;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto result = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(result.ok());
  CorpusAnalysis analysis = AnalyzeRecords(
      corpus::CorpusKind::kMedline, result->sink_outputs.at("analyzed"));
  // Union emits 2 records per doc; analysis merges to one entry per doc.
  EXPECT_EQ(analysis.num_docs(), docs.size());
  EXPECT_GT(analysis.total_sentences, 0u);
  EXPECT_GT(analysis.mean_chars(), 100.0);
  // Both linguistic and entity measures present after the merge.
  uint64_t negations = 0, entities = 0;
  for (const auto& d : analysis.per_doc) {
    negations += d.negations;
    for (const auto& by_type : d.entities) {
      entities += by_type[0] + by_type[1];
    }
  }
  EXPECT_GT(negations, 0u);
  EXPECT_GT(entities, 0u);
}

TEST_F(CoreTest, TlaFilterReducesMlGeneNames) {
  auto docs = MakeCorpus(corpus::CorpusKind::kRelevantWeb, 8, 13);
  FlowOptions with_filter;
  with_filter.linguistic_analysis = false;
  with_filter.entity_types = {ie::EntityType::kGene};
  with_filter.tla_filter = true;
  FlowOptions without_filter = with_filter;
  without_filter.tla_filter = false;

  auto run = [&](const FlowOptions& options) {
    dataflow::Plan plan = BuildAnalysisFlow(context(), options);
    auto result = RunFlow(plan, docs, dataflow::ExecutorConfig{2, 0, 4});
    EXPECT_TRUE(result.ok());
    return AnalyzeRecords(corpus::CorpusKind::kRelevantWeb,
                          result->sink_outputs.at("analyzed"));
  };
  CorpusAnalysis unfiltered = run(without_filter);
  CorpusAnalysis filtered = run(with_filter);
  EXPECT_LT(filtered.DistinctNames(0, 1), unfiltered.DistinctNames(0, 1));
}

TEST(AnalyticsTest, VennComputesAllRegions) {
  std::array<std::set<std::string>, 4> sets;
  sets[0] = {"a", "ab", "abcd"};
  sets[1] = {"b", "ab", "abcd"};
  sets[2] = {"c", "abcd"};
  sets[3] = {"d", "abcd"};
  auto regions = ComputeOverlap(sets);
  EXPECT_EQ(regions.size(), 15u);
  double total_share = 0.0;
  uint64_t total_count = 0;
  for (const auto& region : regions) {
    total_share += region.share;
    total_count += region.count;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_EQ(total_count, 6u);  // distinct names across all sets
  // The all-four region holds exactly "abcd".
  for (const auto& region : regions) {
    if (region.membership == 0xF) {
      EXPECT_EQ(region.count, 1u);
    }
    if (region.membership == 0x3) {
      EXPECT_EQ(region.count, 1u);  // "ab"
    }
  }
}

TEST(AnalyticsTest, VennEmptySets) {
  std::array<std::set<std::string>, 4> sets;
  auto regions = ComputeOverlap(sets);
  for (const auto& region : regions) {
    EXPECT_EQ(region.count, 0u);
    EXPECT_EQ(region.share, 0.0);
  }
}

TEST_F(CoreTest, JsdBetweenCorporaSymmetric) {
  auto rel_docs = MakeCorpus(corpus::CorpusKind::kRelevantWeb, 6, 14);
  auto irrel_docs = MakeCorpus(corpus::CorpusKind::kIrrelevantWeb, 6, 15);
  FlowOptions options;
  options.linguistic_analysis = false;
  dataflow::Plan plan = BuildAnalysisFlow(context(), options);
  auto rel = RunFlow(plan, rel_docs, dataflow::ExecutorConfig{2, 0, 4});
  auto irrel = RunFlow(plan, irrel_docs, dataflow::ExecutorConfig{2, 0, 4});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(irrel.ok());
  auto a = AnalyzeRecords(corpus::CorpusKind::kRelevantWeb,
                          rel->sink_outputs.at("analyzed"));
  auto b = AnalyzeRecords(corpus::CorpusKind::kIrrelevantWeb,
                          irrel->sink_outputs.at("analyzed"));
  double ab = EntityDistributionJsd(a, b, 0, 0);
  double ba = EntityDistributionJsd(b, a, 0, 0);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GT(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

// One synthetic analyzed record carrying the given (type, method, surface)
// entity annotations, shaped like the "analyzed" sink output.
dataflow::Record MakeEntityRecord(
    int64_t doc_id,
    const std::vector<std::array<std::string, 3>>& annotations) {
  dataflow::Record record;
  record.SetField(kFieldId, doc_id);
  record.SetField(kFieldText, "synthetic");
  dataflow::Value::Array entities;
  for (const auto& [type, method, surface] : annotations) {
    dataflow::Value entity;
    entity.SetField("type", type);
    entity.SetField("method", method);
    entity.SetField("surface", surface);
    entity.SetField("b", 0);
    entity.SetField("e", 1);
    entities.push_back(std::move(entity));
  }
  record.SetField(kFieldEntities, dataflow::Value(std::move(entities)));
  return record;
}

// Regression: DistinctNames(t, 0) + DistinctNames(t, 1) double-counts names
// found by both methods; the "all methods" accessor must count the union.
TEST(AnalyticsTest, CombinedDistinctDoesNotDoubleCount) {
  dataflow::Dataset analyzed;
  analyzed.push_back(MakeEntityRecord(
      1, {{"gene", "dict", "braf"},    // found by both methods (and as an
          {"gene", "ml", "BRAF"},      // uppercase variant: same name after
          {"gene", "dict", "kras"}})); // normalization)
  analyzed.push_back(MakeEntityRecord(2, {{"gene", "ml", "tp53"},
                                          {"drug", "dict", "aspirin"},
                                          {"bogus-type", "dict", "x"},
                                          {"gene", "bogus-method", "y"}}));
  CorpusAnalysis analysis =
      AnalyzeRecords(corpus::CorpusKind::kMedline, analyzed);

  EXPECT_EQ(analysis.DistinctNames(0, 0), 2u);  // braf, kras
  EXPECT_EQ(analysis.DistinctNames(0, 1), 2u);  // braf, tp53
  // Naive sum says 4; braf was found by both methods, so the union is 3.
  EXPECT_EQ(analysis.DistinctNamesAllMethods(0), 3u);
  EXPECT_EQ(analysis.DistinctNamesAllMethods(1), 1u);  // aspirin
  EXPECT_EQ(analysis.DistinctNamesAllMethods(2), 0u);
  // Occurrence counts survive the flat-map swap, including normalization.
  EXPECT_EQ(analysis.names[0][0].Count("braf"), 1u);
  EXPECT_EQ(analysis.names[0][1].Count("braf"), 1u);
  EXPECT_GT(analysis.NameTableMemoryBytes(), 0u);
}

// -------------------------------------------------------- Meteor bridge

TEST_F(CoreTest, MeteorScriptDrivesDomainOperators) {
  dataflow::OperatorRegistry registry;
  RegisterPipelineOperators(context(), &registry);
  EXPECT_GE(registry.size(), 10u);
  dataflow::MeteorParser parser(&registry);
  auto plan = parser.Parse(R"(
    $docs  = read 'docs';
    $sent  = annotate_sentences $docs;
    $neg   = find_negation $sent;
    $drugs = annotate_entities $neg type 'drug' method 'dict';
    write $drugs 'out';
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto docs = MakeCorpus(corpus::CorpusKind::kMedline, 5, 16);
  dataflow::Executor executor(dataflow::ExecutorConfig{2, 0, 4});
  std::map<std::string, dataflow::Dataset> sources;
  sources["docs"] = DocumentsToRecords(docs);
  auto result = executor.Run(plan.value(), sources);
  ASSERT_TRUE(result.ok());
  const auto& out = result->sink_outputs.at("out");
  ASSERT_EQ(out.size(), docs.size());
  size_t entities = 0;
  for (const auto& r : out) entities += r.Field(kFieldEntities).AsArray().size();
  EXPECT_GT(entities, 0u);
}

}  // namespace
}  // namespace wsie::core
