// Tests for the epoch-based reclamation layer (common/epoch.h) and the
// lock-free snapshot publication built on it in store::AnnotationStore.
// The stress tests here are the TSan targets for the serving tentpole:
// readers stay pinned across a compaction storm (>= 100 compactions) and
// must observe zero anomalies and no use of a retired segment set.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"

namespace wsie {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("wsie_epoch_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------- EpochManager

// Retire takes a plain function pointer, so the tests count frees through
// the payload's destructor instead of a capturing lambda.
struct Tracked {
  std::atomic<uint64_t>* counter;
  ~Tracked() { counter->fetch_add(1); }
};

TEST(EpochManagerTest, RetireIsDeferredUntilAllGuardsRelease) {
  EpochManager epochs;
  std::atomic<uint64_t> freed{0};
  {
    EpochManager::Guard guard(epochs);
    epochs.Retire(new Tracked{&freed});
    epochs.AdvanceEpoch();
    // The guard pinned the epoch the object was retired in: reclamation
    // must not free it while we still hold the pin.
    epochs.TryReclaim();
    EXPECT_EQ(freed.load(), 0u);
    EXPECT_EQ(epochs.limbo_size(), 1u);
  }
  epochs.TryReclaim();
  EXPECT_EQ(freed.load(), 1u);
  EXPECT_EQ(epochs.limbo_size(), 0u);
  EXPECT_EQ(epochs.retired_total(), 1u);
  EXPECT_EQ(epochs.reclaimed_total(), 1u);
}

TEST(EpochManagerTest, GuardsNestWithoutDeadlockOrDoubleRelease) {
  EpochManager epochs;
  std::atomic<uint64_t> freed{0};
  {
    EpochManager::Guard outer(epochs);
    {
      EpochManager::Guard inner(epochs);
      epochs.Retire(new Tracked{&freed});
      epochs.AdvanceEpoch();
    }
    // Inner released but outer still pins the pre-retire epoch.
    epochs.TryReclaim();
    EXPECT_EQ(freed.load(), 0u);
  }
  epochs.TryReclaim();
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochManagerTest, UnpinnedRetireReclaimsImmediately) {
  EpochManager epochs;
  std::atomic<uint64_t> destroyed{0};
  epochs.Retire(new Tracked{&destroyed});
  epochs.AdvanceEpoch();
  EXPECT_EQ(epochs.TryReclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1u);
}

TEST(EpochManagerTest, ManyThreadsPinAndReleaseWithoutLeaks) {
  EpochManager epochs;
  std::atomic<uint64_t> freed{0};
  std::atomic<bool> stop{false};

  std::thread retirer([&] {
    for (int i = 0; i < 500; ++i) {
      epochs.Retire(new Tracked{&freed});
      epochs.AdvanceEpoch();
      epochs.TryReclaim();
      if (i % 16 == 0) std::this_thread::yield();
    }
  });

  std::vector<std::thread> pinners;
  for (int t = 0; t < 8; ++t) {
    pinners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard guard(epochs);
        std::this_thread::yield();
      }
    });
  }
  retirer.join();
  stop = true;
  for (auto& pinner : pinners) pinner.join();
  // All pins are gone: everything retired must now be reclaimable.
  epochs.TryReclaim();
  EXPECT_EQ(freed.load(), 500u);
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

TEST(EpochManagerTest, RetiredObjectsAreNotReusedWhilePinned) {
  // A pinned reader dereferences a payload that was retired after it
  // pinned; the payload must stay intact (sentinel unchanged) until the
  // pin drops. Under ASan/TSan a premature free here is a hard failure.
  EpochManager epochs;
  constexpr uint64_t kSentinel = 0xfeedfacecafebeefull;
  auto* payload = new uint64_t(kSentinel);
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochManager::Guard guard(epochs);
    pinned.store(true);
    while (!release.load()) {
      EXPECT_EQ(*payload, kSentinel);
      std::this_thread::yield();
    }
    EXPECT_EQ(*payload, kSentinel);
  });
  while (!pinned.load()) std::this_thread::yield();
  epochs.Retire(payload, [](void* p) {
    *static_cast<uint64_t*>(p) = 0;  // poison before free
    delete static_cast<uint64_t*>(p);
  });
  epochs.AdvanceEpoch();
  for (int i = 0; i < 50; ++i) {
    epochs.TryReclaim();
    std::this_thread::yield();
  }
  release.store(true);
  reader.join();
  epochs.TryReclaim();
  EXPECT_EQ(epochs.limbo_size(), 0u);
}

// ------------------------------------------- store compaction storm

store::SegmentBuilder StormSegment(uint64_t round) {
  store::SegmentBuilder builder;
  for (uint64_t t = 0; t < 8; ++t) {
    store::Posting posting{round * 8 + t, static_cast<uint32_t>(t % 5),
                           static_cast<uint32_t>(t),
                           static_cast<uint32_t>(t + 3)};
    builder.Add("storm", 0, 0, 0, posting);
    builder.Add("aux" + std::to_string((round + t) % 17), 0, 1,
                static_cast<uint8_t>(t % 2), posting);
  }
  builder.AddCorpusStats(0, 1, 9, 400);
  return builder;
}

TEST(EpochReclamationStressTest, ReadersPinnedAcrossCompactionStorm) {
  auto store_or = store::AnnotationStore::Open(FreshDir("storm"));
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  ASSERT_TRUE(store->Append(StormSegment(0)).ok());

  serve::QueryEngine engine(store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};
  std::atomic<uint64_t> reads{0};

  // Readers hold each pin across several queries (ExecuteBatch pins once
  // for the whole batch) so pins reliably straddle compactions.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      uint64_t last_count = 0;
      std::vector<serve::QueryEngine::Request> requests(3);
      std::vector<serve::QueryEngine::Response> responses(3);
      requests[0].kind = serve::QueryEngine::Request::Kind::kLookup;
      requests[0].name = "storm";
      requests[1].kind = serve::QueryEngine::Request::Kind::kTopK;
      requests[1].limit = 4;
      requests[2].kind = serve::QueryEngine::Request::Kind::kFrequency;
      while (!stop.load(std::memory_order_relaxed)) {
        engine.ExecuteBatch(requests.data(), responses.data(),
                            requests.size());
        const auto& lookup = responses[0].lookup;
        // "storm" only ever gains postings; a dip means a torn or reused
        // segment set.
        if (!lookup.found || lookup.count < last_count) anomalies.fetch_add(1);
        last_count = lookup.count;
        if (responses[1].topk.empty()) anomalies.fetch_add(1);
        if (responses[2].frequency.sentences == 0) anomalies.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }

  // Writer + explicit compaction storm: each pass appends two segments so
  // the following Compact() has real merge work — >= 100 real compactions.
  uint64_t compactions = 0, round = 1;
  while (compactions < 120) {
    ASSERT_TRUE(store->Append(StormSegment(round++)).ok());
    ASSERT_TRUE(store->Append(StormSegment(round++)).ok());
    ASSERT_GE(store->num_segments(), 2u);
    ASSERT_TRUE(store->Compact().ok());
    ASSERT_EQ(store->num_segments(), 1u);
    ++compactions;
  }
  stop = true;
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(compactions, 100u);
  // With all readers gone every retired segment set must drain.
  EpochManager::Global().TryReclaim();
  EXPECT_EQ(EpochManager::Global().limbo_size(), 0u);

  // Post-storm integrity: the survivor holds every posting ever appended.
  auto final_lookup = engine.Lookup("storm");
  EXPECT_TRUE(final_lookup.found);
  EXPECT_EQ(final_lookup.count, round * 8);
}

TEST(EpochReclamationStressTest, BackgroundCompactorAndSnapshotsCoexist) {
  auto store_or = store::AnnotationStore::Open(FreshDir("bg_storm"));
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  ASSERT_TRUE(store->Append(StormSegment(0)).ok());
  serve::QueryEngine engine(store);
  store::BackgroundCompactor compactor(store, /*min_segments=*/2,
                                       std::chrono::milliseconds(1));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};

  // Owning snapshots (shared_ptr copies) taken while epochs churn: they
  // must stay valid even after their segment set is retired and reclaimed.
  std::thread snapshotter([&] {
    std::vector<store::AnnotationStore::Snapshot> held;
    while (!stop.load(std::memory_order_relaxed)) {
      held.push_back(store->snapshot());
      if (held.size() > 8) held.erase(held.begin());
      for (const auto& snapshot : held) {
        uint64_t postings = 0;
        for (const auto& segment : snapshot.segments) {
          postings += segment->num_postings();
        }
        if (postings == 0) anomalies.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto lookup = engine.Lookup("storm");
      if (!lookup.found || lookup.count < last) anomalies.fetch_add(1);
      last = lookup.count;
    }
  });

  for (uint64_t round = 1; round <= 60; ++round) {
    ASSERT_TRUE(store->Append(StormSegment(round)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop = true;
  snapshotter.join();
  reader.join();
  compactor.Stop();
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(compactor.compactions_run(), 0u);
}

}  // namespace
}  // namespace wsie
