#include <gtest/gtest.h>

#include <set>

#include "common/string_util.h"
#include "ie/aho_corasick.h"
#include "ie/annotation.h"
#include "ie/crf_tagger.h"
#include "ie/dictionary_tagger.h"
#include "ie/term_expander.h"
#include "text/tokenizer.h"

namespace wsie::ie {
namespace {

// ------------------------------------------------------------ AhoCorasick

TEST(AhoCorasickTest, FindsSinglePattern) {
  AhoCorasick ac;
  ac.AddPattern("brca1");
  ac.Build();
  auto matches = ac.FindAll("the brca1 gene");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 4u);
  EXPECT_EQ(matches[0].end, 9u);
}

TEST(AhoCorasickTest, CaseInsensitiveFolding) {
  AhoCorasick ac;
  ac.AddPattern("aspirin");
  ac.Build();
  EXPECT_EQ(ac.FindAll("Aspirin ASPIRIN aspirin").size(), 3u);
}

TEST(AhoCorasickTest, FindsOverlappingPatterns) {
  AhoCorasick ac;
  uint32_t id_he = ac.AddPattern("he");
  uint32_t id_she = ac.AddPattern("she");
  uint32_t id_hers = ac.AddPattern("hers");
  ac.Build();
  auto matches = ac.FindAll("shers");
  std::set<uint32_t> found;
  for (const auto& m : matches) found.insert(m.pattern_id);
  EXPECT_TRUE(found.count(id_he));
  EXPECT_TRUE(found.count(id_she));
  EXPECT_TRUE(found.count(id_hers));
}

TEST(AhoCorasickTest, MultiWordPatterns) {
  AhoCorasick ac;
  ac.AddPattern("breast cancer");
  ac.Build();
  auto matches = ac.FindAll("a breast cancer study");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].begin, 2u);
}

TEST(AhoCorasickTest, NoMatches) {
  AhoCorasick ac;
  ac.AddPattern("zzz");
  ac.Build();
  EXPECT_TRUE(ac.FindAll("nothing here").empty());
  EXPECT_TRUE(ac.FindAll("").empty());
}

TEST(AhoCorasickTest, KeepLongestDropsContained) {
  std::vector<AutomatonMatch> matches = {
      {0, 0, 5},   // contains the next
      {1, 1, 3},
      {2, 10, 15},
  };
  auto kept = AhoCorasick::KeepLongest(matches);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].begin, 0u);
  EXPECT_EQ(kept[1].begin, 10u);
}

TEST(AhoCorasickTest, MemoryGrowsWithDictionary) {
  AhoCorasick small, large;
  small.AddPattern("abc");
  small.Build();
  for (int i = 0; i < 1000; ++i) {
    large.AddPattern("pattern" + std::to_string(i));
  }
  large.Build();
  EXPECT_GT(large.ApproxMemoryBytes(), small.ApproxMemoryBytes() * 10);
  EXPECT_EQ(large.num_patterns(), 1000u);
}

TEST(AhoCorasickTest, ManyPatternsSingleScan) {
  AhoCorasick ac;
  for (int i = 0; i < 500; ++i) ac.AddPattern("term" + std::to_string(i));
  ac.Build();
  // Raw matches include substring hits ("term49" ends inside "term499");
  // longest-match filtering yields exactly the three surface mentions.
  auto matches = AhoCorasick::KeepLongest(
      ac.FindAll("term0 and term499 and term250"));
  EXPECT_EQ(matches.size(), 3u);
}

// ------------------------------------------------------------ TermExpander

TEST(TermExpanderTest, OriginalAlwaysFirst) {
  TermExpander expander;
  auto variants = expander.Expand("thymoma");
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants[0], "thymoma");
}

TEST(TermExpanderTest, PluralVariants) {
  TermExpander expander;
  auto variants = expander.Expand("tumor");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "tumors"),
            variants.end());
}

TEST(TermExpanderTest, ConsonantYPlural) {
  TermExpander expander;
  auto variants = expander.Expand("therapy");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "therapies"),
            variants.end());
}

TEST(TermExpanderTest, SingularizesPluralEntry) {
  TermExpander expander;
  auto variants = expander.Expand("tumors");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "tumor"),
            variants.end());
}

TEST(TermExpanderTest, HyphenSpaceVariants) {
  TermExpander expander;
  auto variants = expander.Expand("GAD-67");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "GAD 67"),
            variants.end());
  EXPECT_NE(std::find(variants.begin(), variants.end(), "GAD67"),
            variants.end());
}

TEST(TermExpanderTest, SpaceToHyphen) {
  TermExpander expander;
  auto variants = expander.Expand("beta blocker");
  EXPECT_NE(std::find(variants.begin(), variants.end(), "beta-blocker"),
            variants.end());
}

TEST(TermExpanderTest, GreekLetterVariants) {
  TermExpander expander;
  auto variants = expander.Expand("TNF-alpha");
  bool found = false;
  for (const auto& v : variants) {
    if (v == "TNF-a") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TermExpanderTest, NoDuplicates) {
  TermExpander expander;
  auto variants = expander.Expand("GAD-67");
  std::set<std::string> unique(variants.begin(), variants.end());
  EXPECT_EQ(unique.size(), variants.size());
}

TEST(TermExpanderTest, OptionsDisableExpansion) {
  TermExpanderOptions options;
  options.plural_variants = false;
  options.hyphen_space_variants = false;
  options.greek_letter_variants = false;
  TermExpander expander(options);
  EXPECT_EQ(expander.Expand("GAD-67").size(), 1u);
}

// --------------------------------------------------------- DictionaryTagger

TEST(DictionaryTaggerTest, TagsMentions) {
  DictionaryTagger tagger(EntityType::kDrug, {"Aspirin", "Tamoxifen"});
  auto annotations = tagger.Tag(7, "She took aspirin and tamoxifen daily.");
  ASSERT_EQ(annotations.size(), 2u);
  EXPECT_EQ(annotations[0].doc_id, 7u);
  EXPECT_EQ(annotations[0].surface, "aspirin");
  EXPECT_EQ(annotations[0].entity_type, EntityType::kDrug);
  EXPECT_EQ(annotations[0].method, AnnotationMethod::kDictionary);
}

TEST(DictionaryTaggerTest, RespectsWordBoundaries) {
  DictionaryTagger tagger(EntityType::kGene, {"RAS"});
  EXPECT_TRUE(tagger.Tag(1, "the KRAS pathway").empty());
  EXPECT_EQ(tagger.Tag(1, "the RAS pathway").size(), 1u);
}

TEST(DictionaryTaggerTest, OffsetsMatchSource) {
  DictionaryTagger tagger(EntityType::kDisease, {"breast cancer"});
  std::string text = "Study of breast cancer outcomes.";
  auto annotations = tagger.Tag(1, text);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(text.substr(annotations[0].begin, annotations[0].length()),
            "breast cancer");
}

TEST(DictionaryTaggerTest, LongestMatchWins) {
  DictionaryTagger tagger(EntityType::kDisease, {"cancer", "breast cancer"});
  auto annotations = tagger.Tag(1, "breast cancer");
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].surface, "breast cancer");
}

TEST(DictionaryTaggerTest, PluralVariantMatched) {
  DictionaryTagger tagger(EntityType::kDisease, {"thymoma"});
  EXPECT_EQ(tagger.Tag(1, "several thymomas were found").size(), 1u);
}

TEST(DictionaryTaggerTest, BuildStatsPopulated) {
  std::vector<std::string> dict;
  for (int i = 0; i < 200; ++i) dict.push_back("gene" + std::to_string(i));
  DictionaryTagger tagger(EntityType::kGene, dict);
  const auto& stats = tagger.build_stats();
  EXPECT_EQ(stats.dictionary_entries, 200u);
  EXPECT_GE(stats.expanded_patterns, 200u);
  EXPECT_GT(stats.automaton_nodes, 200u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(DictionaryTaggerTest, ShortPatternsDropped) {
  DictionaryTagger tagger(EntityType::kGene, {"ab"});
  EXPECT_TRUE(tagger.Tag(1, "ab here").empty());
}

// ------------------------------------------------------------ CrfTagger

std::vector<TaggedSentence> MakeToyGold() {
  // Pattern: tokens that look like gene symbols (contain a digit, all caps
  // prefix) are entities.
  text::Tokenizer tokenizer;
  std::vector<TaggedSentence> gold;
  const char* sentences[] = {
      "The BRCA1 gene was studied",     "We measured TP53 in samples",
      "Results for EGFR2 were clear",   "The KRAS4 mutation appeared",
      "Analysis of MYC7 continued",     "The protein binds ABC3 today",
      "Expression of DEF8 increased",   "The GHI9 level dropped",
  };
  for (const char* s : sentences) {
    TaggedSentence ts;
    ts.tokens = tokenizer.Tokenize(s);
    for (size_t t = 0; t < ts.tokens.size(); ++t) {
      std::string_view w = ts.tokens[t].text;
      bool is_gene = w.size() >= 3 && wsie::ContainsDigit(w) &&
                     wsie::IsAllUpper(w.substr(0, 3));
      if (is_gene) ts.spans.push_back(GoldSpan{t, t + 1});
    }
    gold.push_back(std::move(ts));
  }
  // Replicate for more training signal.
  std::vector<TaggedSentence> out;
  for (int i = 0; i < 10; ++i) {
    out.insert(out.end(), gold.begin(), gold.end());
  }
  return out;
}

TEST(CrfTaggerTest, LearnsGeneShapedTokens) {
  CrfTagger tagger(EntityType::kGene, 1 << 14);
  tagger.Train(MakeToyGold());
  text::Tokenizer tokenizer;
  std::string sentence = "The XYZ5 gene was measured";
  auto tokens = tokenizer.Tokenize(sentence);
  auto annotations = tagger.TagSentence(1, 0, sentence, tokens);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].surface, "XYZ5");
  EXPECT_EQ(annotations[0].method, AnnotationMethod::kMl);
}

TEST(CrfTaggerTest, EmptySentence) {
  CrfTagger tagger(EntityType::kGene);
  EXPECT_TRUE(tagger.TagSentence(1, 0, "", {}).empty());
}

TEST(CrfTaggerTest, AnnotationCarriesSentenceId) {
  CrfTagger tagger(EntityType::kGene, 1 << 14);
  tagger.Train(MakeToyGold());
  text::Tokenizer tokenizer;
  std::string sentence = "We studied BRCA1 here";
  auto annotations =
      tagger.TagSentence(42, 9, sentence, tokenizer.Tokenize(sentence));
  ASSERT_FALSE(annotations.empty());
  EXPECT_EQ(annotations[0].doc_id, 42u);
  EXPECT_EQ(annotations[0].sentence_id, 9u);
}

TEST(NerFeaturesTest, ProducesFeaturesPerToken) {
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize("The BRCA1 gene");
  auto features = ExtractNerFeatures(tokens);
  ASSERT_EQ(features.size(), 3u);
  for (const auto& f : features) EXPECT_GT(f.size(), 5u);
}

// ------------------------------------------------------------ Merge / TLA

Annotation Ann(uint64_t doc, uint32_t b, uint32_t e, const char* surface,
               AnnotationMethod method,
               EntityType type = EntityType::kGene) {
  Annotation a;
  a.doc_id = doc;
  a.begin = b;
  a.end = e;
  a.surface = surface;
  a.method = method;
  a.entity_type = type;
  return a;
}

TEST(MergeHybridTest, UnionsNonOverlapping) {
  auto merged =
      MergeHybrid({Ann(1, 0, 5, "BRCA1", AnnotationMethod::kMl)},
                  {Ann(1, 10, 15, "KRAS2", AnnotationMethod::kDictionary)});
  EXPECT_EQ(merged.size(), 2u);
  // Hybrid output is uniformly labeled as ML (ChemSpot behaviour).
  EXPECT_EQ(merged[1].method, AnnotationMethod::kMl);
}

TEST(MergeHybridTest, CrfWinsOnOverlap) {
  auto merged =
      MergeHybrid({Ann(1, 0, 5, "BRCA1", AnnotationMethod::kMl)},
                  {Ann(1, 3, 8, "CA1XY", AnnotationMethod::kDictionary)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].surface, "BRCA1");
}

TEST(MergeHybridTest, DifferentDocsNeverOverlap) {
  auto merged =
      MergeHybrid({Ann(1, 0, 5, "BRCA1", AnnotationMethod::kMl)},
                  {Ann(2, 0, 5, "BRCA1", AnnotationMethod::kDictionary)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(TlaFilterTest, RemovesMlGeneTlas) {
  size_t removed = 0;
  auto kept = FilterTlaAnnotations(
      {Ann(1, 0, 3, "ABC", AnnotationMethod::kMl),
       Ann(1, 5, 10, "BRCA1", AnnotationMethod::kMl),
       Ann(1, 12, 15, "DEF", AnnotationMethod::kDictionary)},
      &removed);
  EXPECT_EQ(removed, 1u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].surface, "BRCA1");
  EXPECT_EQ(kept[1].surface, "DEF");  // dictionary TLAs survive
}

TEST(TlaFilterTest, KeepsLowercaseTriples) {
  size_t removed = 0;
  auto kept = FilterTlaAnnotations(
      {Ann(1, 0, 3, "abc", AnnotationMethod::kMl)}, &removed);
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(kept.size(), 1u);
}

// ------------------------------------------------------------ Annotation

TEST(AnnotationTest, Names) {
  EXPECT_STREQ(EntityTypeName(EntityType::kGene), "gene");
  EXPECT_STREQ(EntityTypeName(EntityType::kDrug), "drug");
  EXPECT_STREQ(EntityTypeName(EntityType::kDisease), "disease");
  EXPECT_STREQ(AnnotationMethodName(AnnotationMethod::kDictionary), "dict");
  EXPECT_STREQ(AnnotationMethodName(AnnotationMethod::kMl), "ml");
}

TEST(AnnotationTest, ByteSizeCountsStrings) {
  Annotation a = Ann(1, 0, 5, "BRCA1", AnnotationMethod::kMl);
  size_t base = AnnotationByteSize(a);
  a.surface = "a much longer surface string";
  EXPECT_GT(AnnotationByteSize(a), base);
}

}  // namespace
}  // namespace wsie::ie
