#include <gtest/gtest.h>

#include "corpus/lexicon.h"
#include "html/markup_remover.h"
#include "web/page_renderer.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"
#include "web/url.h"
#include "web/web_graph.h"

namespace wsie::web {
namespace {

// ------------------------------------------------------------ URL

TEST(UrlTest, ParsesAbsolute) {
  Url url;
  ASSERT_TRUE(ParseUrl("http://example.org/path/page.html", &url));
  EXPECT_EQ(url.host, "example.org");
  EXPECT_EQ(url.path, "/path/page.html");
}

TEST(UrlTest, DefaultsPath) {
  Url url;
  ASSERT_TRUE(ParseUrl("https://example.org", &url));
  EXPECT_EQ(url.path, "/");
}

TEST(UrlTest, RejectsNonHttp) {
  Url url;
  EXPECT_FALSE(ParseUrl("ftp://example.org/x", &url));
  EXPECT_FALSE(ParseUrl("not a url", &url));
  EXPECT_FALSE(ParseUrl("http:///nohost", &url));
}

TEST(UrlTest, StripsFragment) {
  Url url;
  ASSERT_TRUE(ParseUrl("http://x.org/page.html#section", &url));
  EXPECT_EQ(url.path, "/page.html");
}

TEST(UrlTest, ResolveAbsoluteLink) {
  Url base;
  ParseUrl("http://a.org/dir/page.html", &base);
  Url out;
  ASSERT_TRUE(ResolveLink(base, "http://b.org/x", &out));
  EXPECT_EQ(out.host, "b.org");
}

TEST(UrlTest, ResolveSiteRelative) {
  Url base;
  ParseUrl("http://a.org/dir/page.html", &base);
  Url out;
  ASSERT_TRUE(ResolveLink(base, "/other.html", &out));
  EXPECT_EQ(out.host, "a.org");
  EXPECT_EQ(out.path, "/other.html");
}

TEST(UrlTest, ResolveDocumentRelative) {
  Url base;
  ParseUrl("http://a.org/dir/page.html", &base);
  Url out;
  ASSERT_TRUE(ResolveLink(base, "sibling.html", &out));
  EXPECT_EQ(out.path, "/dir/sibling.html");
}

TEST(UrlTest, ResolveRejectsNonNavigable) {
  Url base;
  ParseUrl("http://a.org/", &base);
  Url out;
  EXPECT_FALSE(ResolveLink(base, "mailto:x@y.org", &out));
  EXPECT_FALSE(ResolveLink(base, "javascript:void(0)", &out));
  EXPECT_FALSE(ResolveLink(base, "#anchor", &out));
  EXPECT_FALSE(ResolveLink(base, "", &out));
}

TEST(UrlTest, DomainOf) {
  EXPECT_EQ(DomainOf("www.portal.example.org"), "example.org");
  EXPECT_EQ(DomainOf("example.org"), "example.org");
  EXPECT_EQ(DomainOf("localhost"), "localhost");
}

// ------------------------------------------------------------ WebGraph

class WebGraphTest : public ::testing::Test {
 protected:
  static WebConfig SmallConfig() {
    WebConfig config;
    config.num_hosts = 60;
    config.mean_pages_per_host = 10;
    config.seed = 21;
    return config;
  }
};

TEST_F(WebGraphTest, GeneratesHostsAndPages) {
  SyntheticWeb web(SmallConfig());
  EXPECT_EQ(web.hosts().size(), 60u);
  EXPECT_GT(web.pages().size(), 200u);
}

TEST_F(WebGraphTest, DeterministicFromSeed) {
  SyntheticWeb a(SmallConfig()), b(SmallConfig());
  ASSERT_EQ(a.pages().size(), b.pages().size());
  for (size_t i = 0; i < a.pages().size(); ++i) {
    EXPECT_EQ(a.pages()[i].path, b.pages()[i].path);
    EXPECT_EQ(a.pages()[i].relevant, b.pages()[i].relevant);
  }
}

TEST_F(WebGraphTest, HostTopicMixRoughlyRespected) {
  SyntheticWeb web(SmallConfig());
  size_t biomed = 0, traps = 0;
  for (const HostInfo& host : web.hosts()) {
    if (host.topic == HostTopic::kBiomedResearch ||
        host.topic == HostTopic::kBiomedPortal)
      ++biomed;
    if (host.topic == HostTopic::kTrap) ++traps;
  }
  EXPECT_GT(biomed, 5u);
  EXPECT_GE(traps, 1u);
}

TEST_F(WebGraphTest, OutlinksReferenceValidPages) {
  SyntheticWeb web(SmallConfig());
  for (const PageInfo& page : web.pages()) {
    for (uint64_t target : page.outlinks) {
      ASSERT_LT(target, web.pages().size());
      EXPECT_NE(target, page.id);  // no self links
    }
  }
}

TEST_F(WebGraphTest, UrlLookupRoundTrip) {
  SyntheticWeb web(SmallConfig());
  const PageInfo& page = web.pages()[5];
  const PageInfo* found = web.FindPage(web.UrlOf(page));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, page.id);
  EXPECT_EQ(web.FindPage("http://unknown.example/zz"), nullptr);
}

TEST_F(WebGraphTest, NonEnglishHostsHaveLanguage) {
  SyntheticWeb web(SmallConfig());
  for (const HostInfo& host : web.hosts()) {
    if (host.topic == HostTopic::kNonEnglish) {
      EXPECT_NE(host.language, "en");
    } else {
      EXPECT_EQ(host.language, "en");
    }
  }
}

TEST_F(WebGraphTest, RelevantPagesMostlyOnBiomedHosts) {
  SyntheticWeb web(SmallConfig());
  size_t biomed_rel = 0, off_rel = 0, biomed_total = 0, off_total = 0;
  for (const PageInfo& page : web.pages()) {
    const HostInfo& host = web.HostOf(page);
    bool biomed = host.topic == HostTopic::kBiomedResearch ||
                  host.topic == HostTopic::kBiomedPortal;
    if (biomed) {
      ++biomed_total;
      if (page.relevant) ++biomed_rel;
    } else if (host.topic == HostTopic::kOffDomain) {
      ++off_total;
      if (page.relevant) ++off_rel;
    }
  }
  ASSERT_GT(biomed_total, 0u);
  ASSERT_GT(off_total, 0u);
  double biomed_rate = static_cast<double>(biomed_rel) / biomed_total;
  double off_rate = static_cast<double>(off_rel) / off_total;
  EXPECT_GT(biomed_rate, 0.5);
  EXPECT_LT(off_rate, 0.15);
}

TEST_F(WebGraphTest, SomeNonTextualPages) {
  SyntheticWeb web(SmallConfig());
  size_t nontext = 0;
  for (const PageInfo& page : web.pages()) {
    if (page.mime != lang::MimeClass::kHtml) ++nontext;
  }
  EXPECT_GT(nontext, 0u);
}

// ------------------------------------------------------------ Renderer

class RendererTest : public ::testing::Test {
 protected:
  RendererTest()
      : lexicons_(corpus::LexiconConfig{500, 100, 100, 3}),
        web_(WebGraphTest_SmallConfig()),
        renderer_(&web_, &lexicons_) {}

  static WebConfig WebGraphTest_SmallConfig() {
    WebConfig config;
    config.num_hosts = 40;
    config.mean_pages_per_host = 8;
    config.seed = 22;
    return config;
  }

  const PageInfo& FirstHtmlPage(bool relevant) const {
    for (const PageInfo& page : web_.pages()) {
      if (page.mime == lang::MimeClass::kHtml && page.relevant == relevant &&
          web_.HostOf(page).language == "en") {
        return page;
      }
    }
    return web_.pages()[0];
  }

  corpus::EntityLexicons lexicons_;
  SyntheticWeb web_;
  PageRenderer renderer_;
};

TEST_F(RendererTest, DeterministicRendering) {
  const PageInfo& page = FirstHtmlPage(true);
  RenderedPage a = renderer_.Render(page);
  RenderedPage b = renderer_.Render(page);
  EXPECT_EQ(a.html, b.html);
  EXPECT_EQ(a.net_text, b.net_text);
}

TEST_F(RendererTest, HtmlContainsContentAndBoilerplate) {
  RendererConfig config;
  config.markup_error_page_frac = 0.0;  // clean page for inspection
  PageRenderer clean_renderer(&web_, &lexicons_, config);
  const PageInfo& page = FirstHtmlPage(true);
  RenderedPage rendered = clean_renderer.Render(page);
  EXPECT_NE(rendered.html.find("<title>"), std::string::npos);
  EXPECT_NE(rendered.html.find("class=\"nav\""), std::string::npos);
  EXPECT_NE(rendered.html.find("class=\"footer\""), std::string::npos);
  // Ground-truth net text words appear in the HTML.
  EXPECT_FALSE(rendered.net_text.empty());
  std::string first_words = rendered.net_text.substr(0, 20);
  EXPECT_NE(rendered.html.find(first_words), std::string::npos);
}

TEST_F(RendererTest, PdfPagesGetMagicBytes) {
  for (const PageInfo& page : web_.pages()) {
    if (page.mime == lang::MimeClass::kPdf) {
      RenderedPage rendered = renderer_.Render(page);
      EXPECT_EQ(rendered.html.substr(0, 5), "%PDF-");
      return;
    }
  }
  GTEST_SKIP() << "no pdf page in this small web";
}

TEST_F(RendererTest, ManglingInjectsErrors) {
  RendererConfig config;
  config.markup_error_page_frac = 1.0;
  config.severe_error_page_frac = 0.0;
  PageRenderer mangling_renderer(&web_, &lexicons_, config);
  const PageInfo& page = FirstHtmlPage(true);
  RenderedPage rendered = mangling_renderer.Render(page);
  EXPECT_GT(rendered.injected_errors, 0);
  EXPECT_FALSE(rendered.severely_mangled);
}

TEST_F(RendererTest, ErrorFractionRoughlyRespected) {
  RendererConfig config;
  config.markup_error_page_frac = 0.95;
  config.severe_error_page_frac = 0.13;
  PageRenderer r(&web_, &lexicons_, config);
  size_t with_errors = 0, severe = 0, total = 0;
  for (const PageInfo& page : web_.pages()) {
    if (page.mime != lang::MimeClass::kHtml) continue;
    RenderedPage rendered = r.Render(page);
    ++total;
    if (rendered.injected_errors > 0) ++with_errors;
    if (rendered.severely_mangled) ++severe;
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(with_errors) / total, 0.85);
  EXPECT_GT(static_cast<double>(severe) / total, 0.04);
  EXPECT_LT(static_cast<double>(severe) / total, 0.25);
}

TEST_F(RendererTest, RelevantPagesContainEntityMentions) {
  const PageInfo& page = FirstHtmlPage(true);
  RenderedPage rendered = renderer_.Render(page);
  EXPECT_FALSE(rendered.content_doc.gold_entities.empty());
}

// ------------------------------------------------------------ SimulatedWeb

class SimWebTest : public ::testing::Test {
 protected:
  SimWebTest()
      : lexicons_(corpus::LexiconConfig{500, 100, 100, 3}),
        web_(MakeConfig()),
        sim_(&web_, &lexicons_) {}

  static WebConfig MakeConfig() {
    WebConfig config;
    config.num_hosts = 40;
    config.mean_pages_per_host = 8;
    config.seed = 23;
    return config;
  }

  corpus::EntityLexicons lexicons_;
  SyntheticWeb web_;
  SimulatedWeb sim_;
};

TEST_F(SimWebTest, FetchKnownPage) {
  std::string url = web_.UrlOf(web_.pages()[0]);
  FetchResult result = sim_.Fetch(url);
  EXPECT_EQ(result.http_status, 200);
  EXPECT_FALSE(result.body.empty());
  EXPECT_NE(result.page, nullptr);
  EXPECT_GT(result.virtual_latency_ms, 0.0);
}

TEST_F(SimWebTest, FetchUnknownIs404) {
  EXPECT_EQ(sim_.Fetch("http://nosuchhost.example/").http_status, 404);
  EXPECT_EQ(sim_.Fetch("garbage").http_status, 404);
}

TEST_F(SimWebTest, RobotsTxtServed) {
  const HostInfo* host_with_rules = nullptr;
  for (const HostInfo& host : web_.hosts()) {
    if (!host.robots_disallow_prefix.empty()) {
      host_with_rules = &host;
      break;
    }
  }
  ASSERT_NE(host_with_rules, nullptr);
  FetchResult result =
      sim_.Fetch("http://" + host_with_rules->name + "/robots.txt");
  EXPECT_EQ(result.http_status, 200);
  EXPECT_NE(result.body.find("Disallow: /private"), std::string::npos);
  EXPECT_EQ(sim_.RobotsDisallowPrefix(host_with_rules->name), "/private");
}

TEST_F(SimWebTest, TrapGeneratesEndlessChain) {
  const HostInfo* trap = nullptr;
  for (const HostInfo& host : web_.hosts()) {
    if (host.topic == HostTopic::kTrap) {
      trap = &host;
      break;
    }
  }
  ASSERT_NE(trap, nullptr);
  FetchResult r0 = sim_.Fetch("http://" + trap->name + "/day?p=0");
  EXPECT_EQ(r0.http_status, 200);
  EXPECT_TRUE(r0.is_trap);
  EXPECT_NE(r0.body.find("/day?p=1"), std::string::npos);
  FetchResult r100 = sim_.Fetch("http://" + trap->name + "/day?p=100");
  EXPECT_NE(r100.body.find("/day?p=101"), std::string::npos);
}

TEST_F(SimWebTest, FetchCountIncrements) {
  uint64_t before = sim_.fetch_count();
  sim_.Fetch(web_.UrlOf(web_.pages()[1]));
  EXPECT_EQ(sim_.fetch_count(), before + 1);
}

// ------------------------------------------------------------ SearchEngine

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : lexicons_(corpus::LexiconConfig{500, 100, 100, 3}),
        web_(MakeConfig()),
        sim_(&web_, &lexicons_),
        engines_(&sim_) {}

  static WebConfig MakeConfig() {
    WebConfig config;
    config.num_hosts = 50;
    config.mean_pages_per_host = 8;
    config.seed = 24;
    return config;
  }

  corpus::EntityLexicons lexicons_;
  SyntheticWeb web_;
  SimulatedWeb sim_;
  SearchEngineFederation engines_;
};

TEST_F(SearchTest, FiveDefaultEngines) {
  EXPECT_EQ(engines_.num_engines(), 5u);
  EXPECT_EQ(engines_.engine(0).name, "bing");
  EXPECT_EQ(engines_.engine(2).name, "arxiv");
}

TEST_F(SearchTest, CommonTermReturnsResults) {
  // "patient(s)" appears in most relevant-page prose.
  auto result = engines_.Query(1, "patients");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());
  EXPECT_LE(result->size(), engines_.engine(1).max_results_per_query);
  for (const std::string& url : result.value()) {
    EXPECT_NE(web_.FindPage(url), nullptr);
  }
}

TEST_F(SearchTest, UnknownTermEmpty) {
  auto result = engines_.Query(0, "qqqqzzzz");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(SearchTest, TopicWhitelistedEngineOnlyReturnsItsHosts) {
  auto result = engines_.Query(2, "patients");  // arxiv: research hosts only
  ASSERT_TRUE(result.ok());
  for (const std::string& url : result.value()) {
    const PageInfo* page = web_.FindPage(url);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(web_.HostOf(*page).topic, HostTopic::kBiomedResearch);
  }
}

TEST_F(SearchTest, QueryBudgetEnforced) {
  std::vector<SearchEngineSpec> specs = {{"tiny", 1.0, {}, 5, 3}};
  SearchEngineFederation tiny(&sim_, specs);
  EXPECT_TRUE(tiny.Query(0, "patients").ok());
  EXPECT_TRUE(tiny.Query(0, "treatment").ok());
  EXPECT_TRUE(tiny.Query(0, "doctor").ok());
  auto over = tiny.Query(0, "health");
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SearchTest, InvalidEngineIndex) {
  EXPECT_FALSE(engines_.Query(99, "x").ok());
}

}  // namespace
}  // namespace wsie::web
