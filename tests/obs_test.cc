#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "dataflow/json.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace wsie::obs {
namespace {

TEST(StopwatchTest, ElapsedNsAndReset) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  int64_t first = watch.ElapsedNs();
  EXPECT_GT(first, 0);
  EXPECT_NEAR(static_cast<double>(first) / 1e3, watch.ElapsedMicros(),
              watch.ElapsedMicros());
  watch.Reset();
  EXPECT_LT(watch.ElapsedNs(), first + 1000000000LL);
}

TEST(RegistryTest, HandlesAreStableAndNamesDeduplicate) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("wsie.test.same");
  Counter* b = registry.GetCounter("wsie.test.same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
  registry.GetGauge("wsie.test.same");  // distinct kind, same name: distinct
  EXPECT_EQ(registry.num_metrics(), 2u);
}

#if WSIE_OBS == 0

TEST(CompiledOutTest, MetricsAreInert) {
  // At level 0 every hot-path check folds to compile-time false: values
  // never move, dumps are empty of nonzero data, registration still works.
  EXPECT_FALSE(MetricsEnabled());
  Counter counter;
  counter.Add(5);
  EXPECT_EQ(counter.Value(), 0u);
  Gauge gauge;
  gauge.Set(1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  Histogram hist({1.0});
  hist.Observe(0.5);
  EXPECT_EQ(hist.Count(), 0u);
}

#else  // WSIE_OBS >= 1: the counting layer is live.

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // N threads x M counters, interleaved; every shard sum must be exact.
  constexpr int kThreads = 8;
  constexpr int kCounters = 5;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;
  std::vector<Counter*> counters;
  for (int c = 0; c < kCounters; ++c) {
    counters.push_back(
        registry.GetCounter("wsie.test.stress." + std::to_string(c)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counters[i % kCounters]->Add(1 + i % 3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t expected_total = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) expected_total += 1 + i % 3;
  expected_total *= kThreads;
  uint64_t total = 0;
  for (Counter* counter : counters) total += counter->Value();
  EXPECT_EQ(total, expected_total);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterPrefixSum("wsie.test.stress."), expected_total);
}

TEST(CounterTest, RuntimeDisableStopsCounting) {
  Counter counter;
  counter.Add(3);
  SetMetricsEnabled(false);
  counter.Add(100);
  SetMetricsEnabled(true);
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.5);
  gauge.Add(1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.75);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Prometheus `le` semantics: bucket i holds bounds[i-1] < v <= bounds[i].
  Histogram hist({10.0, 100.0, 1000.0});
  hist.Observe(0.0);     // <= 10
  hist.Observe(10.0);    // == bound: still the first bucket
  hist.Observe(10.0001); // > 10: second bucket
  hist.Observe(100.0);   // second bucket upper edge
  hist.Observe(1000.0);  // third bucket upper edge
  hist.Observe(1000.1);  // overflow
  hist.Observe(1e12);    // overflow
  std::vector<uint64_t> counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(hist.Count(), 7u);
  EXPECT_NEAR(hist.Sum(), 0 + 10 + 10.0001 + 100 + 1000 + 1000.1 + 1e12, 1.0);
}

TEST(HistogramTest, NegativeAndDefaultLadders) {
  Histogram hist(LatencyBucketsNs());
  hist.Observe(-5.0);  // clamps into the first bucket
  hist.Observe(1.0);
  EXPECT_EQ(hist.BucketCounts()[0], 2u);
  EXPECT_FALSE(LatencyBucketsMs().empty());
  EXPECT_FALSE(BytesBuckets().empty());
  EXPECT_TRUE(std::is_sorted(LatencyBucketsNs().begin(),
                             LatencyBucketsNs().end()));
}

TEST(HistogramTest, QuantileEstimates) {
  Histogram hist({10.0, 20.0, 30.0, 40.0});
  for (int i = 0; i < 100; ++i) hist.Observe(5.0 + (i % 4) * 10.0);
  MetricsRegistry registry;
  Histogram* reg = registry.GetHistogram("wsie.test.quant", hist.bounds());
  for (int i = 0; i < 100; ++i) reg->Observe(5.0 + (i % 4) * 10.0);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("wsie.test.quant");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 100u);
  double median = h->Quantile(0.5);
  EXPECT_GE(median, 10.0);
  EXPECT_LE(median, 30.0);
  EXPECT_LE(h->Quantile(0.0), h->Quantile(1.0));
}

TEST(SnapshotTest, MidUpdateSnapshotIsInternallyConsistent) {
  // Writers hammer a counter and a histogram while a reader snapshots.
  // Every snapshot must be internally consistent: histogram count equals
  // the sum of its bucket counts, and counters are monotone over time.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("wsie.test.snap.counter");
  Histogram* hist = registry.GetHistogram("wsie.test.snap.hist", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Observe(static_cast<double>(i++ % 3));
      }
    });
  }
  uint64_t last_counter = 0;
  uint64_t last_hist_count = 0;
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    const HistogramSnapshot* h = snap.FindHistogram("wsie.test.snap.hist");
    ASSERT_NE(h, nullptr);
    uint64_t bucket_total = 0;
    for (uint64_t c : h->bucket_counts) bucket_total += c;
    EXPECT_EQ(h->count, bucket_total);
    uint64_t counter_now = snap.CounterValue("wsie.test.snap.counter");
    EXPECT_GE(counter_now, last_counter);
    EXPECT_GE(h->count, last_hist_count);
    last_counter = counter_now;
    last_hist_count = h->count;
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
}

TEST(RegistryTest, LabelsFormatAndExport) {
  EXPECT_EQ(WithLabel("wsie.x", "op", "tag"), "wsie.x{op=\"tag\"}");
  EXPECT_EQ(WithLabels("wsie.x", "a", "1", "b", "2"),
            "wsie.x{a=\"1\",b=\"2\"}");
  MetricsRegistry registry;
  registry.GetCounter(WithLabel("wsie.test.labeled", "op", "parse"))->Add(7);
  registry.GetHistogram(WithLabel("wsie.test.lat", "host", "h1"), {5.0})
      ->Observe(3.0);
  std::string prom = registry.DumpPrometheusText();
  EXPECT_NE(prom.find("wsie.test.labeled{op=\"parse\"} 7"), std::string::npos);
  // Histogram label blocks merge with the le label.
  EXPECT_NE(prom.find("wsie.test.lat_bucket{host=\"h1\",le=\"5\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.lat_bucket{host=\"h1\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.lat_count{host=\"h1\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, PrometheusDumpHasCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("wsie.test.cum", {1.0, 2.0, 3.0});
  hist->Observe(0.5);
  hist->Observe(1.5);
  hist->Observe(2.5);
  hist->Observe(9.0);
  std::string prom = registry.DumpPrometheusText();
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"3\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_count 4"), std::string::npos);
}

TEST(RegistryTest, JsonDumpParsesWithRepoParser) {
  MetricsRegistry registry;
  registry.GetCounter("wsie.test.json.counter")->Add(11);
  registry.GetGauge("wsie.test.json.gauge")->Set(2.5);
  registry.GetHistogram("wsie.test.json.hist", {1.0})->Observe(0.5);
  Result<dataflow::Value> parsed = dataflow::ParseJson(registry.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const dataflow::Value& root = *parsed;
  EXPECT_EQ(root.Field("counters").Field("wsie.test.json.counter").AsInt(), 11);
  EXPECT_DOUBLE_EQ(
      root.Field("gauges").Field("wsie.test.json.gauge").AsDouble(), 2.5);
  const dataflow::Value& hist =
      root.Field("histograms").Field("wsie.test.json.hist");
  EXPECT_EQ(hist.Field("count").AsInt(), 1);
  ASSERT_EQ(hist.Field("buckets").AsArray().size(), 2u);
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("wsie.test.reset");
  counter->Add(9);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add(2);
  EXPECT_EQ(registry.Snapshot().CounterValue("wsie.test.reset"), 2u);
}

#endif  // WSIE_OBS >= 1

#if WSIE_OBS >= 2

TEST(TraceTest, RoundTripIsValidAndBalanced) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        recorder.Begin("outer", "i=" + std::to_string(i));
        recorder.Begin("inner");
        recorder.End();
        recorder.End();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::string json = recorder.ToChromeTraceJson();
  TraceCheckReport report;
  Status checked = ValidateChromeTrace(json, &report);
  ASSERT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_EQ(report.num_threads, static_cast<size_t>(kThreads));
  EXPECT_EQ(report.num_events,
            static_cast<size_t>(kThreads * kSpansPerThread * 4));
  EXPECT_EQ(report.num_spans,
            static_cast<size_t>(kThreads * kSpansPerThread * 2));
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceTest, RingOverflowStaysBalanced) {
  TraceRecorder recorder;
  recorder.SetRingCapacity(64);
  recorder.SetEnabled(true);
  for (int i = 0; i < 500; ++i) {
    recorder.Begin("wrap");
    recorder.End();
  }
  EXPECT_GT(recorder.dropped(), 0u);
  // Orphaned events from overwritten ring slots are repaired at
  // serialization time: the emitted stream must still validate.
  TraceCheckReport report;
  Status checked = ValidateChromeTrace(recorder.ToChromeTraceJson(), &report);
  ASSERT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_GT(report.num_spans, 0u);
}

TEST(TraceTest, DisabledRecorderBuffersNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  recorder.Begin("ignored");
  EXPECT_EQ(recorder.buffered(), 0u);
}

TEST(TraceTest, ClearDropsBufferedEvents) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.Begin("x");
  recorder.End();
  EXPECT_EQ(recorder.buffered(), 2u);
  recorder.Clear();
  EXPECT_EQ(recorder.buffered(), 0u);
}

TEST(TraceTest, EscapesSpecialCharactersInArgs) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.Begin("quote\"back\\slash", "tab\there");
  recorder.End();
  Status checked = ValidateChromeTrace(recorder.ToChromeTraceJson());
  EXPECT_TRUE(checked.ok()) << checked.ToString();
}

TEST(TraceCheckTest, RejectsMalformedTraces) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{}").ok());
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":[{}]})").ok());
  // Unbalanced: an E with no B.
  EXPECT_FALSE(
      ValidateChromeTrace(
          R"({"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]})")
          .ok());
  // Unbalanced: a B never closed.
  EXPECT_FALSE(
      ValidateChromeTrace(
          R"({"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]})")
          .ok());
}

TEST(ScopedTimerTest, FeedsHistogramAndSpan) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("wsie.test.timer", {1e18});
  {
    ScopedTimer timer(hist);
    EXPECT_GE(timer.ElapsedNs(), 0);
  }
  EXPECT_EQ(hist->Count(), 1u);
  // Span path: the global recorder picks up a named ScopedTimer.
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  global.SetEnabled(true);
  size_t before = global.buffered();
  { ScopedTimer timer(nullptr, "timed.section"); }
  global.SetEnabled(false);
  EXPECT_EQ(global.buffered(), before + 2);
}

#endif  // WSIE_OBS >= 2

}  // namespace
}  // namespace wsie::obs
