#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "dataflow/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/remote.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace wsie::obs {
namespace {

TEST(StopwatchTest, ElapsedNsAndReset) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  int64_t first = watch.ElapsedNs();
  EXPECT_GT(first, 0);
  EXPECT_NEAR(static_cast<double>(first) / 1e3, watch.ElapsedMicros(),
              watch.ElapsedMicros());
  watch.Reset();
  EXPECT_LT(watch.ElapsedNs(), first + 1000000000LL);
}

TEST(RegistryTest, HandlesAreStableAndNamesDeduplicate) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("wsie.test.same");
  Counter* b = registry.GetCounter("wsie.test.same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
  registry.GetGauge("wsie.test.same");  // distinct kind, same name: distinct
  EXPECT_EQ(registry.num_metrics(), 2u);
}

#if WSIE_OBS == 0

TEST(CompiledOutTest, MetricsAreInert) {
  // At level 0 every hot-path check folds to compile-time false: values
  // never move, dumps are empty of nonzero data, registration still works.
  EXPECT_FALSE(MetricsEnabled());
  Counter counter;
  counter.Add(5);
  EXPECT_EQ(counter.Value(), 0u);
  Gauge gauge;
  gauge.Set(1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  Histogram hist({1.0});
  hist.Observe(0.5);
  EXPECT_EQ(hist.Count(), 0u);
}

#else  // WSIE_OBS >= 1: the counting layer is live.

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // N threads x M counters, interleaved; every shard sum must be exact.
  constexpr int kThreads = 8;
  constexpr int kCounters = 5;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;
  std::vector<Counter*> counters;
  for (int c = 0; c < kCounters; ++c) {
    counters.push_back(
        registry.GetCounter("wsie.test.stress." + std::to_string(c)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counters[i % kCounters]->Add(1 + i % 3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t expected_total = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) expected_total += 1 + i % 3;
  expected_total *= kThreads;
  uint64_t total = 0;
  for (Counter* counter : counters) total += counter->Value();
  EXPECT_EQ(total, expected_total);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterPrefixSum("wsie.test.stress."), expected_total);
}

TEST(CounterTest, RuntimeDisableStopsCounting) {
  Counter counter;
  counter.Add(3);
  SetMetricsEnabled(false);
  counter.Add(100);
  SetMetricsEnabled(true);
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.5);
  gauge.Add(1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.75);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Prometheus `le` semantics: bucket i holds bounds[i-1] < v <= bounds[i].
  Histogram hist({10.0, 100.0, 1000.0});
  hist.Observe(0.0);     // <= 10
  hist.Observe(10.0);    // == bound: still the first bucket
  hist.Observe(10.0001); // > 10: second bucket
  hist.Observe(100.0);   // second bucket upper edge
  hist.Observe(1000.0);  // third bucket upper edge
  hist.Observe(1000.1);  // overflow
  hist.Observe(1e12);    // overflow
  std::vector<uint64_t> counts = hist.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(hist.Count(), 7u);
  EXPECT_NEAR(hist.Sum(), 0 + 10 + 10.0001 + 100 + 1000 + 1000.1 + 1e12, 1.0);
}

TEST(HistogramTest, NegativeAndDefaultLadders) {
  Histogram hist(LatencyBucketsNs());
  hist.Observe(-5.0);  // clamps into the first bucket
  hist.Observe(1.0);
  EXPECT_EQ(hist.BucketCounts()[0], 2u);
  EXPECT_FALSE(LatencyBucketsMs().empty());
  EXPECT_FALSE(BytesBuckets().empty());
  EXPECT_TRUE(std::is_sorted(LatencyBucketsNs().begin(),
                             LatencyBucketsNs().end()));
}

TEST(HistogramTest, QuantileEstimates) {
  Histogram hist({10.0, 20.0, 30.0, 40.0});
  for (int i = 0; i < 100; ++i) hist.Observe(5.0 + (i % 4) * 10.0);
  MetricsRegistry registry;
  Histogram* reg = registry.GetHistogram("wsie.test.quant", hist.bounds());
  for (int i = 0; i < 100; ++i) reg->Observe(5.0 + (i % 4) * 10.0);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot* h = snap.FindHistogram("wsie.test.quant");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 100u);
  double median = h->Quantile(0.5);
  EXPECT_GE(median, 10.0);
  EXPECT_LE(median, 30.0);
  EXPECT_LE(h->Quantile(0.0), h->Quantile(1.0));
}

TEST(SnapshotTest, MidUpdateSnapshotIsInternallyConsistent) {
  // Writers hammer a counter and a histogram while a reader snapshots.
  // Every snapshot must be internally consistent: histogram count equals
  // the sum of its bucket counts, and counters are monotone over time.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("wsie.test.snap.counter");
  Histogram* hist = registry.GetHistogram("wsie.test.snap.hist", {1.0, 2.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Observe(static_cast<double>(i++ % 3));
      }
    });
  }
  uint64_t last_counter = 0;
  uint64_t last_hist_count = 0;
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    const HistogramSnapshot* h = snap.FindHistogram("wsie.test.snap.hist");
    ASSERT_NE(h, nullptr);
    uint64_t bucket_total = 0;
    for (uint64_t c : h->bucket_counts) bucket_total += c;
    EXPECT_EQ(h->count, bucket_total);
    uint64_t counter_now = snap.CounterValue("wsie.test.snap.counter");
    EXPECT_GE(counter_now, last_counter);
    EXPECT_GE(h->count, last_hist_count);
    last_counter = counter_now;
    last_hist_count = h->count;
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
}

TEST(RegistryTest, LabelsFormatAndExport) {
  EXPECT_EQ(WithLabel("wsie.x", "op", "tag"), "wsie.x{op=\"tag\"}");
  EXPECT_EQ(WithLabels("wsie.x", "a", "1", "b", "2"),
            "wsie.x{a=\"1\",b=\"2\"}");
  MetricsRegistry registry;
  registry.GetCounter(WithLabel("wsie.test.labeled", "op", "parse"))->Add(7);
  registry.GetHistogram(WithLabel("wsie.test.lat", "host", "h1"), {5.0})
      ->Observe(3.0);
  std::string prom = registry.DumpPrometheusText();
  EXPECT_NE(prom.find("wsie.test.labeled{op=\"parse\"} 7"), std::string::npos);
  // Histogram label blocks merge with the le label.
  EXPECT_NE(prom.find("wsie.test.lat_bucket{host=\"h1\",le=\"5\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.lat_bucket{host=\"h1\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.lat_count{host=\"h1\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, PrometheusDumpHasCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("wsie.test.cum", {1.0, 2.0, 3.0});
  hist->Observe(0.5);
  hist->Observe(1.5);
  hist->Observe(2.5);
  hist->Observe(9.0);
  std::string prom = registry.DumpPrometheusText();
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"3\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(prom.find("wsie.test.cum_count 4"), std::string::npos);
}

TEST(RegistryTest, JsonDumpParsesWithRepoParser) {
  MetricsRegistry registry;
  registry.GetCounter("wsie.test.json.counter")->Add(11);
  registry.GetGauge("wsie.test.json.gauge")->Set(2.5);
  registry.GetHistogram("wsie.test.json.hist", {1.0})->Observe(0.5);
  Result<dataflow::Value> parsed = dataflow::ParseJson(registry.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const dataflow::Value& root = *parsed;
  EXPECT_EQ(root.Field("counters").Field("wsie.test.json.counter").AsInt(), 11);
  EXPECT_DOUBLE_EQ(
      root.Field("gauges").Field("wsie.test.json.gauge").AsDouble(), 2.5);
  const dataflow::Value& hist =
      root.Field("histograms").Field("wsie.test.json.hist");
  EXPECT_EQ(hist.Field("count").AsInt(), 1);
  ASSERT_EQ(hist.Field("buckets").AsArray().size(), 2u);
}

TEST(RegistryTest, ResetZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("wsie.test.reset");
  counter->Add(9);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  counter->Add(2);
  EXPECT_EQ(registry.Snapshot().CounterValue("wsie.test.reset"), 2u);
}

#endif  // WSIE_OBS >= 1

#if WSIE_OBS >= 2

TEST(TraceTest, RoundTripIsValidAndBalanced) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        recorder.Begin("outer", "i=" + std::to_string(i));
        recorder.Begin("inner");
        recorder.End();
        recorder.End();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::string json = recorder.ToChromeTraceJson();
  TraceCheckReport report;
  Status checked = ValidateChromeTrace(json, &report);
  ASSERT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_EQ(report.num_threads, static_cast<size_t>(kThreads));
  EXPECT_EQ(report.num_events,
            static_cast<size_t>(kThreads * kSpansPerThread * 4));
  EXPECT_EQ(report.num_spans,
            static_cast<size_t>(kThreads * kSpansPerThread * 2));
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceTest, RingOverflowStaysBalanced) {
  TraceRecorder recorder;
  recorder.SetRingCapacity(64);
  recorder.SetEnabled(true);
  for (int i = 0; i < 500; ++i) {
    recorder.Begin("wrap");
    recorder.End();
  }
  EXPECT_GT(recorder.dropped(), 0u);
  // Orphaned events from overwritten ring slots are repaired at
  // serialization time: the emitted stream must still validate.
  TraceCheckReport report;
  Status checked = ValidateChromeTrace(recorder.ToChromeTraceJson(), &report);
  ASSERT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_GT(report.num_spans, 0u);
}

TEST(TraceTest, DisabledRecorderBuffersNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  recorder.Begin("ignored");
  EXPECT_EQ(recorder.buffered(), 0u);
}

TEST(TraceTest, ClearDropsBufferedEvents) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.Begin("x");
  recorder.End();
  EXPECT_EQ(recorder.buffered(), 2u);
  recorder.Clear();
  EXPECT_EQ(recorder.buffered(), 0u);
}

TEST(TraceTest, EscapesSpecialCharactersInArgs) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.Begin("quote\"back\\slash", "tab\there");
  recorder.End();
  Status checked = ValidateChromeTrace(recorder.ToChromeTraceJson());
  EXPECT_TRUE(checked.ok()) << checked.ToString();
}

TEST(TraceCheckTest, RejectsMalformedTraces) {
  EXPECT_FALSE(ValidateChromeTrace("not json").ok());
  EXPECT_FALSE(ValidateChromeTrace("{}").ok());
  EXPECT_FALSE(ValidateChromeTrace(R"({"traceEvents":[{}]})").ok());
  // Unbalanced: an E with no B.
  EXPECT_FALSE(
      ValidateChromeTrace(
          R"({"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]})")
          .ok());
  // Unbalanced: a B never closed.
  EXPECT_FALSE(
      ValidateChromeTrace(
          R"({"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]})")
          .ok());
}

TEST(ScopedTimerTest, FeedsHistogramAndSpan) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("wsie.test.timer", {1e18});
  {
    ScopedTimer timer(hist);
    EXPECT_GE(timer.ElapsedNs(), 0);
  }
  EXPECT_EQ(hist->Count(), 1u);
  // Span path: the global recorder picks up a named ScopedTimer.
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  global.SetEnabled(true);
  size_t before = global.buffered();
  { ScopedTimer timer(nullptr, "timed.section"); }
  global.SetEnabled(false);
  EXPECT_EQ(global.buffered(), before + 2);
}

#endif  // WSIE_OBS >= 2

// ---------------------------------------------------------------------------
// Log-spaced bucket bounds. Pure functions of (lo, hi, count): testable at
// every WSIE_OBS level.

TEST(LogSpacedBucketsTest, ShapeAndEndpoints) {
  std::vector<double> bounds = LogSpacedBuckets(1e3, 1e6, 46);
  ASSERT_EQ(bounds.size(), 46u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e3);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e6);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  // Geometric: the ratio between adjacent bounds is constant.
  const double ratio = bounds[1] / bounds[0];
  for (size_t i = 1; i + 1 < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i + 1] / bounds[i], ratio, ratio * 1e-6);
  }
  // Degenerate inputs are repaired, not UB.
  EXPECT_EQ(LogSpacedBuckets(10.0, 1.0, 1).size(), 2u);
  EXPECT_GT(LogSpacedBuckets(-5.0, 1.0, 4).front(), 0.0);
}

TEST(LogSpacedBucketsTest, QuantileErrorStaysUnderTenPercent) {
  // The design claim behind LogLatencyBucketsNs: with 15 buckets per decade
  // the interpolated p50/p99 land within 10% of the exact sample quantile.
  // Deterministic heavy-tailed samples spanning four decades (the shape of
  // real request latencies): x_i = 1e4 * exp(3 * u_i^2), u_i uniform.
  HistogramSnapshot hist;
  hist.name = "wsie.test.logq";
  hist.bounds = LogSpacedBuckets(1e3, 1e11, 121);
  hist.bucket_counts.assign(hist.bounds.size() + 1, 0);
  std::vector<double> samples;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    const double u = (i + 0.5) / kN;
    samples.push_back(1e4 * std::exp(3.0 * u * u * std::log(10.0)));
  }
  for (double v : samples) {
    size_t b = static_cast<size_t>(
        std::lower_bound(hist.bounds.begin(), hist.bounds.end(), v) -
        hist.bounds.begin());
    hist.bucket_counts[b]++;
    hist.count++;
    hist.sum += v;
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const double exact = samples[static_cast<size_t>(q * (kN - 1))];
    const double estimate = hist.Quantile(q);
    EXPECT_NEAR(estimate, exact, 0.10 * exact)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

// ---------------------------------------------------------------------------
// Trace context: the (trace_id, parent_span) pair that rides the shard
// transport frames.

TEST(TraceContextTest, FreshIdsAreNonzeroAndDistinct) {
  const uint64_t a = NewTraceId();
  const uint64_t b = NewTraceId();
  const uint64_t s = NewSpanId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(s, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContextTest, SetCurrentRoundTripAndArgsFormat) {
  const TraceContext saved = CurrentTraceContext();
  SetTraceContext({0x1234abcdULL, 0x9fULL});
  EXPECT_EQ(CurrentTraceContext().trace_id, 0x1234abcdULL);
  EXPECT_EQ(CurrentTraceContext().span_id, 0x9fULL);
  EXPECT_EQ(TraceContextArgs(CurrentTraceContext()),
            "trace=1234abcd parent=9f");
  SetTraceContext(saved);
}

// ---------------------------------------------------------------------------
// Remote bundle codec + shard-wide merge. Snapshots and bundles are plain
// data, so the codec and merge semantics are testable at every level.

ObsBundle MakeBundle(int shard, uint64_t counter_value, double gauge_value) {
  ObsBundle bundle;
  bundle.shard = shard;
  bundle.os_pid = 1000 + shard;
  bundle.now_ns = 5000000ull + static_cast<uint64_t>(shard);
  bundle.trace_dropped = static_cast<uint64_t>(shard);
  bundle.metrics.counters.push_back({"wsie.test.remote.rows", counter_value});
  bundle.metrics.gauges.push_back({"wsie.test.remote.depth", gauge_value});
  HistogramSnapshot hist;
  hist.name = "wsie.test.remote.lat";
  hist.bounds = {10.0, 100.0};
  hist.bucket_counts = {1, 2, static_cast<uint64_t>(shard)};
  hist.count = 3 + static_cast<uint64_t>(shard);
  hist.sum = 50.0 * (shard + 1);
  bundle.metrics.histograms.push_back(hist);
  TraceRecorder::ThreadStream stream;
  stream.tid = 1;
  TraceEvent begin;
  begin.ts_ns = 100;
  begin.phase = 'B';
  std::snprintf(begin.name, sizeof(begin.name), "worker.%d", shard);
  std::snprintf(begin.args, sizeof(begin.args), "trace=ab parent=cd");
  TraceEvent end = begin;
  end.ts_ns = 200;
  end.phase = 'E';
  stream.events = {begin, end};
  bundle.streams.push_back(std::move(stream));
  return bundle;
}

TEST(ObsBundleCodecTest, RoundTripPreservesEverything) {
  ObsBundle bundle = MakeBundle(3, 42, 2.5);
  const std::string bytes = EncodeObsBundle(bundle);
  Result<ObsBundle> decoded = DecodeObsBundle(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shard, 3);
  EXPECT_EQ(decoded->os_pid, 1003);
  EXPECT_EQ(decoded->now_ns, bundle.now_ns);
  EXPECT_EQ(decoded->trace_dropped, 3u);
  ASSERT_EQ(decoded->metrics.counters.size(), 1u);
  EXPECT_EQ(decoded->metrics.counters[0].name, "wsie.test.remote.rows");
  EXPECT_EQ(decoded->metrics.counters[0].value, 42u);
  ASSERT_EQ(decoded->metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded->metrics.gauges[0].value, 2.5);
  ASSERT_EQ(decoded->metrics.histograms.size(), 1u);
  const HistogramSnapshot& hist = decoded->metrics.histograms[0];
  EXPECT_EQ(hist.bounds, (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(hist.bucket_counts, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(hist.count, 6u);
  EXPECT_DOUBLE_EQ(hist.sum, 200.0);
  ASSERT_EQ(decoded->streams.size(), 1u);
  ASSERT_EQ(decoded->streams[0].events.size(), 2u);
  EXPECT_STREQ(decoded->streams[0].events[0].name, "worker.3");
  EXPECT_STREQ(decoded->streams[0].events[0].args, "trace=ab parent=cd");
  EXPECT_EQ(decoded->streams[0].events[1].phase, 'E');
  // Deterministic: encoding the decoded bundle reproduces the bytes.
  EXPECT_EQ(EncodeObsBundle(*decoded), bytes);
}

TEST(ObsBundleCodecTest, RejectsTruncationAndBitFlips) {
  // Same contract as the fault::Checkpoint codec this framing reuses:
  // any truncation and any single bit flip must fail decode, never
  // half-load.
  const std::string bytes = EncodeObsBundle(MakeBundle(1, 7, 1.0));
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len : {size_t{0}, size_t{1}, size_t{8}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(DecodeObsBundle(std::string_view(bytes.data(), len)).ok())
        << "truncated to " << len;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x40);
    EXPECT_FALSE(DecodeObsBundle(flipped).ok()) << "bit flip at byte " << i;
  }
}

TEST(MergeSnapshotsTest, CountersSumGaugesLabelHistogramsAddBucketwise) {
  std::vector<ObsBundle> bundles = {MakeBundle(0, 10, 1.5),
                                    MakeBundle(1, 32, 2.5)};
  MetricsSnapshot merged = MergeSnapshots(bundles);
  // Counters sum exactly.
  EXPECT_EQ(merged.CounterValue("wsie.test.remote.rows"), 42u);
  // Gauges keep per-shard identity via a {shard="k"} label.
  EXPECT_DOUBLE_EQ(
      merged.GaugeValue("wsie.test.remote.depth{shard=\"0\"}"), 1.5);
  EXPECT_DOUBLE_EQ(
      merged.GaugeValue("wsie.test.remote.depth{shard=\"1\"}"), 2.5);
  EXPECT_DOUBLE_EQ(merged.GaugeValue("wsie.test.remote.depth"), 0.0);
  // Histograms with identical bounds add bucket-wise.
  const HistogramSnapshot* hist =
      merged.FindHistogram("wsie.test.remote.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->bucket_counts, (std::vector<uint64_t>{2, 4, 1}));
  EXPECT_EQ(hist->count, 7u);
  EXPECT_DOUBLE_EQ(hist->sum, 150.0);
  // Determinism: merging equal inputs twice gives byte-equal output order.
  MetricsSnapshot again = MergeSnapshots(bundles);
  ASSERT_EQ(again.counters.size(), merged.counters.size());
  for (size_t i = 0; i < merged.counters.size(); ++i) {
    EXPECT_EQ(again.counters[i].name, merged.counters[i].name);
    EXPECT_EQ(again.counters[i].value, merged.counters[i].value);
  }
}

TEST(MergeSnapshotsTest, MismatchedBoundsFallBackToLabeledPerShard) {
  std::vector<ObsBundle> bundles = {MakeBundle(0, 1, 0.0),
                                    MakeBundle(1, 1, 0.0)};
  bundles[1].metrics.histograms[0].bounds = {10.0, 100.0, 1000.0};
  bundles[1].metrics.histograms[0].bucket_counts = {1, 1, 1, 1};
  MetricsSnapshot merged = MergeSnapshots(bundles);
  // No merged unlabeled histogram — a bucket-wise add over different
  // ladders would be wrong — but both per-shard forms survive.
  EXPECT_EQ(merged.FindHistogram("wsie.test.remote.lat"), nullptr);
  EXPECT_NE(merged.FindHistogram("wsie.test.remote.lat{shard=\"0\"}"),
            nullptr);
  EXPECT_NE(merged.FindHistogram("wsie.test.remote.lat{shard=\"1\"}"),
            nullptr);
}

TEST(AppendMetricLabelTest, AppendsAndMergesIntoExistingBlock) {
  EXPECT_EQ(AppendMetricLabel("wsie.x", "shard", "3"),
            "wsie.x{shard=\"3\"}");
  EXPECT_EQ(AppendMetricLabel("wsie.x{op=\"parse\"}", "shard", "3"),
            "wsie.x{op=\"parse\",shard=\"3\"}");
}

TEST(StitchTest, MultiProcessTraceValidatesWithDistinctPids) {
  auto stream_with_span = [](uint64_t begin_ns, uint64_t end_ns,
                             const char* name) {
    TraceRecorder::ThreadStream stream;
    stream.tid = 1;
    TraceEvent begin;
    begin.ts_ns = begin_ns;
    begin.phase = 'B';
    std::snprintf(begin.name, sizeof(begin.name), "%s", name);
    TraceEvent end = begin;
    end.ts_ns = end_ns;
    end.phase = 'E';
    stream.events = {begin, end};
    return stream;
  };
  std::vector<ProcessTrace> processes(3);
  processes[0].pid = 1;
  processes[0].streams.push_back(stream_with_span(0, 5000, "shard.run"));
  processes[1].pid = 2;
  processes[1].offset_ns = 1000;
  processes[1].dropped = 4;
  processes[1].streams.push_back(stream_with_span(0, 2000, "shard.worker.0"));
  processes[2].pid = 3;
  // A negative re-base that would push timestamps below zero: the emitter
  // clamps at 0 without breaking per-thread order.
  processes[2].offset_ns = -10000;
  processes[2].streams.push_back(stream_with_span(100, 3000, "shard.worker.1"));
  StitchReport report;
  const std::string json = StitchChromeTrace(processes, &report);
  Status checked = ValidateChromeTrace(json);
  ASSERT_TRUE(checked.ok()) << checked.ToString();
  EXPECT_EQ(report.processes, 3u);
  EXPECT_EQ(report.threads, 3u);
  EXPECT_EQ(report.events, 6u);
  EXPECT_EQ(report.dropped, 4u);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("shard.worker.1"), std::string::npos);
}

#if WSIE_OBS >= 2

TEST(TraceDroppedMetricTest, RingOverwritesExportAsCounter) {
  const uint64_t before = MetricsRegistry::Global().Snapshot().CounterValue(
      "wsie.obs.trace.dropped");
  TraceRecorder recorder;
  recorder.SetRingCapacity(16);
  recorder.SetEnabled(true);
  for (int i = 0; i < 200; ++i) {
    recorder.Begin("spin");
    recorder.End();
  }
  EXPECT_GT(recorder.dropped(), 0u);
  const uint64_t after = MetricsRegistry::Global().Snapshot().CounterValue(
      "wsie.obs.trace.dropped");
  EXPECT_EQ(after - before, recorder.dropped());
}

TEST(TraceTest, ExportBalancedStreamsHaveMatchedPairs) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.Begin("outer");
  recorder.Begin("inner");
  recorder.End();
  // "outer" is still open: export must close it with a synthetic 'E'.
  std::vector<TraceRecorder::ThreadStream> streams =
      recorder.ExportBalanced();
  ASSERT_EQ(streams.size(), 1u);
  const auto& events = streams[0].events;
  ASSERT_EQ(events.size(), 4u);
  int depth = 0;
  for (const TraceEvent& event : events) {
    depth += event.phase == 'B' ? 1 : -1;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

#endif  // WSIE_OBS >= 2

// The profiler drives SIGPROF through real signal delivery; sanitizer
// runtimes intercept signals and make its timing assertions meaningless,
// so the behavioral test runs only in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WSIE_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define WSIE_TEST_UNDER_SANITIZER 1
#endif
#endif

#ifndef WSIE_TEST_UNDER_SANITIZER

TEST(ProfilerTest, CapturesSamplesFromBusyLoop) {
  Profiler& profiler = Profiler::Global();
  profiler.Reset();
  Profiler::Options options;
  options.hz = 997;  // fast sampling keeps the busy loop short
  Status started = profiler.Start(options);
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_FALSE(profiler.Start().ok());  // double-start is an error
  // Burn CPU until samples land (ITIMER_PROF counts CPU time, so the loop
  // itself is what gets sampled). Bounded to stay robust on loaded hosts.
  volatile double sink = 1.0;
  Stopwatch watch;
  while (profiler.samples() < 3 && watch.ElapsedNs() < 5'000'000'000LL) {
    for (int i = 0; i < 100000; ++i) sink = sink * 1.0000001 + 0.1;
  }
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profiler.samples(), 0u);
  const std::string folded = profiler.FoldedStacks();
  EXPECT_FALSE(folded.empty());
  // Folded lines are "frame;frame;... count": every line ends in a count.
  EXPECT_NE(folded.find(';'), std::string::npos);
  profiler.Reset();
  EXPECT_EQ(profiler.samples(), 0u);
}

#endif  // WSIE_TEST_UNDER_SANITIZER

}  // namespace
}  // namespace wsie::obs
