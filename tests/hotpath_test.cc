// Tests for the allocation-free NLP/IE hot path: string-view tokens over a
// pinned buffer, the interned HMM lexicon, and the streaming CRF feature
// hasher. The golden tests here are the contract that lets the hot path
// replace the seed path: byte-identical hashes, bit-identical decodes.

#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/char_class.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "ie/crf_tagger.h"
#include "ie/dictionary_tagger.h"
#include "ml/crf.h"
#include "ml/hmm.h"
#include "nlp/pos_tagger.h"
#include "text/tokenizer.h"

namespace wsie {
namespace {

using ::wsie::ie::TaggedSentence;
using ::wsie::text::Token;
using ::wsie::text::Tokenizer;

// ------------------------------------------------------------ char classes

TEST(CharClassTest, MatchesCLocaleCtype) {
  for (int i = 0; i < 256; ++i) {
    char c = static_cast<char>(i);
    bool space = i == ' ' || i == '\t' || i == '\n' || i == '\v' ||
                 i == '\f' || i == '\r';
    bool digit = i >= '0' && i <= '9';
    bool upper = i >= 'A' && i <= 'Z';
    bool lower = i >= 'a' && i <= 'z';
    EXPECT_EQ(IsAsciiSpace(c), space) << "byte " << i;
    EXPECT_EQ(IsAsciiDigit(c), digit) << "byte " << i;
    EXPECT_EQ(IsAsciiUpper(c), upper) << "byte " << i;
    EXPECT_EQ(IsAsciiLower(c), lower) << "byte " << i;
    EXPECT_EQ(IsAsciiAlpha(c), upper || lower) << "byte " << i;
    EXPECT_EQ(IsAsciiAlnum(c), upper || lower || digit) << "byte " << i;
    EXPECT_EQ(AsciiLowerChar(c),
              upper ? static_cast<char>(i - 'A' + 'a') : c);
    EXPECT_EQ(AsciiUpperChar(c),
              lower ? static_cast<char>(i - 'a' + 'A') : c);
  }
}

// ------------------------------------------------------------ interner

TEST(StringInternerTest, DenseIdsInInsertionOrder) {
  StringInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("alpha"), 0u);  // re-intern is idempotent
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.Find("beta"), 1u);
  EXPECT_EQ(interner.Find("delta"), StringInterner::kNotFound);
  EXPECT_EQ(interner.Find(""), StringInterner::kNotFound);
}

TEST(StringInternerTest, SurvivesGrowth) {
  StringInterner interner;
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back("token_" + std::to_string(i * 7919));
    ASSERT_EQ(interner.Intern(keys.back()), static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(interner.Find(keys[i]), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(interner.Find("token_x"), StringInterner::kNotFound);
  EXPECT_GT(interner.MemoryBytes(), 0u);
}

// ------------------------------------------------------------ view tokens

// Property: every token is a view INTO the source buffer (no copies), and
// its text equals the offset slice it claims to cover.
TEST(TokenViewTest, TokensAliasSourceBuffer) {
  Tokenizer tokenizer;
  Rng rng(99);
  const std::string_view pieces[] = {
      "BRCA1", "p53-dependent", "cells,", "(TLA)", "don't", "  ", "3.14",
      "x", ".", "alpha-2", "--", "Treatment;", "\tgene\n"};
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    for (int w = 0; w < 12; ++w) {
      text.append(pieces[rng.Uniform(sizeof(pieces) / sizeof(pieces[0]))]);
      text.push_back(' ');
    }
    const char* lo = text.data();
    const char* hi = text.data() + text.size();
    for (const Token& tok : tokenizer.Tokenize(text)) {
      EXPECT_FALSE(tok.text.empty());
      EXPECT_GE(tok.text.data(), lo);
      EXPECT_LE(tok.text.data() + tok.text.size(), hi);
      ASSERT_LT(tok.begin, tok.end);
      ASSERT_LE(tok.end, text.size());
      EXPECT_EQ(tok.text, std::string_view(text).substr(
                              tok.begin, tok.end - tok.begin));
    }
  }
}

TEST(TokenViewTest, TokenizeIntoMatchesTokenize) {
  Tokenizer tokenizer;
  const std::string text = "The BRCA1 gene (breast cancer) wasn't inhibited.";
  std::vector<Token> reused;
  reused.resize(77);  // stale content must be cleared
  tokenizer.TokenizeInto(text, 5, &reused);
  EXPECT_EQ(reused, tokenizer.Tokenize(text, 5));
}

TEST(TokenViewTest, MakeTaggedSentencePinsBufferAcrossMoves) {
  // Short string: SSO would dangle if tokens viewed a by-value member.
  TaggedSentence ts = ie::MakeTaggedSentence("p53 up");
  ASSERT_EQ(ts.tokens.size(), 2u);
  std::vector<TaggedSentence> moved;
  for (int i = 0; i < 32; ++i) moved.push_back(std::move(ts));
  // (only index 0 holds the sentence; the loop forces reallocation moves)
  EXPECT_EQ(moved[0].tokens[0].text, "p53");
  EXPECT_EQ(moved[0].tokens[1].text, "up");
  EXPECT_EQ(moved[0].tokens[1].begin, 4u);
}

// ------------------------------------------------------------ FNV streaming

TEST(HashStreamingTest, PrefixSeedContinuationMatchesConcatenation) {
  const std::string_view prefixes[] = {"", "w=", "p1:suf=", "n1:sh="};
  const std::string_view words[] = {"", "a", "BRCA1", "p53-dependent",
                                    "don't"};
  for (std::string_view p : prefixes) {
    uint64_t seed = ml::HashFeatureSeed(ml::kFnvOffsetBasis, p);
    for (std::string_view w : words) {
      EXPECT_EQ(ml::HashFeatureSeed(seed, w),
                ml::HashFeature(std::string(p) + std::string(w)));
      uint64_t by_char = seed;
      for (char c : w) by_char = ml::HashFeatureChar(by_char, c);
      EXPECT_EQ(by_char, ml::HashFeatureSeed(seed, w));
    }
  }
}

// Golden test: the streaming extractor must emit EXACTLY the hashes the seed
// extractor computes on materialized feature strings — same positions, same
// order, same values. This is what guarantees identical CRF decodes.
TEST(HashStreamingTest, GoldenStreamingFeatureEquality) {
  Tokenizer tokenizer;
  const std::string_view sentences[] = {
      "The BRCA1 gene was studied extensively",
      "We measured TP53 and EGFR2 in all samples",
      "aspirin-like drugs don't inhibit p53-dependent pathways",
      "A",           // single token, no context
      "ab cd",       // short tokens: affix lengths clamp at size-1
      "(x) 3.14 -- ALLCAPS Initcap hyphen-word a1b2c3",
  };
  for (std::string_view s : sentences) {
    std::vector<Token> tokens = tokenizer.Tokenize(s);
    std::vector<ml::PositionFeatures> seed = ie::ExtractNerFeatures(tokens);
    ml::HashedFeatureMatrix streamed;
    ie::ExtractNerFeaturesInto(tokens, &streamed);
    ASSERT_EQ(streamed.num_positions(), seed.size()) << s;
    for (size_t i = 0; i < seed.size(); ++i) {
      ASSERT_EQ(streamed.position_size(i), seed[i].size())
          << s << " position " << i;
      for (size_t f = 0; f < seed[i].size(); ++f) {
        EXPECT_EQ(streamed.position_data(i)[f], seed[i][f])
            << s << " position " << i << " feature " << f;
      }
    }
  }
}

// ------------------------------------------------------------ HMM decode

TEST(HotPathHmmTest, ViewDecodeMatchesLegacy) {
  nlp::PosTagger tagger;
  tagger.TrainDefault(/*seed=*/3, /*num_sentences=*/400);
  Tokenizer tokenizer;
  const std::string_view sentences[] = {
      "the gene inhibits the protein",
      "swimming walking unknownword12 the",
      "a", "",
      "measured expression of BRCA1 increased significantly today",
  };
  for (std::string_view s : sentences) {
    std::vector<Token> tokens = tokenizer.Tokenize(s);
    bool o1 = false, o2 = false;
    EXPECT_EQ(tagger.TagTokens(tokens, &o1),
              tagger.TagTokensLegacy(tokens, &o2))
        << s;
    EXPECT_EQ(o1, o2);
  }
}

TEST(HotPathHmmTest, ScratchDecodeIsReusableAndDeterministic) {
  nlp::PosTagger tagger;
  tagger.TrainDefault(/*seed=*/3, /*num_sentences=*/200);
  const ml::TrigramHmm& hmm = tagger.hmm();
  ml::TrigramHmm::ViterbiScratch scratch;
  std::vector<int> states;
  std::vector<std::string_view> longer = {"the", "gene", "was", "studied",
                                          "in", "cells"};
  std::vector<std::string_view> shorter = {"unknown", "words"};
  hmm.Decode(longer, &scratch, &states);
  std::vector<int> first = states;
  hmm.Decode(shorter, &scratch, &states);  // shrink reuse
  hmm.Decode(longer, &scratch, &states);   // regrow reuse
  EXPECT_EQ(states, first);
  EXPECT_GT(hmm.lexicon().size(), 0u);
  EXPECT_GT(hmm.lexicon_memory_bytes(), 0u);
}

// ------------------------------------------------------------ dictionary

TEST(HotPathDictTest, TagSpansMatchesTag) {
  ie::DictionaryTagger tagger(ie::EntityType::kDrug,
                              {"aspirin", "ibuprofen", "aspirin lysinate"});
  const std::string text =
      "Patients took aspirin lysinate; ibuprofen and aspirin were compared. "
      "Xaspirin is not a word boundary hit.";
  std::vector<ie::Annotation> full = tagger.Tag(7, text);
  std::vector<ie::AutomatonMatch> spans;
  tagger.TagSpans(text, &spans);
  ASSERT_EQ(spans.size(), full.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].begin, full[i].begin);
    EXPECT_EQ(spans[i].end, full[i].end);
    EXPECT_EQ(text.substr(spans[i].begin, spans[i].end - spans[i].begin),
              full[i].surface);
  }
}

// ------------------------------------------------------------ concurrency

// A finalized tagger is shared across morsel threads; per-thread scratch is
// thread_local. Decoding the same sentences from many threads must give the
// single-thread answers (run under TSan via the `perf` label).
TEST(HotPathConcurrencyTest, SharedTaggersDecodeConsistentlyAcrossThreads) {
  nlp::PosTagger pos;
  pos.TrainDefault(/*seed=*/5, /*num_sentences=*/300);

  std::vector<TaggedSentence> gold;
  for (int i = 0; i < 40; ++i) {
    TaggedSentence ts = ie::MakeTaggedSentence(
        "The GEN" + std::to_string(i) + " gene was studied in cells");
    ts.spans.push_back(ie::GoldSpan{1, 2});
    gold.push_back(std::move(ts));
  }
  ie::CrfTagger crf(ie::EntityType::kGene);
  crf.Train(gold);

  Tokenizer tokenizer;
  std::vector<std::string> docs;
  for (int i = 0; i < 16; ++i) {
    docs.push_back("We studied GEN" + std::to_string(i % 5) +
                   " expression and the protein binds today");
  }

  std::vector<std::vector<nlp::PosTag>> expected_tags(docs.size());
  std::vector<size_t> expected_entities(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    std::vector<Token> tokens = tokenizer.Tokenize(docs[i]);
    expected_tags[i] = pos.TagTokens(tokens);
    expected_entities[i] = crf.TagSentence(1, 0, docs[i], tokens).size();
  }

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Tokenizer local_tokenizer;
      for (int rep = 0; rep < 25; ++rep) {
        for (size_t i = 0; i < docs.size(); ++i) {
          std::vector<Token> tokens = local_tokenizer.Tokenize(docs[i]);
          if (pos.TagTokens(tokens) != expected_tags[i]) ++mismatches[t];
          if (crf.TagSentence(1, 0, docs[i], tokens).size() !=
              expected_entities[i])
            ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << t;
}

}  // namespace
}  // namespace wsie
