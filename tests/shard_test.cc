#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/analysis_context.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "crawler/focused_crawler.h"
#include "crawler/relevance_classifier.h"
#include "crawler/sharded_frontier.h"
#include "dataflow/executor.h"
#include "dataflow/fault_injection.h"
#include "dataflow/operators_base.h"
#include "dataflow/optimizer.h"
#include "dataflow/plan.h"
#include "dataflow/value.h"
#include "obs/metrics.h"
#include "obs/remote.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "shard/exchange.h"
#include "shard/partitioner.h"
#include "shard/planner.h"
#include "shard/runtime.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "store/annotation_store.h"
#include "store/segment.h"
#include "store/shard_merge.h"
#include "store/store_sink.h"
#include "web/simulated_web.h"

namespace wsie::shard {
namespace {

using dataflow::Dataset;
using dataflow::Record;
using dataflow::Value;

// ------------------------------------------------------------ HashRing

TEST(HashRingTest, Deterministic) {
  HashRing a(4), b(4);
  for (int i = 0; i < 200; ++i) {
    std::string key = "key-" + std::to_string(i);
    EXPECT_EQ(a.ShardForKey(key), b.ShardForKey(key));
  }
}

TEST(HashRingTest, CoversAllShardsAndStaysInRange) {
  HashRing ring(5);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int shard = ring.ShardForKey("k" + std::to_string(i));
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 5);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(HashRingTest, BalanceBoundOnSyntheticKeys) {
  for (size_t shards : {2u, 4u, 8u}) {
    HashRing ring(shards);
    std::vector<size_t> counts(shards, 0);
    for (int i = 0; i < 10000; ++i) {
      ++counts[static_cast<size_t>(ring.ShardForKey("doc/" +
                                                    std::to_string(i)))];
    }
    size_t max_load = 0, min_load = 10000;
    for (size_t c : counts) {
      max_load = std::max(max_load, c);
      min_load = std::min(min_load, c);
    }
    ASSERT_GT(min_load, 0u);
    EXPECT_LE(static_cast<double>(max_load) / static_cast<double>(min_load),
              1.3)
        << shards << " shards: max " << max_load << " min " << min_load;
  }
}

TEST(HashRingTest, GrowingTheRingMovesOnlyKeysToTheNewShard) {
  // Point positions depend only on (shard, vnode), so going N -> N+1 adds
  // points without moving existing ones: a key either keeps its owner or
  // moves to the new shard, and the expected moved fraction is 1/(N+1).
  const size_t n = 4;
  HashRing before(n), after(n + 1);
  int moved = 0;
  const int total = 10000;
  for (int i = 0; i < total; ++i) {
    std::string key = "stable-" + std::to_string(i);
    int old_shard = before.ShardForKey(key);
    int new_shard = after.ShardForKey(key);
    if (old_shard != new_shard) {
      ++moved;
      EXPECT_EQ(new_shard, static_cast<int>(n)) << "remap must target the "
                                                   "new shard only";
    }
  }
  double fraction = static_cast<double>(moved) / total;
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.35);  // expected 1/5 = 0.2
}

// ------------------------------------------------------------ Wire codec

Value TrickyValue() {
  Value v;
  v.SetField("id", static_cast<int64_t>(-12345678901234ll));
  v.SetField("pi", 3.14159265358979312);
  v.SetField("tiny", 5e-324);  // denormal: bit-exactness matters
  v.SetField("neg", -0.0);
  v.SetField("flag", true);
  v.SetField("none", Value());
  v.SetField("s", std::string("bytes\0with\xffnul", 14));
  Value arr(Value::Array{Value(1), Value("two"), Value(3.5)});
  v.SetField("arr", arr);
  Value nested;
  nested.SetField("deep", arr);
  v.SetField("obj", nested);
  return v;
}

TEST(WireTest, ValueRoundTripsExactly) {
  Value original = TrickyValue();
  std::string bytes;
  EncodeValue(original, &bytes);
  std::string_view in(bytes);
  Value decoded;
  ASSERT_TRUE(DecodeValue(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(original, decoded);
  EXPECT_EQ(original.ToJson(), decoded.ToJson());
}

TEST(WireTest, DatasetRoundTrip) {
  Dataset data;
  for (int i = 0; i < 17; ++i) {
    Record r = TrickyValue();
    r.SetField("i", i);
    data.push_back(std::move(r));
  }
  std::string bytes;
  EncodeDataset(data, &bytes);
  auto decoded = DecodeDataset(bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], (*decoded)[i]);
}

TEST(WireTest, TruncationRejectedAtEveryPrefix) {
  std::string bytes;
  EncodeValue(TrickyValue(), &bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string_view in(bytes.data(), len);
    Value out;
    EXPECT_FALSE(DecodeValue(&in, &out).ok()) << "prefix length " << len;
  }
}

TEST(WireTest, MalformedTagRejected) {
  std::string bytes = "\xfe";
  std::string_view in(bytes);
  Value out;
  EXPECT_FALSE(DecodeValue(&in, &out).ok());
  // A dataset claiming more records than bytes can hold is rejected
  // without allocation.
  std::string huge;
  AppendVarint(1ull << 40, &huge);
  EXPECT_FALSE(DecodeDataset(huge).ok());
}

// ------------------------------------------------------------ Exchange

TEST(ExchangeTest, TagMergeStripRoundTrip) {
  // Three chunks with interleaved serial tags merge back to serial order.
  int64_t seq = 0;
  Dataset all;
  for (int i = 0; i < 30; ++i) {
    Record r;
    r.SetField("i", i);
    all.push_back(std::move(r));
  }
  TagSerialOrder(&all, &seq);
  EXPECT_EQ(seq, 30);
  std::vector<Dataset> chunks(3);
  for (size_t i = 0; i < all.size(); ++i) {
    chunks[i % 3].push_back(all[i]);
  }
  Dataset merged = MergeBySeq(std::move(chunks));
  ASSERT_EQ(merged.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(merged[static_cast<size_t>(i)].Field("i").AsInt(), i);
  }
  StripShardTags(&merged);
  for (const Record& r : merged) {
    EXPECT_FALSE(r.HasField(kSeqField));
    EXPECT_FALSE(r.HasField(kBcastField));
  }
}

TEST(ExchangeTest, BroadcastCopiesDedupedToChunkZero) {
  int64_t seq = 0;
  std::vector<Dataset> chunks(3);
  for (int c = 0; c < 3; ++c) {
    Dataset copy;
    Record r;
    r.SetField("dict", "entry");
    copy.push_back(std::move(r));
    int64_t s = seq;  // every shard's copy carries the same tag
    TagSerialOrder(&copy, &s);
    MarkBroadcast(&copy);
    chunks[static_cast<size_t>(c)] = std::move(copy);
  }
  Dataset merged = MergeBySeq(std::move(chunks));
  ASSERT_EQ(merged.size(), 1u);  // two broadcast duplicates dropped
}

TEST(ExchangeTest, ExtendSeqTagsPreservesSiblingOrder) {
  // A fan-out operator emitted three siblings under one tag; after the
  // extension they carry distinct lexicographically-ordered tags, so a
  // re-hash that spreads them across shards still merges them in emission
  // order.
  int64_t seq = 41;
  Dataset one;
  Record r;
  r.SetField("v", 0);
  one.push_back(std::move(r));
  TagSerialOrder(&one, &seq);
  Dataset siblings;
  for (int v = 0; v < 3; ++v) {
    Record s = one[0];
    s.SetField("v", v);
    siblings.push_back(std::move(s));
  }
  ExtendSeqTags(&siblings);
  std::vector<Dataset> spread(2);
  spread[0].push_back(siblings[1]);  // arbitrary placement across shards
  spread[1].push_back(siblings[0]);
  spread[1].push_back(siblings[2]);
  Dataset merged = MergeBySeq(std::move(spread));
  ASSERT_EQ(merged.size(), 3u);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(merged[static_cast<size_t>(v)].Field("v").AsInt(), v);
  }
}

TEST(ExchangeTest, PartitionerRoutesMissingKeysDeterministically) {
  RecordPartitioner partitioner(4, "absent");
  Record a, b;
  a.SetField("x", 1);
  b.SetField("x", 2);
  EXPECT_EQ(partitioner.ShardFor(a), partitioner.ShardFor(b));
}

// ------------------------------------------------------------ Test plans

dataflow::OperatorPtr EnrichMap() {
  dataflow::OperatorTraits t;
  t.reads = {"x", "text"};
  t.writes = {"y"};
  t.cost_per_record = 2.0;
  return std::make_shared<dataflow::MapOperator>(
      "enrich",
      [](const Record& r) {
        Record c = r;
        c.SetField("y", r.Field("x").AsInt() * 3 +
                            static_cast<int64_t>(
                                r.Field("text").AsString().size()));
        return c;
      },
      t);
}

dataflow::OperatorPtr ModFilter() {
  dataflow::OperatorTraits t;
  t.reads = {"x"};
  t.selectivity = 0.66;
  return std::make_shared<dataflow::FilterOperator>(
      "mod_filter", [](const Record& r) { return r.Field("x").AsInt() % 3 != 0; },
      t);
}

dataflow::OperatorPtr DupFlatMap() {
  dataflow::OperatorTraits t;
  t.reads = {"x"};
  t.writes = {"k2", "dup"};
  t.selectivity = 1.2;
  return std::make_shared<dataflow::FlatMapOperator>(
      "dup",
      [](const Record& r, Dataset* out) {
        Record first = r;
        first.SetField("k2", "g" + std::to_string(r.Field("x").AsInt() % 9));
        out->push_back(std::move(first));
        if (r.Field("x").AsInt() % 5 == 0) {
          Record second = r;
          second.SetField("dup", true);
          second.SetField("k2",
                          "g" + std::to_string((r.Field("x").AsInt() + 4) % 9));
          out->push_back(std::move(second));
        }
      },
      t);
}

/// Record-at-a-time operator requiring co-location by "k2".
dataflow::OperatorPtr KeyedMap() {
  dataflow::OperatorTraits t;
  t.reads = {"k2", "x"};
  t.writes = {"z"};
  t.partition_key = "k2";
  return std::make_shared<dataflow::MapOperator>(
      "keyed",
      [](const Record& r) {
        Record c = r;
        c.SetField("z", r.Field("k2").AsString() + ":" +
                            std::to_string(r.Field("x").AsInt()));
        return c;
      },
      t);
}

dataflow::Plan ChainPlan(std::vector<dataflow::OperatorPtr> ops) {
  dataflow::Plan plan;
  int prev = plan.AddSource("in");
  for (auto& op : ops) prev = plan.AddNode(std::move(op), {prev});
  plan.MarkSink(prev, "out");
  return plan;
}

dataflow::Plan UnionPlan() {
  dataflow::Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(EnrichMap(), {src});
  int b = plan.AddNode(ModFilter(), {src});
  dataflow::OperatorTraits breaker;
  breaker.record_at_a_time = false;  // pipeline breaker (union semantics)
  int u = plan.AddNode(std::make_shared<dataflow::MapOperator>(
                           "union_tag",
                           [](const Record& r) {
                             Record c = r;
                             c.SetField("u", true);
                             return c;
                           },
                           breaker),
                       {a, b});
  plan.MarkSink(u, "out");
  return plan;
}

Dataset RandomRecords(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.SetField("id", static_cast<int64_t>(i));
    r.SetField("key",
               std::string(1, static_cast<char>('a' + rng() % 7)) +
                   std::to_string(rng() % 13));
    r.SetField("x", static_cast<int64_t>(rng() % 1000));
    r.SetField("w", static_cast<double>(rng() % 10000) / 7.0);
    std::string text;
    for (size_t k = 0; k < 3 + rng() % 8; ++k) {
      text += "word" + std::to_string(rng() % 50) + " ";
    }
    r.SetField("text", text);
    data.push_back(std::move(r));
  }
  return data;
}

std::string SinkJson(const std::map<std::string, Dataset>& sinks,
                     const std::string& name) {
  std::string out;
  auto it = sinks.find(name);
  if (it == sinks.end()) return out;
  for (const Record& r : it->second) {
    out += r.ToJson();
    out += '\n';
  }
  return out;
}

std::string SerialJson(const dataflow::Plan& plan, const Dataset& input,
                       const std::string& sink = "out") {
  dataflow::Executor executor(dataflow::ExecutorConfig{});
  auto result = executor.Run(plan, {{"in", input}});
  EXPECT_TRUE(result.ok()) << result.status().message();
  return SinkJson(result->sink_outputs, sink);
}

// ------------------------------------------------------------ Planner

TEST(ShardPlannerTest, FusedChainIsOneShardedFragment) {
  dataflow::Plan plan = ChainPlan({EnrichMap(), ModFilter(), DupFlatMap()});
  auto sharded = ShardPlanner::Partition(plan, {});
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->fragments.size(), 1u);
  const Fragment& f = sharded->fragments[0];
  EXPECT_TRUE(f.sharded);
  ASSERT_EQ(f.inputs.size(), 1u);
  EXPECT_EQ(f.inputs[0].kind, ExchangeKind::kHash);
  EXPECT_EQ(f.inputs[0].key, "id");
  EXPECT_GE(f.sink_gather_channel, 0);
  EXPECT_EQ(sharded->sharded_fragments, 1u);
  EXPECT_FALSE(sharded->has_worker_exchange);
  // DupFlatMap writes k2, not id: the output is still partitioned by id.
  EXPECT_EQ(f.partition_field, "id");
}

TEST(ShardPlannerTest, BreakerPinnedToCoordinatorWithGathers) {
  auto sharded = ShardPlanner::Partition(UnionPlan(), {});
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->fragments.size(), 3u);
  EXPECT_TRUE(sharded->fragments[0].sharded);
  EXPECT_TRUE(sharded->fragments[1].sharded);
  const Fragment& u = sharded->fragments[2];
  EXPECT_FALSE(u.sharded);
  ASSERT_EQ(u.inputs.size(), 2u);
  EXPECT_EQ(u.inputs[0].kind, ExchangeKind::kGather);
  EXPECT_EQ(u.inputs[1].kind, ExchangeKind::kGather);
  EXPECT_FALSE(sharded->has_worker_exchange);
}

TEST(ShardPlannerTest, KeyChangeInsertsWorkerExchange) {
  // Unfused, the keyed map's fragment requires "k2" while the stream is
  // partitioned by "id": the planner re-hashes shard-to-shard.
  dataflow::Plan plan = ChainPlan({DupFlatMap(), KeyedMap()});
  ShardPlanner::Options options;
  options.fuse_pipelines = false;
  auto sharded = ShardPlanner::Partition(plan, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->fragments.size(), 2u);
  ASSERT_EQ(sharded->fragments[1].inputs.size(), 1u);
  EXPECT_EQ(sharded->fragments[1].inputs[0].kind, ExchangeKind::kHash);
  EXPECT_EQ(sharded->fragments[1].inputs[0].key, "k2");
  EXPECT_TRUE(sharded->has_worker_exchange);
}

TEST(ShardPlannerTest, FusedKeyRequirementScattersByThatKey) {
  // Fused into one fragment, the k2 requirement applies to the whole chain:
  // no worker exchange, but the initial scatter uses k2. (DupFlatMap
  // writes k2, so the fragment's output partition field is unknown.)
  dataflow::Plan plan = ChainPlan({DupFlatMap(), KeyedMap()});
  auto sharded = ShardPlanner::Partition(plan, {});
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->fragments.size(), 1u);
  EXPECT_TRUE(sharded->fragments[0].sharded);
  EXPECT_EQ(sharded->fragments[0].inputs[0].key, "k2");
  EXPECT_FALSE(sharded->has_worker_exchange);
  EXPECT_EQ(sharded->fragments[0].partition_field, "");
}

TEST(ShardPlannerTest, ProjectionDemotesItsFragment) {
  dataflow::Plan plan = ChainPlan(
      {EnrichMap(),
       std::make_shared<dataflow::ProjectionOperator>(
           "proj", std::vector<std::string>{"id", "y"})});
  auto sharded = ShardPlanner::Partition(plan, {});
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->sharded_fragments, 0u)
      << "an operator that drops unknown fields would lose the order tags";
}

TEST(ShardPlannerTest, ConflictingPartitionKeysDemote) {
  dataflow::OperatorTraits a_traits;
  a_traits.partition_key = "a";
  dataflow::OperatorTraits b_traits;
  b_traits.partition_key = "b";
  auto identity = [](const Record& r) { return r; };
  dataflow::Plan plan = ChainPlan(
      {std::make_shared<dataflow::MapOperator>("need_a", identity, a_traits),
       std::make_shared<dataflow::MapOperator>("need_b", identity, b_traits)});
  auto sharded = ShardPlanner::Partition(plan, {});
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->sharded_fragments, 0u);
}

TEST(ShardPlannerTest, BroadcastSourceEdges) {
  dataflow::Plan plan;
  int docs = plan.AddSource("in");
  int dict = plan.AddSource("dict");
  int node = plan.AddNode(EnrichMap(), {docs, dict});
  plan.MarkSink(node, "out");
  ShardPlanner::Options options;
  options.broadcast_sources = {"dict"};
  auto sharded = ShardPlanner::Partition(plan, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded->fragments.size(), 1u);
  const Fragment& f = sharded->fragments[0];
  ASSERT_TRUE(f.sharded);
  ASSERT_EQ(f.inputs.size(), 2u);
  EXPECT_EQ(f.inputs[0].kind, ExchangeKind::kHash);
  EXPECT_EQ(f.inputs[1].kind, ExchangeKind::kBroadcast);
}

// ------------------------------------------------------- Split-correctness

class SplitCorrectnessTest : public ::testing::Test {
 protected:
  /// Runs `make_plan()` sharded at several shard counts and requires the
  /// sink bytes to equal the serial run's, for each partition key.
  void ExpectSplitCorrect(
      const std::function<dataflow::Plan()>& make_plan, const Dataset& input,
      const std::vector<std::string>& keys = {"id", "key", "x"},
      ShardOptions base = {}) {
    std::string serial = SerialJson(make_plan(), input);
    ASSERT_FALSE(serial.empty());
    for (const std::string& key : keys) {
      for (size_t shards : {1u, 2u, 3u, 7u, 16u}) {
        ShardOptions options = base;
        options.num_shards = shards;
        options.partition_key = key;
        options.dop_per_shard = 2;
        ShardRuntime runtime(options);
        auto result = runtime.Run(
            [&make_plan](int) { return make_plan(); }, {{"in", input}});
        ASSERT_TRUE(result.ok())
            << shards << " shards, key " << key << ": "
            << result.status().message();
        EXPECT_EQ(SinkJson(result->sink_outputs, "out"), serial)
            << shards << " shards, key " << key;
      }
    }
  }
};

TEST_F(SplitCorrectnessTest, RecordChainByteIdentical) {
  ExpectSplitCorrect(
      [] { return ChainPlan({EnrichMap(), ModFilter(), DupFlatMap()}); },
      RandomRecords(97, 7));
}

TEST_F(SplitCorrectnessTest, MissingPartitionKeyDegeneratesSafely) {
  ExpectSplitCorrect([] { return ChainPlan({EnrichMap(), ModFilter()}); },
                     RandomRecords(40, 11), {"no_such_field"});
}

TEST_F(SplitCorrectnessTest, UnionBreakerByteIdentical) {
  ExpectSplitCorrect([] { return UnionPlan(); }, RandomRecords(60, 13));
}

TEST_F(SplitCorrectnessTest, WorkerExchangeByteIdentical) {
  // Unfused: DupFlatMap runs partitioned by id, KeyedMap requires k2 — a
  // true shard-to-shard re-hash, with fan-out siblings crossing shards.
  ShardOptions base;
  base.fuse_pipelines = false;
  ExpectSplitCorrect([] { return ChainPlan({DupFlatMap(), KeyedMap()}); },
                     RandomRecords(80, 17), {"id", "key"}, base);
}

TEST_F(SplitCorrectnessTest, BroadcastInputByteIdentical) {
  dataflow::Plan plan;
  int docs = plan.AddSource("in");
  int dict = plan.AddSource("dict");
  int node = plan.AddNode(EnrichMap(), {docs, dict});
  plan.MarkSink(node, "out");

  Dataset input = RandomRecords(30, 19);
  Dataset dict_data = RandomRecords(5, 23);

  dataflow::Executor executor(dataflow::ExecutorConfig{});
  auto serial = executor.Run(plan, {{"in", input}, {"dict", dict_data}});
  ASSERT_TRUE(serial.ok());
  std::string expected = SinkJson(serial->sink_outputs, "out");

  for (size_t shards : {2u, 3u, 5u}) {
    ShardOptions options;
    options.num_shards = shards;
    options.broadcast_sources = {"dict"};
    ShardRuntime runtime(options);
    auto result = runtime.Run(
        [&plan](int) { return plan; },
        {{"in", input}, {"dict", dict_data}});
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(SinkJson(result->sink_outputs, "out"), expected)
        << shards << " shards";
  }
}

TEST_F(SplitCorrectnessTest, RandomPlansAndCorpora) {
  std::mt19937_64 rng(101);
  for (int round = 0; round < 4; ++round) {
    std::vector<dataflow::OperatorPtr> ops;
    ops.push_back(EnrichMap());
    if (rng() % 2 == 0) ops.push_back(ModFilter());
    if (rng() % 2 == 0) ops.push_back(DupFlatMap());
    auto make_plan = [&ops] {
      std::vector<dataflow::OperatorPtr> copy = ops;
      return ChainPlan(std::move(copy));
    };
    ExpectSplitCorrect(make_plan, RandomRecords(20 + rng() % 80, rng()),
                       {round % 2 == 0 ? "id" : "key"});
  }
}

TEST_F(SplitCorrectnessTest, FaultyOperatorsRecoverIdentically) {
  // Deterministically failing operators + task retries inside each shard's
  // executor: output still byte-identical to the clean serial run.
  auto make_faulty = [] {
    dataflow::FaultInjectionOptions fault;
    fault.seed = 77;
    fault.transient_prob = 0.4;
    return ChainPlan(
        {std::make_shared<dataflow::FaultInjectingOperator>(EnrichMap(), fault),
         ModFilter()});
  };
  Dataset input = RandomRecords(70, 29);
  std::string serial = SerialJson(ChainPlan({EnrichMap(), ModFilter()}), input);
  for (size_t shards : {1u, 2u, 3u, 7u}) {
    ShardOptions options;
    options.num_shards = shards;
    options.max_task_retries = 3;
    options.dop_per_shard = 2;
    ShardRuntime runtime(options);
    auto result =
        runtime.Run([&make_faulty](int) { return make_faulty(); },
                    {{"in", input}});
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(SinkJson(result->sink_outputs, "out"), serial)
        << shards << " shards";
  }
}

TEST_F(SplitCorrectnessTest, PermanentFaultFailsTheRun) {
  auto make_faulty = [] {
    dataflow::FaultInjectionOptions fault;
    fault.seed = 5;
    fault.permanent_prob = 0.5;
    return ChainPlan({std::make_shared<dataflow::FaultInjectingOperator>(
        EnrichMap(), fault)});
  };
  ShardOptions options;
  options.num_shards = 2;
  options.max_task_retries = 3;
  ShardRuntime runtime(options);
  auto result = runtime.Run([&make_faulty](int) { return make_faulty(); },
                            {{"in", RandomRecords(50, 31)}});
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------------ Runtime

TEST(ShardRuntimeTest, WorkerStatsCoverEveryShard) {
  Dataset input = RandomRecords(60, 37);
  ShardOptions options;
  options.num_shards = 3;
  ShardRuntime runtime(options);
  auto result = runtime.Run(
      [](int) { return ChainPlan({EnrichMap(), ModFilter()}); },
      {{"in", input}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->workers.size(), 3u);
  uint64_t records_in = 0;
  for (const ShardWorkerStats& w : result->workers) {
    EXPECT_TRUE(w.status.ok());
    EXPECT_GE(w.wall_seconds, 0.0);
    records_in += w.records_in;
  }
  EXPECT_EQ(records_in, input.size());
  EXPECT_EQ(result->sharded_fragments, 1u);
  EXPECT_GT(result->rows_shuffled, 0u);
  EXPECT_GT(result->exchange_messages, 0u);
}

TEST(ShardRuntimeTest, ObsCountersAdvance) {
  auto& registry = obs::MetricsRegistry::Global();
  double runs_before = registry.GetCounter("wsie.shard.runs")->Value();
  double rows_before =
      registry.GetCounter("wsie.exchange.rows_shuffled")->Value();
  ShardOptions options;
  options.num_shards = 2;
  ShardRuntime runtime(options);
  auto result = runtime.Run([](int) { return ChainPlan({EnrichMap()}); },
                            {{"in", RandomRecords(25, 41)}});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(registry.GetCounter("wsie.shard.runs")->Value(), runs_before);
  EXPECT_GT(registry.GetCounter("wsie.exchange.rows_shuffled")->Value(),
            rows_before);
}

TEST(ShardRuntimeTest, SequentialWorkersMatchConcurrent) {
  Dataset input = RandomRecords(50, 43);
  std::string serial =
      SerialJson(ChainPlan({EnrichMap(), ModFilter()}), input);
  ShardOptions options;
  options.num_shards = 4;
  options.sequential_workers = true;
  ShardRuntime runtime(options);
  auto result = runtime.Run(
      [](int) { return ChainPlan({EnrichMap(), ModFilter()}); },
      {{"in", input}});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(SinkJson(result->sink_outputs, "out"), serial);
}

TEST(ShardRuntimeTest, SequentialRejectsWorkerExchange) {
  ShardOptions options;
  options.num_shards = 2;
  options.sequential_workers = true;
  options.fuse_pipelines = false;  // forces the k2 re-hash
  ShardRuntime runtime(options);
  auto result = runtime.Run(
      [](int) { return ChainPlan({DupFlatMap(), KeyedMap()}); },
      {{"in", RandomRecords(10, 47)}});
  EXPECT_FALSE(result.ok());
}

TEST(ShardRuntimeTest, SequentialRejectsMultiprocess) {
  ShardOptions options;
  options.sequential_workers = true;
  options.multiprocess = true;
  ShardRuntime runtime(options);
  auto result = runtime.Run([](int) { return ChainPlan({EnrichMap()}); },
                            {{"in", RandomRecords(5, 53)}});
  EXPECT_FALSE(result.ok());
}

// --------------------------------------------------- Multi-process workers

TEST(ShardMultiProcessTest, SocketpairWorkersByteIdentical) {
  Dataset input = RandomRecords(60, 59);
  std::string serial =
      SerialJson(ChainPlan({EnrichMap(), ModFilter(), DupFlatMap()}), input);
  for (size_t shards : {2u, 3u}) {
    ShardOptions options;
    options.num_shards = shards;
    options.multiprocess = true;
    ShardRuntime runtime(options);
    auto result = runtime.Run(
        [](int) { return ChainPlan({EnrichMap(), ModFilter(), DupFlatMap()}); },
        {{"in", input}});
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(SinkJson(result->sink_outputs, "out"), serial)
        << shards << " forked workers";
    ASSERT_EQ(result->workers.size(), shards);
    for (const ShardWorkerStats& w : result->workers) {
      EXPECT_TRUE(w.status.ok());
    }
  }
}

TEST(ShardMultiProcessTest, UnionBreakerOverSocketpairs) {
  Dataset input = RandomRecords(45, 61);
  std::string serial = SerialJson(UnionPlan(), input);
  ShardOptions options;
  options.num_shards = 2;
  options.multiprocess = true;
  ShardRuntime runtime(options);
  auto result =
      runtime.Run([](int) { return UnionPlan(); }, {{"in", input}});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(SinkJson(result->sink_outputs, "out"), serial);
}

// ------------------------------------------- Distributed observability

TEST(FrameTraceTest, TraceContextRoundTripsThroughFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame frame;
  frame.channel = 3;
  frame.from = 1;
  frame.to = 2;
  frame.rows = 2;
  frame.trace_id = 0xdeadbeefcafe1234ull;
  frame.parent_span = 0x42ull;
  EncodeDataset(RandomRecords(2, 67), &frame.payload);
  ASSERT_TRUE(WriteFrame(fds[0], frame).ok());
  Result<Frame> read = ReadFrame(fds[1]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->channel, 3);
  EXPECT_EQ(read->from, 1);
  EXPECT_EQ(read->to, 2);
  EXPECT_EQ(read->rows, 2u);
  EXPECT_EQ(read->trace_id, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(read->parent_span, 0x42ull);
  EXPECT_EQ(read->payload, frame.payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

#if WSIE_OBS >= 1

TEST(ShardObsCollectTest, MergedCountersAreExactSumsAndForkSafe) {
  // The fork-safety contract: a parent-side count bumped before the run
  // must never reappear in any worker's shipped snapshot (the child resets
  // its inherited registry immediately after fork).
  obs::MetricsRegistry::Global().GetCounter("wsie.test.fork.leak")->Add(7);
  Dataset input = RandomRecords(48, 71);
  auto run_once = [&input] {
    ShardOptions options;
    options.num_shards = 3;
    options.multiprocess = true;
    ShardRuntime runtime(options);
    return runtime.Run(
        [](int) { return ChainPlan({EnrichMap(), ModFilter()}); },
        {{"in", input}});
  };
  auto result = run_once();
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_TRUE(result->obs.collected);
  ASSERT_EQ(result->obs.per_shard.size(), 3u);
  EXPECT_GT(result->obs.bundle_bytes, 0u);
  for (const obs::ObsBundle& bundle : result->obs.per_shard) {
    EXPECT_EQ(bundle.metrics.CounterValue("wsie.test.fork.leak"), 0u)
        << "parent count leaked into shard " << bundle.shard;
    EXPECT_NE(bundle.os_pid, 0);
  }
  EXPECT_EQ(result->obs.merged.CounterValue("wsie.test.fork.leak"), 0u);

  // Coordinator-side merged counters equal the sum of the per-shard
  // counters exactly, for every counter family the workers shipped.
  uint64_t total_records_in = 0;
  for (const auto& counter : result->obs.merged.counters) {
    uint64_t sum = 0;
    for (const obs::ObsBundle& bundle : result->obs.per_shard) {
      sum += bundle.metrics.CounterValue(counter.name);
    }
    EXPECT_EQ(counter.value, sum) << counter.name;
  }
  total_records_in =
      result->obs.merged.CounterPrefixSum("wsie.dataflow.operator.records_in");
  EXPECT_GT(total_records_in, 0u);

  // Deterministic: a second identical run merges to the same record
  // counts (timing counters differ; the count families must not).
  auto again = run_once();
  ASSERT_TRUE(again.ok()) << again.status().message();
  ASSERT_TRUE(again->obs.collected);
  EXPECT_EQ(again->obs.merged.CounterPrefixSum(
                "wsie.dataflow.operator.records_in"),
            total_records_in);
  EXPECT_EQ(again->obs.merged.CounterPrefixSum(
                "wsie.dataflow.operator.records_out"),
            result->obs.merged.CounterPrefixSum(
                "wsie.dataflow.operator.records_out"));

  // The per-shard skew report covers every shard and its shares sum to 1.
  ASSERT_EQ(result->obs.skew.size(), 3u);
  double share = 0.0;
  uint64_t skew_records = 0;
  for (const ShardSkewRow& row : result->obs.skew) {
    share += row.share;
    skew_records += row.records_in;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  EXPECT_EQ(skew_records, input.size());
}

TEST(ShardObsCollectTest, CollectCanBeDisabled) {
  ShardOptions options;
  options.num_shards = 2;
  options.multiprocess = true;
  options.collect_obs = false;
  ShardRuntime runtime(options);
  auto result = runtime.Run([](int) { return ChainPlan({EnrichMap()}); },
                            {{"in", RandomRecords(20, 73)}});
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_FALSE(result->obs.collected);
  EXPECT_TRUE(result->obs.per_shard.empty());
}

#endif  // WSIE_OBS >= 1

#if WSIE_OBS >= 2

TEST(ShardObsCollectTest, EightForkedWorkersStitchIntoOneValidTrace) {
  obs::TraceRecorder::Global().SetEnabled(true);
  Dataset input = RandomRecords(64, 79);
  ShardOptions options;
  options.num_shards = 8;
  options.multiprocess = true;
  ShardRuntime runtime(options);
  auto result = runtime.Run(
      [](int) { return ChainPlan({EnrichMap(), ModFilter()}); },
      {{"in", input}});
  obs::TraceRecorder::Global().SetEnabled(false);
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_TRUE(result->obs.collected);
  EXPECT_NE(result->trace_id, 0u);

  const std::string& json = result->obs.stitched_trace_json;
  ASSERT_FALSE(json.empty());
  Status checked = obs::ValidateChromeTrace(json);
  ASSERT_TRUE(checked.ok()) << checked.ToString();

  // One stitched document: the coordinator under pid 1 plus every worker
  // under its own distinct pid, each with its root span present.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("shard.run"), std::string::npos);
  for (int s = 0; s < 8; ++s) {
    EXPECT_NE(json.find("shard.worker." + std::to_string(s)),
              std::string::npos)
        << "missing worker span for shard " << s;
    EXPECT_NE(json.find("\"pid\":" + std::to_string(2 + s)),
              std::string::npos)
        << "missing pid for shard " << s;
  }
  // Cross-process causal links: worker root spans embed the run's trace id
  // in their args.
  char trace_tag[32];
  std::snprintf(trace_tag, sizeof(trace_tag), "trace=%llx",
                static_cast<unsigned long long>(result->trace_id));
  EXPECT_NE(json.find(trace_tag), std::string::npos);
  EXPECT_EQ(result->obs.stitch.processes, 9u);
  EXPECT_GE(result->obs.stitch.events, 2u * 9u);
  ASSERT_EQ(result->obs.offsets_ns.size(), result->obs.per_shard.size());
}

#endif  // WSIE_OBS >= 2

// ------------------------------------------------------------ Store merge

TEST(ShardStoreMergeTest, AbsorbShardStoresDeterministically) {
  namespace fs = std::filesystem;
  std::string base = ::testing::TempDir() + "/shard_merge_test";
  fs::remove_all(base);
  fs::create_directories(base + "/shards");

  uint64_t expected_postings = 0;
  for (int s = 0; s < 3; ++s) {
    auto store = store::AnnotationStore::Open(base + "/shards/shard-" +
                                              std::to_string(s));
    ASSERT_TRUE(store.ok());
    store::SegmentBuilder builder;
    for (int p = 0; p < 5 + s; ++p) {
      builder.Add("term" + std::to_string(p % 4), /*corpus=*/0, /*type=*/0,
                  /*method=*/0,
                  store::Posting{static_cast<uint64_t>(s * 100 + p), 0, 0, 4});
      ++expected_postings;
    }
    builder.AddCorpusStats(0, 1 + static_cast<uint64_t>(s), 10, 100);
    ASSERT_TRUE(store.value()->Append(std::move(builder)).ok());
  }

  auto target = store::AnnotationStore::Open(base + "/target");
  ASSERT_TRUE(target.ok());
  auto absorbed = store::AbsorbShardStores(target.value().get(),
                                           base + "/shards");
  ASSERT_TRUE(absorbed.ok()) << absorbed.status().message();
  EXPECT_EQ(absorbed.value(), 3u);
  EXPECT_EQ(target.value()->num_segments(), 3u);
  EXPECT_EQ(target.value()->snapshot().num_postings(), expected_postings);

  // The regular compactor path folds the per-shard segments into one.
  ASSERT_TRUE(target.value()->Compact().ok());
  EXPECT_EQ(target.value()->num_segments(), 1u);
  EXPECT_EQ(target.value()->snapshot().num_postings(), expected_postings);
  auto stats = target.value()->snapshot().segments[0]->corpus_stats();
  EXPECT_EQ(stats[0].docs, 1u + 2u + 3u);

  EXPECT_FALSE(
      store::AbsorbShardStores(target.value().get(), base + "/missing").ok());
  fs::remove_all(base);
}

// ------------------------------------------------------- Sharded frontier

TEST(HostShardRouterTest, DeterministicAndHostStable) {
  crawler::HostShardRouter router(4);
  crawler::HostShardRouter again(4);
  for (int i = 0; i < 50; ++i) {
    std::string host = "host" + std::to_string(i) + ".example";
    EXPECT_EQ(router.ShardForHost(host), again.ShardForHost(host));
    EXPECT_EQ(router.ShardForUrl("http://" + host + "/a.html"),
              router.ShardForUrl("http://" + host + "/deep/b.html"))
        << "all URLs of one host must land on one shard";
  }
  EXPECT_EQ(router.ShardForUrl("not a url"), -1);
}

class ShardedCrawlTest : public ::testing::Test {
 protected:
  ShardedCrawlTest()
      : lexicons_(corpus::LexiconConfig{800, 150, 150, 5}),
        web_(MakeWebConfig()),
        sim_(&web_, &lexicons_),
        classifier_(&lexicons_, MakeClassifierConfig()) {}

  static web::WebConfig MakeWebConfig() {
    web::WebConfig config;
    config.num_hosts = 30;
    config.mean_pages_per_host = 6;
    config.seed = 17;
    return config;
  }
  static crawler::ClassifierTrainConfig MakeClassifierConfig() {
    crawler::ClassifierTrainConfig config;
    config.docs_per_class = 120;
    config.relevance_threshold = 0.5;
    return config;
  }

  std::vector<std::string> BiomedSeeds(size_t count) {
    std::vector<std::string> seeds;
    for (const auto& page : web_.pages()) {
      if (seeds.size() >= count) break;
      const auto& host = web_.HostOf(page);
      if ((host.topic == web::HostTopic::kBiomedPortal ||
           host.topic == web::HostTopic::kBiomedResearch) &&
          page.mime == lang::MimeClass::kHtml && page.relevant) {
        seeds.push_back(web_.UrlOf(page));
      }
    }
    return seeds;
  }

  static std::set<std::string> CorpusUrls(const corpus::DocumentStore& store) {
    std::set<std::string> urls;
    for (const auto& doc : store.documents()) urls.insert(doc.url);
    return urls;
  }

  corpus::EntityLexicons lexicons_;
  web::SyntheticWeb web_;
  web::SimulatedWeb sim_;
  crawler::RelevanceClassifier classifier_;
};

TEST_F(ShardedCrawlTest, ShardedCrawlCoversTheSerialReachableSet) {
  std::vector<std::string> seeds = BiomedSeeds(12);
  ASSERT_FALSE(seeds.empty());

  crawler::FocusedCrawler serial(&sim_, &classifier_, crawler::CrawlerConfig{});
  serial.InjectSeeds(seeds);
  serial.Crawl();
  ASSERT_GT(serial.stats().fetched, 0u);

  crawler::ShardedCrawlOptions options;
  options.num_shards = 3;
  crawler::ShardedCrawl sharded(&sim_, &classifier_, options);
  sharded.InjectSeeds(seeds);
  sharded.Crawl();

  crawler::CrawlStats total = sharded.AggregateStats();
  EXPECT_EQ(total.fetched, serial.stats().fetched);
  EXPECT_EQ(total.classified_relevant, serial.stats().classified_relevant);
  EXPECT_GT(sharded.urls_exchanged(), 0u)
      << "cross-host links must cross shards";
  EXPECT_GE(sharded.rounds(), 1u);

  // The union of per-shard relevant corpora is exactly the serial corpus.
  std::set<std::string> serial_urls = CorpusUrls(serial.relevant_corpus());
  std::set<std::string> sharded_urls;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    for (const std::string& url :
         CorpusUrls(sharded.shard(s).relevant_corpus())) {
      EXPECT_TRUE(sharded_urls.insert(url).second)
          << url << " fetched by two shards";
    }
  }
  EXPECT_EQ(sharded_urls, serial_urls);
}

TEST_F(ShardedCrawlTest, HostStateStaysShardLocal) {
  std::vector<std::string> seeds = BiomedSeeds(12);
  crawler::ShardedCrawlOptions options;
  options.num_shards = 3;
  crawler::ShardedCrawl sharded(&sim_, &classifier_, options);
  sharded.InjectSeeds(seeds);
  sharded.Crawl();
  // Every host with dispatched fetches appears on exactly the shard the
  // router assigns it to.
  for (const auto& host : web_.hosts()) {
    int owner = sharded.router().ShardForHost(host.name);
    for (int s = 0; s < sharded.num_shards(); ++s) {
      if (s == owner) continue;
      EXPECT_EQ(sharded.shard(s).crawl_db().HostFetchCount(host.name), 0u)
          << host.name << " leaked onto shard " << s;
    }
  }
}

// ------------------------------------------------------ Real analysis flow

class ShardedFlowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::AnalysisContextConfig config;
    config.crf_training_sentences = 120;
    config.pos_training_sentences = 400;
    context_ = new std::shared_ptr<const core::AnalysisContext>(
        std::make_shared<const core::AnalysisContext>(config));
  }
  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
  }
  static core::ContextPtr context() { return *context_; }

  static std::vector<corpus::Document> MakeCorpus(size_t n, uint64_t seed) {
    corpus::TextGenerator generator(
        &context()->lexicons(),
        corpus::ProfileFor(corpus::CorpusKind::kMedline), seed);
    return generator.GenerateCorpus(seed * 1000, n);
  }

  static std::shared_ptr<const core::AnalysisContext>* context_;
};

std::shared_ptr<const core::AnalysisContext>* ShardedFlowTest::context_ =
    nullptr;

TEST_F(ShardedFlowTest, RunFlowShardedMatchesSerialRun) {
  std::vector<corpus::Document> docs = MakeCorpus(12, 3);
  core::FlowOptions flow;
  auto serial = core::RunFlow(core::BuildAnalysisFlow(context(), flow), docs,
                              dataflow::ExecutorConfig{});
  ASSERT_TRUE(serial.ok());
  std::string expected = SinkJson(serial->sink_outputs, "analyzed");
  ASSERT_FALSE(expected.empty());

  for (size_t shards : {1u, 2u, 3u}) {
    ShardOptions options;
    options.num_shards = shards;
    options.dop_per_shard = 2;
    auto result = core::RunFlowSharded(context(), flow, docs, options);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(SinkJson(result->sink_outputs, "analyzed"), expected)
        << shards << " shards";
    EXPECT_GT(result->sharded_fragments, 0u);
  }
}

TEST_F(ShardedFlowTest, PerShardStoreSegmentsMergeToSerialStore) {
  namespace fs = std::filesystem;
  std::vector<corpus::Document> docs = MakeCorpus(10, 5);
  core::FlowOptions flow;

  // Serial reference: one StoreSink tap over the whole corpus.
  auto serial_sink = std::make_shared<store::StoreSink>();
  dataflow::Plan serial_plan = core::BuildAnalysisFlow(context(), flow);
  ASSERT_NE(store::AttachStoreSink(&serial_plan, serial_sink),
            dataflow::Plan::kInvalidNode);
  auto serial = core::RunFlow(serial_plan, docs, dataflow::ExecutorConfig{});
  ASSERT_TRUE(serial.ok());
  uint64_t serial_postings = serial_sink->postings_accumulated();
  ASSERT_GT(serial_postings, 0u);

  // Sharded: each worker taps its own StoreSink and flushes it into its
  // own segment directory from per_shard_finish; the coordinator then
  // absorbs the shard stores and the regular compactor folds them.
  std::string base = ::testing::TempDir() + "/shard_flow_store";
  fs::remove_all(base);
  fs::create_directories(base + "/shards");

  const size_t kShards = 3;
  std::vector<std::shared_ptr<store::StoreSink>> sinks(kShards + 1);
  ShardOptions options;
  options.num_shards = kShards;
  options.per_shard_finish = [&sinks, &base](int shard) {
    auto store = store::AnnotationStore::Open(base + "/shards/shard-" +
                                              std::to_string(shard));
    if (!store.ok()) return store.status();
    return sinks[static_cast<size_t>(shard)]->FlushTo(store.value().get());
  };
  ShardRuntime runtime(options);
  auto result = runtime.Run(
      [&sinks, &flow](int shard) {
        dataflow::Plan plan = core::BuildAnalysisFlow(context(), flow);
        auto sink = std::make_shared<store::StoreSink>();
        sinks[static_cast<size_t>(shard)] = sink;
        store::AttachStoreSink(&plan, sink);
        return plan;
      },
      {{"docs", core::DocumentsToRecords(docs)}});
  ASSERT_TRUE(result.ok()) << result.status().message();

  auto target = store::AnnotationStore::Open(base + "/target");
  ASSERT_TRUE(target.ok());
  auto absorbed =
      store::AbsorbShardStores(target.value().get(), base + "/shards");
  ASSERT_TRUE(absorbed.ok()) << absorbed.status().message();
  EXPECT_EQ(target.value()->snapshot().num_postings(), serial_postings);
  ASSERT_TRUE(target.value()->Compact().ok());
  EXPECT_EQ(target.value()->snapshot().num_postings(), serial_postings);
  fs::remove_all(base);
}

}  // namespace
}  // namespace wsie::shard
