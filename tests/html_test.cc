#include <gtest/gtest.h>

#include "html/boilerplate.h"
#include "html/html_parser.h"
#include "html/html_repair.h"
#include "html/markup_remover.h"

namespace wsie::html {
namespace {

// ------------------------------------------------------------ Lexer

TEST(HtmlLexerTest, BasicEventStream) {
  HtmlLexer lexer;
  auto events = lexer.Lex("<p>hello</p>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, HtmlEvent::Kind::kStartTag);
  EXPECT_EQ(events[0].name, "p");
  EXPECT_EQ(events[1].kind, HtmlEvent::Kind::kText);
  EXPECT_EQ(events[1].text, "hello");
  EXPECT_EQ(events[2].kind, HtmlEvent::Kind::kEndTag);
}

TEST(HtmlLexerTest, LowercasesTagNames) {
  HtmlLexer lexer;
  auto events = lexer.Lex("<DIV>x</DIV>");
  EXPECT_EQ(events[0].name, "div");
  EXPECT_EQ(events[2].name, "div");
}

TEST(HtmlLexerTest, AttributesCaptured) {
  HtmlLexer lexer;
  auto events = lexer.Lex("<a href=\"http://x.org/\">link</a>");
  EXPECT_EQ(events[0].name, "a");
  EXPECT_NE(events[0].attrs.find("href"), std::string::npos);
}

TEST(HtmlLexerTest, SelfClosingAndVoidTags) {
  HtmlLexer lexer;
  auto events = lexer.Lex("a<br/>b<img src=x>c");
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[1].kind, HtmlEvent::Kind::kSelfClose);
  EXPECT_EQ(events[3].kind, HtmlEvent::Kind::kSelfClose);  // img is void
}

TEST(HtmlLexerTest, CommentsAndDoctype) {
  HtmlLexer lexer;
  auto events = lexer.Lex("<!DOCTYPE html><!-- note -->text");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, HtmlEvent::Kind::kDoctype);
  EXPECT_EQ(events[1].kind, HtmlEvent::Kind::kComment);
  EXPECT_EQ(events[1].text, " note ");
}

TEST(HtmlLexerTest, ScriptBodyIsOpaque) {
  HtmlLexer lexer;
  auto events = lexer.Lex("<script>if (a<b) { x(); }</script><p>t</p>");
  EXPECT_EQ(events[0].name, "script");
  EXPECT_NE(events[0].text.find("a<b"), std::string::npos);
  // The <p> after the script still parses.
  bool found_p = false;
  for (const auto& ev : events) {
    if (ev.kind == HtmlEvent::Kind::kStartTag && ev.name == "p")
      found_p = true;
  }
  EXPECT_TRUE(found_p);
}

TEST(HtmlLexerTest, StrayAngleBracketIsMalformed) {
  HtmlLexer lexer;
  auto events = lexer.Lex("a < b");
  bool malformed = false;
  for (const auto& ev : events) {
    if (ev.kind == HtmlEvent::Kind::kMalformed) malformed = true;
  }
  EXPECT_TRUE(malformed);
}

TEST(HtmlLexerTest, UnterminatedTagAtEof) {
  HtmlLexer lexer;
  auto events = lexer.Lex("text<div class=");
  EXPECT_EQ(events.back().kind, HtmlEvent::Kind::kMalformed);
}

TEST(HtmlParserTest, ExtractAttributeQuoted) {
  EXPECT_EQ(ExtractAttribute(" href=\"http://x/\" id='y'", "href"),
            "http://x/");
  EXPECT_EQ(ExtractAttribute(" href=\"http://x/\" id='y'", "id"), "y");
}

TEST(HtmlParserTest, ExtractAttributeBare) {
  EXPECT_EQ(ExtractAttribute(" src=img.png width=5", "src"), "img.png");
  EXPECT_EQ(ExtractAttribute(" src=img.png width=5", "width"), "5");
}

TEST(HtmlParserTest, ExtractAttributeMissing) {
  EXPECT_EQ(ExtractAttribute(" href=\"x\"", "class"), "");
  EXPECT_EQ(ExtractAttribute("", "href"), "");
}

TEST(HtmlParserTest, DecodeEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b &lt;c&gt;"), "a & b <c>");
  EXPECT_EQ(DecodeEntities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
  EXPECT_EQ(DecodeEntities("x&nbsp;y"), "x y");
  EXPECT_EQ(DecodeEntities("&#65;&#x42;"), "AB");
  EXPECT_EQ(DecodeEntities("bare & ampersand"), "bare & ampersand");
  EXPECT_EQ(DecodeEntities("&unknown;"), "&unknown;");
}

TEST(HtmlParserTest, ElementClassification) {
  EXPECT_TRUE(IsVoidElement("br"));
  EXPECT_FALSE(IsVoidElement("p"));
  EXPECT_TRUE(IsBlockElement("div"));
  EXPECT_TRUE(IsBlockElement("td"));
  EXPECT_FALSE(IsBlockElement("a"));
}

// ------------------------------------------------------------ Repair

TEST(HtmlRepairTest, ClosesUnclosedTags) {
  HtmlRepair repair;
  auto result = repair.Repair("<html><body><p>one<p>two</body></html>");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.unclosed_tags_closed, 0);
  // Repaired HTML balances: count <p> == count </p>.
  size_t opens = 0, closes = 0, pos = 0;
  while ((pos = result->html.find("<p>", pos)) != std::string::npos) {
    ++opens;
    ++pos;
  }
  pos = 0;
  while ((pos = result->html.find("</p>", pos)) != std::string::npos) {
    ++closes;
    ++pos;
  }
  EXPECT_EQ(opens, closes);
}

TEST(HtmlRepairTest, DropsStrayEndTags) {
  HtmlRepair repair;
  auto result = repair.Repair("<div>x</b></div>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.stray_end_tags_dropped, 1);
  EXPECT_EQ(result->html.find("</b>"), std::string::npos);
}

TEST(HtmlRepairTest, FixesMisnesting) {
  HtmlRepair repair;
  auto result = repair.Repair("<div><span>x</div></span>");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.misnested_tags_fixed +
                result->stats.stray_end_tags_dropped,
            0);
}

TEST(HtmlRepairTest, RejectsSeverelyDamagedMarkup) {
  HtmlRepairOptions options;
  options.max_malformed_fraction = 0.2;
  HtmlRepair repair(options);
  // Mostly stray '<' debris.
  auto result = repair.Repair("< < < < < < < <p>x</p>");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

TEST(HtmlRepairTest, RejectsEmptyDocument) {
  HtmlRepair repair;
  EXPECT_FALSE(repair.Repair("").ok());
}

TEST(HtmlRepairTest, CleanDocumentPassesUnchangedModuloStats) {
  HtmlRepair repair;
  std::string clean = "<html><body><p>fine</p></body></html>";
  auto result = repair.Repair(clean);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.any());
  EXPECT_EQ(result->html, clean);
}

// ------------------------------------------------------------ Remover

TEST(MarkupRemoverTest, PlainTextStripsTags) {
  MarkupRemover remover;
  std::string text =
      remover.PlainText("<p>alpha <b>beta</b></p><p>gamma</p>");
  EXPECT_NE(text.find("alpha beta"), std::string::npos);
  EXPECT_NE(text.find("gamma"), std::string::npos);
  EXPECT_EQ(text.find("<"), std::string::npos);
}

TEST(MarkupRemoverTest, DropsScriptAndStyleBodies) {
  MarkupRemover remover;
  std::string text = remover.PlainText(
      "<style>body{}</style><script>var x=1;</script><p>real</p>");
  EXPECT_EQ(text.find("var x"), std::string::npos);
  EXPECT_EQ(text.find("body{}"), std::string::npos);
  EXPECT_NE(text.find("real"), std::string::npos);
}

TEST(MarkupRemoverTest, BlocksSegmentedByBlockTags) {
  MarkupRemover remover;
  auto blocks = remover.ExtractBlocks("<p>one</p><p>two</p><div>three</div>");
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].text, "one");
  EXPECT_EQ(blocks[2].text, "three");
}

TEST(MarkupRemoverTest, AnchorWordsCounted) {
  MarkupRemover remover;
  auto blocks =
      remover.ExtractBlocks("<p>five plain words here now <a>two linked</a></p>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].num_words, 7u);
  EXPECT_EQ(blocks[0].num_anchor_words, 2u);
  EXPECT_NEAR(blocks[0].LinkDensity(), 2.0 / 7.0, 1e-9);
}

TEST(MarkupRemoverTest, EnclosingTagTracked) {
  MarkupRemover remover;
  auto blocks = remover.ExtractBlocks("<ul><li>item text</li></ul><p>para</p>");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].enclosing_tag, "li");
  EXPECT_EQ(blocks[1].enclosing_tag, "p");
}

TEST(MarkupRemoverTest, TitleFlag) {
  MarkupRemover remover;
  auto blocks =
      remover.ExtractBlocks("<title>Site Name</title><p>content text</p>");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_TRUE(blocks[0].in_title);
  EXPECT_FALSE(blocks[1].in_title);
}

TEST(MarkupRemoverTest, ExtractLinks) {
  MarkupRemover remover;
  auto links = remover.ExtractLinks(
      "<a href=\"http://a/\">x</a><a href='/rel.html'>y</a><a>none</a>");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "http://a/");
  EXPECT_EQ(links[1], "/rel.html");
}

TEST(MarkupRemoverTest, EntitiesDecodedInBlocks) {
  MarkupRemover remover;
  auto blocks = remover.ExtractBlocks("<p>AT&amp;T &lt;works&gt;</p>");
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].text, "AT&T <works>");
}

// ------------------------------------------------------------ Boilerplate

std::string PageWithNavAndContent() {
  return "<html><head><title>Portal</title></head><body>"
         "<div><ul>"
         "<li><a href='/'>Home</a></li>"
         "<li><a href='/about'>About</a></li>"
         "<li><a href='/contact'>Contact</a></li>"
         "</ul></div>"
         "<div><p>This is the long main article text of the page and it "
         "talks about the treatment of a disease in many patients over "
         "several years of study.</p>"
         "<p>A second long paragraph continues the article with details "
         "about genes and drugs and the outcomes that were observed in the "
         "clinical trial of the new therapy.</p></div>"
         "<div><p><a href='http://ads/'>Cheap deals click here</a></p></div>"
         "</body></html>";
}

TEST(BoilerplateTest, KeepsContentDropsNav) {
  BoilerplateDetector detector;
  std::string net = detector.NetText(PageWithNavAndContent());
  EXPECT_NE(net.find("main article text"), std::string::npos);
  EXPECT_EQ(net.find("Home"), std::string::npos);
  EXPECT_EQ(net.find("Cheap deals"), std::string::npos);
}

TEST(BoilerplateTest, TitleIsNotContent) {
  BoilerplateDetector detector;
  std::string net = detector.NetText(PageWithNavAndContent());
  EXPECT_EQ(net.find("Portal"), std::string::npos);
}

TEST(BoilerplateTest, ShortBlockBetweenContentAbsorbed) {
  BoilerplateDetector detector;
  std::string html =
      "<p>This first paragraph is long enough to count as real page content "
      "for the block classifier to accept it.</p>"
      "<p>Short heading here</p>"
      "<p>This third paragraph is also long enough to count as real page "
      "content for the block classifier to accept it again.</p>";
  auto decisions = detector.Classify(html);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_TRUE(decisions[1].is_content);
}

TEST(BoilerplateTest, ListContentLostByDefault) {
  // The Sect. 4.1 recall loss: facts inside <li> are dropped by default.
  std::string html =
      "<ul><li>This list item holds a long factual statement about the drug "
      "dosage and its measured effect on the disease outcome.</li></ul>";
  BoilerplateDetector default_detector;
  EXPECT_EQ(default_detector.NetText(html), "");

  BoilerplateOptions fixed;
  fixed.drop_table_and_list_blocks = false;
  BoilerplateDetector fixed_detector(fixed);
  EXPECT_NE(fixed_detector.NetText(html).find("dosage"), std::string::npos);
}

TEST(BoilerplateTest, HighLinkDensityRejected) {
  std::string html =
      "<p><a href='/a'>one</a> <a href='/b'>two</a> <a href='/c'>three</a> "
      "<a href='/d'>four</a> <a href='/e'>five</a> <a href='/f'>six</a> "
      "<a href='/g'>seven</a> <a href='/h'>eight</a> <a href='/i'>nine</a> "
      "<a href='/j'>ten</a> <a href='/k'>eleven</a></p>";
  BoilerplateDetector detector;
  EXPECT_EQ(detector.NetText(html), "");
}

TEST(BoilerplateTest, EmptyDocument) {
  BoilerplateDetector detector;
  EXPECT_EQ(detector.NetText(""), "");
  EXPECT_TRUE(detector.Classify("").empty());
}

}  // namespace
}  // namespace wsie::html
