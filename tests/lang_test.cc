#include <gtest/gtest.h>

#include "lang/language_id.h"
#include "lang/mime.h"

namespace wsie::lang {
namespace {

// --------------------------------------------------------- LanguageId

TEST(LanguageIdTest, IdentifiesEnglish) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Identify("the results of the study show that the treatment "
                        "of the patients with this disease was effective")
                .language,
            "en");
}

TEST(LanguageIdTest, IdentifiesGerman) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Identify("die ergebnisse der studie zeigen dass die behandlung "
                        "der patienten mit dieser krankheit wirksam war und "
                        "dass weitere forschung notwendig ist")
                .language,
            "de");
}

TEST(LanguageIdTest, IdentifiesFrench) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Identify("les resultats de cette etude montrent que le "
                        "traitement des patients avec cette maladie etait "
                        "efficace et que d autres recherches sont necessaires")
                .language,
            "fr");
}

TEST(LanguageIdTest, IdentifiesSpanish) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Identify("los resultados del estudio muestran que el "
                        "tratamiento de los pacientes con esta enfermedad fue "
                        "eficaz y que se necesita mas investigacion")
                .language,
            "es");
}

TEST(LanguageIdTest, TooShortIsUnknown) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Identify("hi").language, "xx");
  EXPECT_EQ(id.Identify("").language, "xx");
  EXPECT_EQ(id.Identify("123 456 789 !!!").language, "xx");
}

TEST(LanguageIdTest, IsEnglishHelper) {
  LanguageIdentifier id;
  EXPECT_TRUE(id.IsEnglish(
      "the patient was treated with the drug and the results were good for "
      "most of the people in the study"));
  EXPECT_FALSE(id.IsEnglish(
      "der patient wurde mit dem medikament behandelt und die ergebnisse "
      "waren gut fuer die meisten menschen in der studie"));
}

TEST(LanguageIdTest, HasFourBuiltinProfiles) {
  LanguageIdentifier id;
  EXPECT_EQ(id.Languages().size(), 4u);
}

TEST(LanguageIdTest, TrainProfileReplacesExisting) {
  LanguageIdentifier id;
  id.TrainProfile("en", "completely different english training text with the "
                        "usual function words like the and of and with");
  EXPECT_EQ(id.Languages().size(), 4u);  // replaced, not added
}

// --------------------------------------------------------------- MIME

TEST(MimeTest, DetectsPdfMagic) {
  MimeDetector detector;
  auto d = detector.Detect("http://x.org/paper", "%PDF-1.4 binarystuff");
  EXPECT_EQ(d.mime, MimeClass::kPdf);
  EXPECT_TRUE(d.from_magic);
}

TEST(MimeTest, DetectsPngAndJpeg) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/y", "\x89PNG\r\n").mime,
            MimeClass::kImage);
  EXPECT_EQ(detector.Detect("http://x/y", "\xff\xd8\xff\xe0").mime,
            MimeClass::kImage);
}

TEST(MimeTest, DetectsHtmlByContent) {
  MimeDetector detector;
  auto d = detector.Detect("http://x/unknown.bin",
                           "<!DOCTYPE html>\n<html><head>");
  EXPECT_EQ(d.mime, MimeClass::kHtml);
  EXPECT_TRUE(d.from_magic);
}

TEST(MimeTest, DetectsHtmlCaseInsensitive) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/y", "<HTML><BODY>").mime,
            MimeClass::kHtml);
}

TEST(MimeTest, DetectsXmlDeclaration) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/y", "<?xml version=\"1.0\"?>").mime,
            MimeClass::kXml);
}

TEST(MimeTest, FallsBackToExtension) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/a.pdf", "no magic here").mime,
            MimeClass::kPdf);
  auto d = detector.Detect("http://x/a.png", "plain words");
  EXPECT_EQ(d.mime, MimeClass::kImage);
  EXPECT_FALSE(d.from_magic);
}

TEST(MimeTest, QueryStringStripped) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/a.pdf?session=1", "words").mime,
            MimeClass::kPdf);
}

TEST(MimeTest, MisleadingExtensionMagicWins) {
  // A PDF served as .html is caught by magic sniffing (the Sect. 5 pitfall
  // occurs only when neither signal fires).
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/a.html", "%PDF-1.5 ...").mime,
            MimeClass::kPdf);
}

TEST(MimeTest, BinaryHeuristicOnUnknown) {
  MimeDetector detector;
  std::string binary("abc");
  binary.push_back('\0');
  binary += "more";
  EXPECT_EQ(detector.Detect("http://x/blob", binary).mime,
            MimeClass::kBinaryOther);
}

TEST(MimeTest, PlainTextDefault) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/readme", "just some words").mime,
            MimeClass::kPlainText);
}

TEST(MimeTest, EmptyBodyUnknown) {
  MimeDetector detector;
  EXPECT_EQ(detector.Detect("http://x/", "").mime, MimeClass::kUnknown);
}

TEST(MimeTest, IsTextualClassification) {
  EXPECT_TRUE(MimeDetector::IsTextual(MimeClass::kHtml));
  EXPECT_TRUE(MimeDetector::IsTextual(MimeClass::kPlainText));
  EXPECT_TRUE(MimeDetector::IsTextual(MimeClass::kXml));
  EXPECT_FALSE(MimeDetector::IsTextual(MimeClass::kPdf));
  EXPECT_FALSE(MimeDetector::IsTextual(MimeClass::kImage));
  EXPECT_FALSE(MimeDetector::IsTextual(MimeClass::kArchive));
}

TEST(MimeTest, AllClassesHaveNames) {
  EXPECT_STREQ(MimeClassName(MimeClass::kHtml), "text/html");
  EXPECT_STREQ(MimeClassName(MimeClass::kPdf), "application/pdf");
  EXPECT_STREQ(MimeClassName(MimeClass::kUnknown), "unknown");
}

}  // namespace
}  // namespace wsie::lang
