#include <atomic>
#include <span>

#include <gtest/gtest.h>

#include "dataflow/executor.h"
#include "dataflow/fault_injection.h"
#include "dataflow/meteor.h"
#include "dataflow/operators_base.h"
#include "dataflow/optimizer.h"
#include "dataflow/plan.h"
#include "dataflow/value.h"

namespace wsie::dataflow {
namespace {

// ------------------------------------------------------------ Value

TEST(ValueTest, ScalarTypes) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.14).is_double());
  EXPECT_TRUE(Value("str").is_string());
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_EQ(Value("x").AsString(), "x");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_EQ(Value(3.7).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);
  EXPECT_EQ(Value("x").AsInt(-1), -1);
}

TEST(ValueTest, ObjectFields) {
  Value v;
  v.SetField("id", 7);
  v.SetField("name", "doc");
  EXPECT_TRUE(v.HasField("id"));
  EXPECT_FALSE(v.HasField("missing"));
  EXPECT_EQ(v.Field("id").AsInt(), 7);
  EXPECT_TRUE(v.Field("missing").is_null());
}

TEST(ValueTest, Arrays) {
  Value v(Value::Array{Value(1), Value(2)});
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.AsArray().size(), 2u);
  v.MutableArray().push_back(Value(3));
  EXPECT_EQ(v.AsArray().size(), 3u);
}

TEST(ValueTest, ByteSizeGrowsWithContent) {
  Value small;
  small.SetField("text", "x");
  Value big;
  big.SetField("text", std::string(1000, 'x'));
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 900);
}

TEST(ValueTest, ToJson) {
  Value v;
  v.SetField("id", 1);
  v.SetField("tags", Value(Value::Array{Value("a"), Value("b")}));
  EXPECT_EQ(v.ToJson(), "{\"id\":1,\"tags\":[\"a\",\"b\"]}");
  Value escaped("say \"hi\"");
  EXPECT_EQ(escaped.ToJson(), "\"say \\\"hi\\\"\"");
}

// ------------------------------------------------------------ Plan

TEST(PlanTest, BuildsDag) {
  Plan plan;
  int src = plan.AddSource("in");
  auto op = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int node = plan.AddNode(op, {src});
  plan.MarkSink(node, "out");
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.num_operators(), 1u);
  EXPECT_TRUE(plan.nodes()[0].is_source());
  EXPECT_EQ(plan.nodes()[1].sink_name, "out");
}

TEST(PlanTest, ConsumersComputed) {
  Plan plan;
  int src = plan.AddSource("in");
  auto op = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int a = plan.AddNode(op, {src});
  int b = plan.AddNode(op, {src});
  plan.AddNode(op, {a, b});
  auto consumers = plan.Consumers();
  EXPECT_EQ(consumers[static_cast<size_t>(src)].size(), 2u);
  EXPECT_EQ(consumers[static_cast<size_t>(a)].size(), 1u);
}

// ------------------------------------------------------------ Base ops

Dataset MakeNumbers(int n) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    Record r;
    r.SetField("x", i);
    data.push_back(std::move(r));
  }
  return data;
}

TEST(BaseOperatorTest, Filter) {
  FilterOperator op("even", [](const Record& r) {
    return r.Field("x").AsInt() % 2 == 0;
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(10), &out).ok());
  EXPECT_EQ(out.size(), 5u);
}

TEST(BaseOperatorTest, Map) {
  MapOperator op("double", [](const Record& r) {
    Record copy = r;
    copy.SetField("x", r.Field("x").AsInt() * 2);
    return copy;
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(3), &out).ok());
  EXPECT_EQ(out[2].Field("x").AsInt(), 4);
}

TEST(BaseOperatorTest, FlatMap) {
  FlatMapOperator op("dup", [](const Record& r, Dataset* out) {
    out->push_back(r);
    out->push_back(r);
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(3), &out).ok());
  EXPECT_EQ(out.size(), 6u);
}

TEST(BaseOperatorTest, Projection) {
  ProjectionOperator op("proj", {"x"});
  Dataset in = MakeNumbers(1);
  in[0].SetField("extra", "drop me");
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(in, &out).ok());
  EXPECT_TRUE(out[0].HasField("x"));
  EXPECT_FALSE(out[0].HasField("extra"));
}

// ------------------------------------------------------------ Optimizer

OperatorPtr CheapFilter() {
  OperatorTraits t;
  t.reads = {"x"};
  t.selectivity = 0.1;
  t.cost_per_record = 0.5;
  return std::make_shared<FilterOperator>(
      "cheap_filter",
      [](const Record& r) { return r.Field("x").AsInt() % 10 == 0; }, t);
}

OperatorPtr ExpensiveMap() {
  OperatorTraits t;
  t.reads = {"x"};
  t.writes = {"y"};
  t.cost_per_record = 100.0;
  return std::make_shared<MapOperator>(
      "expensive_map",
      [](const Record& r) {
        Record copy = r;
        copy.SetField("y", r.Field("x").AsInt() + 1);
        return copy;
      },
      t);
}

TEST(OptimizerTest, CommutesChecksFieldSets) {
  OperatorTraits a, b;
  a.reads = {"x"};
  b.reads = {"x"};
  EXPECT_TRUE(Optimizer::Commutes(a, b));
  b.writes = {"x"};  // b writes what a reads
  EXPECT_FALSE(Optimizer::Commutes(a, b));
  b.writes = {"y"};
  EXPECT_TRUE(Optimizer::Commutes(a, b));
  a.writes = {"y"};  // both write y
  EXPECT_FALSE(Optimizer::Commutes(a, b));
}

TEST(OptimizerTest, NonRecordAtATimeNeverCommutes) {
  OperatorTraits a, b;
  b.record_at_a_time = false;
  EXPECT_FALSE(Optimizer::Commutes(a, b));
}

TEST(OptimizerTest, MovesSelectiveFilterEarlier) {
  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(CheapFilter(), {map});
  plan.MarkSink(filter, "out");

  Optimizer optimizer;
  auto report = optimizer.Optimize(&plan);
  ASSERT_EQ(report.steps.size(), 1u);
  EXPECT_EQ(report.steps[0].moved_earlier, "cheap_filter");
  EXPECT_LT(report.estimated_cost_after, report.estimated_cost_before);
  // Operator order in the chain is now filter -> map.
  EXPECT_EQ(plan.nodes()[1].op->name(), "cheap_filter");
  EXPECT_EQ(plan.nodes()[2].op->name(), "expensive_map");
}

TEST(OptimizerTest, RespectsDataDependencies) {
  // Filter reads the field the map writes: no reorder allowed.
  OperatorTraits ft;
  ft.reads = {"y"};
  ft.selectivity = 0.1;
  ft.cost_per_record = 0.5;
  auto dependent_filter = std::make_shared<FilterOperator>(
      "dep_filter", [](const Record& r) { return r.HasField("y"); }, ft);

  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(dependent_filter, {map});
  plan.MarkSink(filter, "out");

  Optimizer optimizer;
  auto report = optimizer.Optimize(&plan);
  EXPECT_TRUE(report.steps.empty());
  EXPECT_EQ(plan.nodes()[1].op->name(), "expensive_map");
}

TEST(OptimizerTest, OptimizedPlanProducesSameResult) {
  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(CheapFilter(), {map});
  plan.MarkSink(filter, "out");

  Executor executor({/*dop=*/2, 0, 8});
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(100)}};
  auto before = executor.Run(plan, sources);
  ASSERT_TRUE(before.ok());

  Optimizer optimizer;
  optimizer.Optimize(&plan);
  auto after = executor.Run(plan, sources);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->sink_outputs.at("out").size(),
            after->sink_outputs.at("out").size());
}

TEST(OptimizerTest, ChainCostEstimate) {
  OperatorTraits cheap_selective;
  cheap_selective.selectivity = 0.1;
  cheap_selective.cost_per_record = 1.0;
  OperatorTraits expensive;
  expensive.cost_per_record = 10.0;
  double filter_first =
      Optimizer::EstimateChainCost({cheap_selective, expensive}, 100);
  double map_first =
      Optimizer::EstimateChainCost({expensive, cheap_selective}, 100);
  EXPECT_LT(filter_first, map_first);
}

// ------------------------------------------------------------ Executor

TEST(ExecutorTest, RunsLinearPlan) {
  Plan plan;
  int src = plan.AddSource("in");
  int node = plan.AddNode(ExpensiveMap(), {src});
  plan.MarkSink(node, "out");
  Executor executor({/*dop=*/4, 0, 4});
  auto result = executor.Run(plan, {{"in", MakeNumbers(100)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 100u);
  ASSERT_EQ(result->operator_stats.size(), 1u);
  EXPECT_EQ(result->operator_stats[0].records_in, 100u);
  EXPECT_EQ(result->operator_stats[0].records_out, 100u);
  EXPECT_GT(result->operator_stats[0].bytes_out, 0u);
}

TEST(ExecutorTest, UnionOfInputs) {
  Plan plan;
  int a = plan.AddSource("a");
  int b = plan.AddSource("b");
  auto id = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int node = plan.AddNode(id, {a, b});
  plan.MarkSink(node, "out");
  Executor executor;
  auto result =
      executor.Run(plan, {{"a", MakeNumbers(10)}, {"b", MakeNumbers(5)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 15u);
}

TEST(ExecutorTest, DiamondTopology) {
  // One source feeding two branches that re-join: the Fig. 2 shape.
  Plan plan;
  int src = plan.AddSource("in");
  auto inc = [](const char* field) {
    return std::make_shared<MapOperator>(field, [field](const Record& r) {
      Record copy = r;
      copy.SetField(field, 1);
      return copy;
    });
  };
  int left = plan.AddNode(inc("left"), {src});
  int right = plan.AddNode(inc("right"), {src});
  auto join = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int tail = plan.AddNode(join, {left, right});
  plan.MarkSink(tail, "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(10)}});
  ASSERT_TRUE(result.ok());
  const Dataset& out = result->sink_outputs.at("out");
  EXPECT_EQ(out.size(), 20u);  // one record per branch
  size_t left_count = 0, right_count = 0;
  for (const Record& r : out) {
    if (r.HasField("left")) ++left_count;
    if (r.HasField("right")) ++right_count;
  }
  EXPECT_EQ(left_count, 10u);
  EXPECT_EQ(right_count, 10u);
}

TEST(ExecutorTest, MissingSourceIsError) {
  Plan plan;
  plan.AddSource("in");
  Executor executor;
  auto result = executor.Run(plan, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, OperatorErrorPropagates) {
  class FailingOp : public Operator {
   public:
    std::string name() const override { return "fail"; }
    Status ProcessBatch(const Dataset&, Dataset*) const override {
      return Status::Aborted("tool crashed on pathological input");
    }
  };
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<FailingOp>(), {src}), "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(10)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

class HungryOp : public Operator {
 public:
  explicit HungryOp(size_t bytes) : bytes_(bytes) {}
  std::string name() const override { return "hungry"; }
  size_t MemoryBytesPerWorker() const override { return bytes_; }
  Status ProcessBatch(const Dataset& in, Dataset* out) const override {
    out->insert(out->end(), in.begin(), in.end());
    return Status::OK();
  }

 private:
  size_t bytes_;
};

TEST(ExecutorTest, MemoryAdmissionSingleOperator) {
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<HungryOp>(30ull << 30), {src}),
                "out");
  ExecutorConfig config;
  config.memory_per_worker_budget = 24ull << 30;  // the paper's 24 GB nodes
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(1)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutorTest, MemoryAdmissionFlowSum) {
  // Each operator fits alone, but the co-resident flow does not (the
  // Sect. 4.2 war story).
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(std::make_shared<HungryOp>(15ull << 30), {src});
  int b = plan.AddNode(std::make_shared<HungryOp>(15ull << 30), {a});
  plan.MarkSink(b, "out");
  ExecutorConfig config;
  config.memory_per_worker_budget = 24ull << 30;
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(1)}});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("split the flow"),
            std::string::npos);
}

TEST(ExecutorTest, MemoryCheckDisabledByDefault) {
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<HungryOp>(60ull << 30), {src}),
                "out");
  Executor executor;  // budget 0 = unchecked
  EXPECT_TRUE(executor.Run(plan, {{"in", MakeNumbers(1)}}).ok());
}

TEST(ExecutorTest, StartupCostTimedSeparately) {
  class SlowOpenOp : public Operator {
   public:
    std::string name() const override { return "slow_open"; }
    Status Open() override {
      volatile double x = 0;
      for (int i = 0; i < 2000000; ++i) x = x + i;
      (void)x;
      return Status::OK();
    }
    Status ProcessBatch(const Dataset& in, Dataset* out) const override {
      out->insert(out->end(), in.begin(), in.end());
      return Status::OK();
    }
  };
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<SlowOpenOp>(), {src}), "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(4)}});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->operator_stats[0].open_seconds, 0.0);
}

// ------------------------------------------------------------ Fusion groups

OperatorPtr IdOp(const char* name) {
  return std::make_shared<MapOperator>(name,
                                       [](const Record& r) { return r; });
}

OperatorPtr BreakerOp(const char* name) {
  OperatorTraits t;
  t.record_at_a_time = false;
  return std::make_shared<MapOperator>(
      name, [](const Record& r) { return r; }, t);
}

TEST(OptimizerTest, ComputeFusionGroupsFusesRecordChains) {
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(IdOp("a"), {src});
  int b = plan.AddNode(IdOp("b"), {a});
  int c = plan.AddNode(IdOp("c"), {b});
  plan.MarkSink(c, "out");
  auto groups = Optimizer::ComputeFusionGroups(plan);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].fused());
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{a, b, c}));

  // The unfused toggle: every operator is its own stage.
  auto unfused = Optimizer::ComputeFusionGroups(plan, false);
  ASSERT_EQ(unfused.size(), 3u);
  for (const auto& g : unfused) EXPECT_FALSE(g.fused());
}

TEST(OptimizerTest, FusionStopsAtPipelineBreakers) {
  // a -> breaker -> c: the non-record-at-a-time operator splits the chain.
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(IdOp("a"), {src});
  int brk = plan.AddNode(BreakerOp("agg"), {a});
  int c = plan.AddNode(IdOp("c"), {brk});
  plan.MarkSink(c, "out");
  auto groups = Optimizer::ComputeFusionGroups(plan);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{a}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{brk}));
  EXPECT_EQ(groups[2].nodes, (std::vector<int>{c}));
}

TEST(OptimizerTest, FusionStopsAtFanOutAndUnion) {
  // Diamond: the fan-out point and the multi-input join both break stages.
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(IdOp("a"), {src});
  int left = plan.AddNode(IdOp("l"), {a});
  int right = plan.AddNode(IdOp("r"), {a});
  int join = plan.AddNode(IdOp("j"), {left, right});
  plan.MarkSink(join, "out");
  auto groups = Optimizer::ComputeFusionGroups(plan);
  ASSERT_EQ(groups.size(), 4u);
  for (const auto& g : groups) EXPECT_EQ(g.nodes.size(), 1u);
}

TEST(OptimizerTest, FusionStopsAtInteriorSink) {
  // A sink must materialize, so the chain breaks after it even though the
  // consumer is record-at-a-time.
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(IdOp("a"), {src});
  int b = plan.AddNode(IdOp("b"), {a});
  plan.MarkSink(a, "intermediate");
  plan.MarkSink(b, "out");
  auto groups = Optimizer::ComputeFusionGroups(plan);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{a}));
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{b}));
}

// ------------------------------------------------- Morsel engine semantics

Plan MakeChainPlan() {
  // dup -> keep x%3!=0 -> square: exercises flat-map fan-out, filtering,
  // and rewriting inside one fused stage.
  Plan plan;
  int src = plan.AddSource("in");
  int dup = plan.AddNode(std::make_shared<FlatMapOperator>(
                             "dup",
                             [](const Record& r, Dataset* out) {
                               out->push_back(r);
                               Record copy = r;
                               copy.SetField("dup", true);
                               out->push_back(std::move(copy));
                             }),
                         {src});
  int keep = plan.AddNode(std::make_shared<FilterOperator>(
                              "keep",
                              [](const Record& r) {
                                return r.Field("x").AsInt() % 3 != 0;
                              }),
                          {dup});
  int square = plan.AddNode(std::make_shared<MapOperator>(
                                "square",
                                [](const Record& r) {
                                  Record copy = r;
                                  int64_t x = r.Field("x").AsInt();
                                  copy.SetField("sq", x * x);
                                  return copy;
                                }),
                            {keep});
  plan.MarkSink(square, "out");
  return plan;
}

std::string SinkJson(const ExecutorConfig& config, const Plan& plan,
                     const std::map<std::string, Dataset>& sources,
                     const char* sink = "out") {
  Executor executor(config);
  auto result = executor.Run(plan, sources);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return "";
  std::string json;
  for (const Record& r : result->sink_outputs.at(sink)) {
    json += r.ToJson();
    json += '\n';
  }
  return json;
}

TEST(ExecutorTest, DeterministicAcrossDopAndFusion) {
  Plan plan = MakeChainPlan();
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(100)}};

  ExecutorConfig base;
  base.dop = 1;
  base.min_partition_records = 1;
  base.morsel_records = 4;
  std::string reference = SinkJson(base, plan, sources);
  ASSERT_FALSE(reference.empty());

  for (size_t dop : {1ul, 8ul}) {
    for (bool fused : {true, false}) {
      for (size_t morsel : {1ul, 4ul, 64ul}) {
        ExecutorConfig config;
        config.dop = dop;
        config.min_partition_records = 1;
        config.fuse_pipelines = fused;
        config.morsel_records = morsel;
        EXPECT_EQ(SinkJson(config, plan, sources), reference)
            << "dop=" << dop << " fused=" << fused << " morsel=" << morsel;
      }
    }
  }
}

TEST(ExecutorTest, LegacySeedPathMatchesMorselEngine) {
  Plan plan = MakeChainPlan();
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(60)}};
  ExecutorConfig legacy;
  legacy.dop = 1;
  legacy.legacy_seed_path = true;
  ExecutorConfig morsel;
  morsel.dop = 8;
  morsel.min_partition_records = 1;
  morsel.morsel_records = 4;
  EXPECT_EQ(SinkJson(legacy, plan, sources), SinkJson(morsel, plan, sources));
}

TEST(ExecutorTest, FusedStageStatsReported) {
  Plan plan = MakeChainPlan();
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(100)}};

  ExecutorConfig fused;
  fused.dop = 2;
  fused.min_partition_records = 1;
  fused.morsel_records = 8;
  Executor executor(fused);
  auto result = executor.Run(plan, sources);
  ASSERT_TRUE(result.ok());
  // One fused stage covering all three operators.
  ASSERT_EQ(result->stage_stats.size(), 1u);
  const StageRunStats& stage = result->stage_stats[0];
  EXPECT_TRUE(stage.fused);
  EXPECT_EQ(stage.operators, 3u);
  EXPECT_EQ(stage.name, "dup+keep+square");
  EXPECT_EQ(stage.morsels, 13u);  // ceil(100 / 8)
  EXPECT_EQ(stage.records_in, 100u);
  EXPECT_GT(stage.records_out, 0u);
  // Interior outputs streamed, only the tail materialized.
  EXPECT_GT(stage.bytes_not_materialized, 0u);
  EXPECT_GT(stage.bytes_materialized, 0u);
  EXPECT_EQ(result->total_bytes_streamed, stage.bytes_not_materialized);
  EXPECT_EQ(result->total_bytes_materialized, stage.bytes_materialized);
  // The per-operator contract still holds.
  ASSERT_EQ(result->operator_stats.size(), 3u);
  EXPECT_EQ(result->operator_stats[0].records_in, 100u);
  EXPECT_EQ(result->operator_stats[0].records_out, 200u);
  EXPECT_EQ(result->operator_stats[0].morsels, 13u);
  EXPECT_GT(result->operator_stats[2].bytes_out, 0u);

  ExecutorConfig unfused = fused;
  unfused.fuse_pipelines = false;
  Executor unfused_executor(unfused);
  auto unfused_result = unfused_executor.Run(plan, sources);
  ASSERT_TRUE(unfused_result.ok());
  ASSERT_EQ(unfused_result->stage_stats.size(), 3u);
  for (const StageRunStats& s : unfused_result->stage_stats) {
    EXPECT_FALSE(s.fused);
    EXPECT_EQ(s.operators, 1u);
    EXPECT_EQ(s.bytes_not_materialized, 0u);
  }
  EXPECT_EQ(unfused_result->total_bytes_streamed, 0u);
  // Everything materializes without fusion.
  EXPECT_GT(unfused_result->total_bytes_materialized,
            result->total_bytes_materialized);
}

TEST(ExecutorTest, ErrorStopsRemainingMorsels) {
  class CountingFailOp : public Operator {
   public:
    std::string name() const override { return "counting_fail"; }
    Status ProcessSpan(std::span<const Record>, Dataset*) const override {
      calls.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("tool crashed on pathological input");
    }
    mutable std::atomic<uint64_t> calls{0};
  };
  auto op = std::make_shared<CountingFailOp>();
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(op, {src}), "out");

  ExecutorConfig config;
  config.dop = 2;
  config.min_partition_records = 1;
  config.morsel_records = 4;  // 400 records -> 100 morsels
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(400)}});
  ASSERT_FALSE(result.ok());
  // The first failing morsel's Status surfaces...
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // ...and unclaimed morsels are never scheduled: only morsels already in
  // flight when the failure hit can have run (bounded by the worker count,
  // not the 100 morsels of input).
  EXPECT_LE(op->calls.load(), 4u);
}

// ------------------------------------------------------------ Open cache

class CountingOpenOp : public Operator {
 public:
  std::string name() const override { return "counting_open"; }
  Status Open() override {
    opens.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  void Close() override { closes.fetch_add(1, std::memory_order_relaxed); }
  Status ProcessSpan(std::span<const Record> in,
                     Dataset* out) const override {
    out->insert(out->end(), in.begin(), in.end());
    return Status::OK();
  }
  std::atomic<int> opens{0};
  std::atomic<int> closes{0};
};

TEST(ExecutorTest, OpenRunsOnceAcrossRuns) {
  auto op = std::make_shared<CountingOpenOp>();
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(op, {src}), "out");
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(8)}};

  Executor executor;
  auto first = executor.Run(plan, sources);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(op->opens.load(), 1);
  EXPECT_EQ(first->open_cold, 1u);
  EXPECT_EQ(first->open_cached, 0u);
  EXPECT_FALSE(first->operator_stats[0].open_cached);

  auto second = executor.Run(plan, sources);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(op->opens.load(), 1);  // exactly once across two Run() calls
  EXPECT_EQ(second->open_cold, 0u);
  EXPECT_EQ(second->open_cached, 1u);
  EXPECT_TRUE(second->operator_stats[0].open_cached);

  // The cache is process-wide, not per-Executor.
  Executor another;
  auto third = another.Run(plan, sources);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(op->opens.load(), 1);

  // Clearing closes the cached operator and forces a cold re-open.
  Executor::ClearOpenCache();
  EXPECT_EQ(op->closes.load(), 1);
  auto fourth = executor.Run(plan, sources);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(op->opens.load(), 2);
  EXPECT_EQ(fourth->open_cold, 1u);
  Executor::ClearOpenCache();
}

TEST(ExecutorTest, OpenCacheDisabledOpensPerRun) {
  auto op = std::make_shared<CountingOpenOp>();
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(op, {src}), "out");
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(8)}};

  ExecutorConfig config;
  config.cache_opens = false;
  Executor executor(config);
  ASSERT_TRUE(executor.Run(plan, sources).ok());
  ASSERT_TRUE(executor.Run(plan, sources).ok());
  EXPECT_EQ(op->opens.load(), 2);  // seed behavior: open (and close) per run
  EXPECT_EQ(op->closes.load(), 2);
}

TEST(ExecutorTest, FailedOpenIsNotCached) {
  class FlakyOpenOp : public CountingOpenOp {
   public:
    Status Open() override {
      if (opens.fetch_add(1, std::memory_order_relaxed) == 0) {
        return Status::Aborted("transient start-up failure");
      }
      return Status::OK();
    }
  };
  auto op = std::make_shared<FlakyOpenOp>();
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(op, {src}), "out");
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(4)}};

  Executor executor;
  auto first = executor.Run(plan, sources);
  EXPECT_FALSE(first.ok());
  auto second = executor.Run(plan, sources);  // retried, not poisoned
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(op->opens.load(), 2);
  Executor::ClearOpenCache();
}

// ------------------------------------------------------ Shared thread pool

TEST(ExecutorTest, SharedThreadPoolAcrossExecutors) {
  auto pool = std::make_shared<ThreadPool>(4);
  Plan plan = MakeChainPlan();
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(50)}};

  ExecutorConfig config;
  config.dop = 4;
  config.min_partition_records = 1;
  config.pool = pool;
  Executor first(config);
  Executor second(config);
  auto a = first.Run(plan, sources);
  auto b = second.Run(plan, sources);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sink_outputs.at("out").size(), b->sink_outputs.at("out").size());
  EXPECT_EQ(pool->num_threads(), 4u);
}

// ------------------------------------------------ Task retry & fault ops

Plan MakeFaultyChainPlan(std::shared_ptr<FaultInjectingOperator>* fault_op,
                         const FaultInjectionOptions& options) {
  // Same shape as MakeChainPlan, but the middle of the chain injects faults.
  Plan plan;
  int src = plan.AddSource("in");
  int dup = plan.AddNode(std::make_shared<FlatMapOperator>(
                             "dup",
                             [](const Record& r, Dataset* out) {
                               out->push_back(r);
                               Record copy = r;
                               copy.SetField("dup", true);
                               out->push_back(std::move(copy));
                             }),
                         {src});
  auto faulty = std::make_shared<FaultInjectingOperator>(
      std::make_shared<FilterOperator>(
          "keep",
          [](const Record& r) { return r.Field("x").AsInt() % 3 != 0; }),
      options);
  if (fault_op != nullptr) *fault_op = faulty;
  int keep = plan.AddNode(faulty, {dup});
  int square = plan.AddNode(std::make_shared<MapOperator>(
                                "square",
                                [](const Record& r) {
                                  Record copy = r;
                                  int64_t x = r.Field("x").AsInt();
                                  copy.SetField("sq", x * x);
                                  return copy;
                                }),
                            {keep});
  plan.MarkSink(square, "out");
  return plan;
}

TEST(ExecutorTest, TaskRetryRecoversFromTransientFaults) {
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(200)}};

  // Reference output from the fault-free plan.
  ExecutorConfig base;
  base.dop = 1;
  base.min_partition_records = 1;
  base.morsel_records = 8;
  std::string reference = SinkJson(base, MakeChainPlan(), sources);
  ASSERT_FALSE(reference.empty());

  FaultInjectionOptions options;
  options.seed = 11;
  options.transient_prob = 0.10;
  std::shared_ptr<FaultInjectingOperator> fault_op;
  Plan plan = MakeFaultyChainPlan(&fault_op, options);

  for (size_t dop : {1ul, 4ul}) {
    for (bool fused : {true, false}) {
      ExecutorConfig config;
      config.dop = dop;
      config.min_partition_records = 1;
      config.morsel_records = 8;
      config.fuse_pipelines = fused;
      config.max_task_retries = 3;
      Executor executor(config);
      auto result = executor.Run(plan, sources);
      ASSERT_TRUE(result.ok())
          << "dop=" << dop << " fused=" << fused << ": "
          << result.status().ToString();
      std::string json;
      for (const Record& r : result->sink_outputs.at("out")) {
        json += r.ToJson();
        json += '\n';
      }
      EXPECT_EQ(json, reference)
          << "retried run must lose zero records (dop=" << dop
          << " fused=" << fused << ")";
      EXPECT_GT(result->task_retries, 0u)
          << "faults at 10% over 25 morsels should have triggered retries";
    }
  }
  EXPECT_GT(fault_op->transient_failures(), 0u);
  EXPECT_EQ(fault_op->permanent_failures(), 0u);
}

TEST(ExecutorTest, TransientFaultsFailWithoutRetryBudget) {
  FaultInjectionOptions options;
  options.seed = 11;
  options.transient_prob = 0.25;
  Plan plan = MakeFaultyChainPlan(nullptr, options);
  ExecutorConfig config;
  config.dop = 2;
  config.min_partition_records = 1;
  config.morsel_records = 8;
  config.max_task_retries = 0;  // seed behavior: first failure is fatal
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(200)}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(result.status().IsRetryable());
}

TEST(ExecutorTest, PermanentFaultsExhaustRetryBudget) {
  FaultInjectionOptions options;
  options.seed = 5;
  options.transient_prob = 0.0;
  options.permanent_prob = 0.2;
  std::shared_ptr<FaultInjectingOperator> fault_op;
  Plan plan = MakeFaultyChainPlan(&fault_op, options);
  ExecutorConfig config;
  config.dop = 2;
  config.min_partition_records = 1;
  config.morsel_records = 8;
  config.max_task_retries = 5;
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(200)}});
  ASSERT_FALSE(result.ok());
  // Permanent faults are not retryable, so the retry budget is never spent.
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(result.status().IsRetryable());
  EXPECT_GT(fault_op->permanent_failures(), 0u);
}

TEST(ExecutorTest, RetryPreservesOpenCache) {
  class CountingOpenFaultyOp : public CountingOpenOp {
   public:
    Status ProcessSpan(std::span<const Record> in,
                       Dataset* out) const override {
      if (!failed_once.exchange(true)) {
        return Status::Unavailable("transient");
      }
      return CountingOpenOp::ProcessSpan(in, out);
    }
    mutable std::atomic<bool> failed_once{false};
  };
  auto op = std::make_shared<CountingOpenFaultyOp>();
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(op, {src}), "out");

  ExecutorConfig config;
  config.dop = 1;
  config.min_partition_records = 1;
  config.max_task_retries = 2;
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(8)}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sink_outputs.at("out").size(), 8u);
  EXPECT_EQ(result->task_retries, 1u);
  EXPECT_EQ(op->opens.load(), 1) << "retry must not re-open the operator";
  Executor::ClearOpenCache();
}

TEST(FaultInjectionTest, OperatorForwardsInnerBehavior) {
  FaultInjectionOptions options;
  options.transient_prob = 0.0;
  options.permanent_prob = 0.0;
  FaultInjectingOperator op(
      std::make_shared<FilterOperator>(
          "even", [](const Record& r) { return r.Field("x").AsInt() % 2 == 0; }),
      options);
  EXPECT_EQ(op.name(), "even!fault");
  Dataset in = MakeNumbers(10);
  Dataset out;
  ASSERT_TRUE(op.ProcessSpan(std::span<const Record>(in), &out).ok());
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(op.transient_failures(), 0u);
  EXPECT_EQ(op.permanent_failures(), 0u);
}

TEST(FaultInjectionTest, TransientFaultClearsOnImmediateRetry) {
  FaultInjectionOptions options;
  options.seed = 3;
  options.transient_prob = 1.0;  // every morsel faults once
  FaultInjectingOperator op(
      std::make_shared<MapOperator>("id", [](const Record& r) { return r; }),
      options);
  Dataset in = MakeNumbers(4);
  Dataset out;
  Status first = op.ProcessSpan(std::span<const Record>(in), &out);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(out.empty()) << "a failing call must not emit partial output";
  // The same morsel retried on the same thread succeeds deterministically.
  ASSERT_TRUE(op.ProcessSpan(std::span<const Record>(in), &out).ok());
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(op.transient_failures(), 1u);
}

TEST(ExecutorTest, SinkOnSourcePassesThrough) {
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(src, "echo");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(5)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("echo").size(), 5u);
}

// ------------------------------------------------------------ Meteor

OperatorRegistry MakeTestRegistry() {
  OperatorRegistry registry;
  registry.Register("keep_even", [](const std::map<std::string, std::string>&)
                                     -> Result<OperatorPtr> {
    return OperatorPtr(
        std::make_shared<FilterOperator>("keep_even", [](const Record& r) {
          return r.Field("x").AsInt() % 2 == 0;
        }));
  });
  registry.Register(
      "add", [](const std::map<std::string, std::string>& args)
                 -> Result<OperatorPtr> {
        auto it = args.find("n");
        if (it == args.end()) return Status::InvalidArgument("missing n");
        int64_t n = std::strtoll(it->second.c_str(), nullptr, 10);
        return OperatorPtr(
            std::make_shared<MapOperator>("add", [n](const Record& r) {
              Record copy = r;
              copy.SetField("x", r.Field("x").AsInt() + n);
              return copy;
            }));
      });
  return registry;
}

TEST(MeteorTest, ParsesAndRunsScript) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse(R"(
    # a small test flow
    $in   = read 'numbers';
    $even = keep_even $in;
    $plus = add $even n '10';
    write $plus 'out';
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Executor executor;
  auto result = executor.Run(plan.value(), {{"numbers", MakeNumbers(10)}});
  ASSERT_TRUE(result.ok());
  const Dataset& out = result->sink_outputs.at("out");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Field("x").AsInt(), 10);
}

TEST(MeteorTest, UnionStatement) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse(
      "$a = read 'p'; $b = read 'q'; $u = union $a $b; write $u 'out';");
  ASSERT_TRUE(plan.ok());
  Executor executor;
  auto result = executor.Run(plan.value(),
                             {{"p", MakeNumbers(3)}, {"q", MakeNumbers(4)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 7u);
}

TEST(MeteorTest, ErrorUnknownOperator) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x'; $b = nosuchop $a;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("nosuchop"), std::string::npos);
}

TEST(MeteorTest, ErrorUndefinedVariable) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$b = keep_even $missing;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("missing"), std::string::npos);
}

TEST(MeteorTest, ErrorUnterminatedString) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  EXPECT_FALSE(parser.Parse("$a = read 'broken;").ok());
}

TEST(MeteorTest, ErrorCarriesLineNumber) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x';\n$b = nosuchop $a;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("line 2"), std::string::npos);
}

TEST(MeteorTest, MissingOperatorArgReported) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x'; $b = add $a; write $b 'o';");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("missing n"), std::string::npos);
}

TEST(MeteorTest, CommentsIgnored) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  EXPECT_TRUE(parser.Parse("# only a comment\n$a = read 'x';").ok());
}

}  // namespace
}  // namespace wsie::dataflow
