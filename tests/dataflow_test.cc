#include <gtest/gtest.h>

#include "dataflow/executor.h"
#include "dataflow/meteor.h"
#include "dataflow/operators_base.h"
#include "dataflow/optimizer.h"
#include "dataflow/plan.h"
#include "dataflow/value.h"

namespace wsie::dataflow {
namespace {

// ------------------------------------------------------------ Value

TEST(ValueTest, ScalarTypes) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.14).is_double());
  EXPECT_TRUE(Value("str").is_string());
  EXPECT_EQ(Value(42).AsInt(), 42);
  EXPECT_EQ(Value("x").AsString(), "x");
}

TEST(ValueTest, NumericCoercion) {
  EXPECT_EQ(Value(3.7).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(3).AsDouble(), 3.0);
  EXPECT_EQ(Value("x").AsInt(-1), -1);
}

TEST(ValueTest, ObjectFields) {
  Value v;
  v.SetField("id", 7);
  v.SetField("name", "doc");
  EXPECT_TRUE(v.HasField("id"));
  EXPECT_FALSE(v.HasField("missing"));
  EXPECT_EQ(v.Field("id").AsInt(), 7);
  EXPECT_TRUE(v.Field("missing").is_null());
}

TEST(ValueTest, Arrays) {
  Value v(Value::Array{Value(1), Value(2)});
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.AsArray().size(), 2u);
  v.MutableArray().push_back(Value(3));
  EXPECT_EQ(v.AsArray().size(), 3u);
}

TEST(ValueTest, ByteSizeGrowsWithContent) {
  Value small;
  small.SetField("text", "x");
  Value big;
  big.SetField("text", std::string(1000, 'x'));
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 900);
}

TEST(ValueTest, ToJson) {
  Value v;
  v.SetField("id", 1);
  v.SetField("tags", Value(Value::Array{Value("a"), Value("b")}));
  EXPECT_EQ(v.ToJson(), "{\"id\":1,\"tags\":[\"a\",\"b\"]}");
  Value escaped("say \"hi\"");
  EXPECT_EQ(escaped.ToJson(), "\"say \\\"hi\\\"\"");
}

// ------------------------------------------------------------ Plan

TEST(PlanTest, BuildsDag) {
  Plan plan;
  int src = plan.AddSource("in");
  auto op = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int node = plan.AddNode(op, {src});
  plan.MarkSink(node, "out");
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.num_operators(), 1u);
  EXPECT_TRUE(plan.nodes()[0].is_source());
  EXPECT_EQ(plan.nodes()[1].sink_name, "out");
}

TEST(PlanTest, ConsumersComputed) {
  Plan plan;
  int src = plan.AddSource("in");
  auto op = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int a = plan.AddNode(op, {src});
  int b = plan.AddNode(op, {src});
  plan.AddNode(op, {a, b});
  auto consumers = plan.Consumers();
  EXPECT_EQ(consumers[static_cast<size_t>(src)].size(), 2u);
  EXPECT_EQ(consumers[static_cast<size_t>(a)].size(), 1u);
}

// ------------------------------------------------------------ Base ops

Dataset MakeNumbers(int n) {
  Dataset data;
  for (int i = 0; i < n; ++i) {
    Record r;
    r.SetField("x", i);
    data.push_back(std::move(r));
  }
  return data;
}

TEST(BaseOperatorTest, Filter) {
  FilterOperator op("even", [](const Record& r) {
    return r.Field("x").AsInt() % 2 == 0;
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(10), &out).ok());
  EXPECT_EQ(out.size(), 5u);
}

TEST(BaseOperatorTest, Map) {
  MapOperator op("double", [](const Record& r) {
    Record copy = r;
    copy.SetField("x", r.Field("x").AsInt() * 2);
    return copy;
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(3), &out).ok());
  EXPECT_EQ(out[2].Field("x").AsInt(), 4);
}

TEST(BaseOperatorTest, FlatMap) {
  FlatMapOperator op("dup", [](const Record& r, Dataset* out) {
    out->push_back(r);
    out->push_back(r);
  });
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(MakeNumbers(3), &out).ok());
  EXPECT_EQ(out.size(), 6u);
}

TEST(BaseOperatorTest, Projection) {
  ProjectionOperator op("proj", {"x"});
  Dataset in = MakeNumbers(1);
  in[0].SetField("extra", "drop me");
  Dataset out;
  ASSERT_TRUE(op.ProcessBatch(in, &out).ok());
  EXPECT_TRUE(out[0].HasField("x"));
  EXPECT_FALSE(out[0].HasField("extra"));
}

// ------------------------------------------------------------ Optimizer

OperatorPtr CheapFilter() {
  OperatorTraits t;
  t.reads = {"x"};
  t.selectivity = 0.1;
  t.cost_per_record = 0.5;
  return std::make_shared<FilterOperator>(
      "cheap_filter",
      [](const Record& r) { return r.Field("x").AsInt() % 10 == 0; }, t);
}

OperatorPtr ExpensiveMap() {
  OperatorTraits t;
  t.reads = {"x"};
  t.writes = {"y"};
  t.cost_per_record = 100.0;
  return std::make_shared<MapOperator>(
      "expensive_map",
      [](const Record& r) {
        Record copy = r;
        copy.SetField("y", r.Field("x").AsInt() + 1);
        return copy;
      },
      t);
}

TEST(OptimizerTest, CommutesChecksFieldSets) {
  OperatorTraits a, b;
  a.reads = {"x"};
  b.reads = {"x"};
  EXPECT_TRUE(Optimizer::Commutes(a, b));
  b.writes = {"x"};  // b writes what a reads
  EXPECT_FALSE(Optimizer::Commutes(a, b));
  b.writes = {"y"};
  EXPECT_TRUE(Optimizer::Commutes(a, b));
  a.writes = {"y"};  // both write y
  EXPECT_FALSE(Optimizer::Commutes(a, b));
}

TEST(OptimizerTest, NonRecordAtATimeNeverCommutes) {
  OperatorTraits a, b;
  b.record_at_a_time = false;
  EXPECT_FALSE(Optimizer::Commutes(a, b));
}

TEST(OptimizerTest, MovesSelectiveFilterEarlier) {
  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(CheapFilter(), {map});
  plan.MarkSink(filter, "out");

  Optimizer optimizer;
  auto report = optimizer.Optimize(&plan);
  ASSERT_EQ(report.steps.size(), 1u);
  EXPECT_EQ(report.steps[0].moved_earlier, "cheap_filter");
  EXPECT_LT(report.estimated_cost_after, report.estimated_cost_before);
  // Operator order in the chain is now filter -> map.
  EXPECT_EQ(plan.nodes()[1].op->name(), "cheap_filter");
  EXPECT_EQ(plan.nodes()[2].op->name(), "expensive_map");
}

TEST(OptimizerTest, RespectsDataDependencies) {
  // Filter reads the field the map writes: no reorder allowed.
  OperatorTraits ft;
  ft.reads = {"y"};
  ft.selectivity = 0.1;
  ft.cost_per_record = 0.5;
  auto dependent_filter = std::make_shared<FilterOperator>(
      "dep_filter", [](const Record& r) { return r.HasField("y"); }, ft);

  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(dependent_filter, {map});
  plan.MarkSink(filter, "out");

  Optimizer optimizer;
  auto report = optimizer.Optimize(&plan);
  EXPECT_TRUE(report.steps.empty());
  EXPECT_EQ(plan.nodes()[1].op->name(), "expensive_map");
}

TEST(OptimizerTest, OptimizedPlanProducesSameResult) {
  Plan plan;
  int src = plan.AddSource("in");
  int map = plan.AddNode(ExpensiveMap(), {src});
  int filter = plan.AddNode(CheapFilter(), {map});
  plan.MarkSink(filter, "out");

  Executor executor({/*dop=*/2, 0, 8});
  std::map<std::string, Dataset> sources{{"in", MakeNumbers(100)}};
  auto before = executor.Run(plan, sources);
  ASSERT_TRUE(before.ok());

  Optimizer optimizer;
  optimizer.Optimize(&plan);
  auto after = executor.Run(plan, sources);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->sink_outputs.at("out").size(),
            after->sink_outputs.at("out").size());
}

TEST(OptimizerTest, ChainCostEstimate) {
  OperatorTraits cheap_selective;
  cheap_selective.selectivity = 0.1;
  cheap_selective.cost_per_record = 1.0;
  OperatorTraits expensive;
  expensive.cost_per_record = 10.0;
  double filter_first =
      Optimizer::EstimateChainCost({cheap_selective, expensive}, 100);
  double map_first =
      Optimizer::EstimateChainCost({expensive, cheap_selective}, 100);
  EXPECT_LT(filter_first, map_first);
}

// ------------------------------------------------------------ Executor

TEST(ExecutorTest, RunsLinearPlan) {
  Plan plan;
  int src = plan.AddSource("in");
  int node = plan.AddNode(ExpensiveMap(), {src});
  plan.MarkSink(node, "out");
  Executor executor({/*dop=*/4, 0, 4});
  auto result = executor.Run(plan, {{"in", MakeNumbers(100)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 100u);
  ASSERT_EQ(result->operator_stats.size(), 1u);
  EXPECT_EQ(result->operator_stats[0].records_in, 100u);
  EXPECT_EQ(result->operator_stats[0].records_out, 100u);
  EXPECT_GT(result->operator_stats[0].bytes_out, 0u);
}

TEST(ExecutorTest, UnionOfInputs) {
  Plan plan;
  int a = plan.AddSource("a");
  int b = plan.AddSource("b");
  auto id = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int node = plan.AddNode(id, {a, b});
  plan.MarkSink(node, "out");
  Executor executor;
  auto result =
      executor.Run(plan, {{"a", MakeNumbers(10)}, {"b", MakeNumbers(5)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 15u);
}

TEST(ExecutorTest, DiamondTopology) {
  // One source feeding two branches that re-join: the Fig. 2 shape.
  Plan plan;
  int src = plan.AddSource("in");
  auto inc = [](const char* field) {
    return std::make_shared<MapOperator>(field, [field](const Record& r) {
      Record copy = r;
      copy.SetField(field, 1);
      return copy;
    });
  };
  int left = plan.AddNode(inc("left"), {src});
  int right = plan.AddNode(inc("right"), {src});
  auto join = std::make_shared<MapOperator>("id", [](const Record& r) { return r; });
  int tail = plan.AddNode(join, {left, right});
  plan.MarkSink(tail, "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(10)}});
  ASSERT_TRUE(result.ok());
  const Dataset& out = result->sink_outputs.at("out");
  EXPECT_EQ(out.size(), 20u);  // one record per branch
  size_t left_count = 0, right_count = 0;
  for (const Record& r : out) {
    if (r.HasField("left")) ++left_count;
    if (r.HasField("right")) ++right_count;
  }
  EXPECT_EQ(left_count, 10u);
  EXPECT_EQ(right_count, 10u);
}

TEST(ExecutorTest, MissingSourceIsError) {
  Plan plan;
  plan.AddSource("in");
  Executor executor;
  auto result = executor.Run(plan, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, OperatorErrorPropagates) {
  class FailingOp : public Operator {
   public:
    std::string name() const override { return "fail"; }
    Status ProcessBatch(const Dataset&, Dataset*) const override {
      return Status::Aborted("tool crashed on pathological input");
    }
  };
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<FailingOp>(), {src}), "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(10)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
}

class HungryOp : public Operator {
 public:
  explicit HungryOp(size_t bytes) : bytes_(bytes) {}
  std::string name() const override { return "hungry"; }
  size_t MemoryBytesPerWorker() const override { return bytes_; }
  Status ProcessBatch(const Dataset& in, Dataset* out) const override {
    out->insert(out->end(), in.begin(), in.end());
    return Status::OK();
  }

 private:
  size_t bytes_;
};

TEST(ExecutorTest, MemoryAdmissionSingleOperator) {
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<HungryOp>(30ull << 30), {src}),
                "out");
  ExecutorConfig config;
  config.memory_per_worker_budget = 24ull << 30;  // the paper's 24 GB nodes
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(1)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutorTest, MemoryAdmissionFlowSum) {
  // Each operator fits alone, but the co-resident flow does not (the
  // Sect. 4.2 war story).
  Plan plan;
  int src = plan.AddSource("in");
  int a = plan.AddNode(std::make_shared<HungryOp>(15ull << 30), {src});
  int b = plan.AddNode(std::make_shared<HungryOp>(15ull << 30), {a});
  plan.MarkSink(b, "out");
  ExecutorConfig config;
  config.memory_per_worker_budget = 24ull << 30;
  Executor executor(config);
  auto result = executor.Run(plan, {{"in", MakeNumbers(1)}});
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("split the flow"),
            std::string::npos);
}

TEST(ExecutorTest, MemoryCheckDisabledByDefault) {
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<HungryOp>(60ull << 30), {src}),
                "out");
  Executor executor;  // budget 0 = unchecked
  EXPECT_TRUE(executor.Run(plan, {{"in", MakeNumbers(1)}}).ok());
}

TEST(ExecutorTest, StartupCostTimedSeparately) {
  class SlowOpenOp : public Operator {
   public:
    std::string name() const override { return "slow_open"; }
    Status Open() override {
      volatile double x = 0;
      for (int i = 0; i < 2000000; ++i) x = x + i;
      (void)x;
      return Status::OK();
    }
    Status ProcessBatch(const Dataset& in, Dataset* out) const override {
      out->insert(out->end(), in.begin(), in.end());
      return Status::OK();
    }
  };
  Plan plan;
  int src = plan.AddSource("in");
  plan.MarkSink(plan.AddNode(std::make_shared<SlowOpenOp>(), {src}), "out");
  Executor executor;
  auto result = executor.Run(plan, {{"in", MakeNumbers(4)}});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->operator_stats[0].open_seconds, 0.0);
}

// ------------------------------------------------------------ Meteor

OperatorRegistry MakeTestRegistry() {
  OperatorRegistry registry;
  registry.Register("keep_even", [](const std::map<std::string, std::string>&)
                                     -> Result<OperatorPtr> {
    return OperatorPtr(
        std::make_shared<FilterOperator>("keep_even", [](const Record& r) {
          return r.Field("x").AsInt() % 2 == 0;
        }));
  });
  registry.Register(
      "add", [](const std::map<std::string, std::string>& args)
                 -> Result<OperatorPtr> {
        auto it = args.find("n");
        if (it == args.end()) return Status::InvalidArgument("missing n");
        int64_t n = std::strtoll(it->second.c_str(), nullptr, 10);
        return OperatorPtr(
            std::make_shared<MapOperator>("add", [n](const Record& r) {
              Record copy = r;
              copy.SetField("x", r.Field("x").AsInt() + n);
              return copy;
            }));
      });
  return registry;
}

TEST(MeteorTest, ParsesAndRunsScript) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse(R"(
    # a small test flow
    $in   = read 'numbers';
    $even = keep_even $in;
    $plus = add $even n '10';
    write $plus 'out';
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Executor executor;
  auto result = executor.Run(plan.value(), {{"numbers", MakeNumbers(10)}});
  ASSERT_TRUE(result.ok());
  const Dataset& out = result->sink_outputs.at("out");
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Field("x").AsInt(), 10);
}

TEST(MeteorTest, UnionStatement) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse(
      "$a = read 'p'; $b = read 'q'; $u = union $a $b; write $u 'out';");
  ASSERT_TRUE(plan.ok());
  Executor executor;
  auto result = executor.Run(plan.value(),
                             {{"p", MakeNumbers(3)}, {"q", MakeNumbers(4)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 7u);
}

TEST(MeteorTest, ErrorUnknownOperator) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x'; $b = nosuchop $a;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("nosuchop"), std::string::npos);
}

TEST(MeteorTest, ErrorUndefinedVariable) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$b = keep_even $missing;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("missing"), std::string::npos);
}

TEST(MeteorTest, ErrorUnterminatedString) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  EXPECT_FALSE(parser.Parse("$a = read 'broken;").ok());
}

TEST(MeteorTest, ErrorCarriesLineNumber) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x';\n$b = nosuchop $a;");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("line 2"), std::string::npos);
}

TEST(MeteorTest, MissingOperatorArgReported) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  auto plan = parser.Parse("$a = read 'x'; $b = add $a; write $b 'o';");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("missing n"), std::string::npos);
}

TEST(MeteorTest, CommentsIgnored) {
  OperatorRegistry registry = MakeTestRegistry();
  MeteorParser parser(&registry);
  EXPECT_TRUE(parser.Parse("# only a comment\n$a = read 'x';").ok());
}

}  // namespace
}  // namespace wsie::dataflow
