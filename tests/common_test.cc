#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace wsie {
namespace {

// --------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad seed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad seed");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad seed");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Aborted("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, RetryableClassification) {
  // Transient failures a backoff-and-retry may cure...
  EXPECT_TRUE(Status::Timeout("fetch timed out").IsRetryable());
  EXPECT_TRUE(Status::Unavailable("503").IsRetryable());
  // ...versus permanent ones.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("bad").IsRetryable());
  EXPECT_FALSE(Status::NotFound("404").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("budget").IsRetryable());
  EXPECT_FALSE(Status::Internal("bug").IsRetryable());
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  WSIE_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kOutOfRange);
}

// --------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsHeldValue) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(9);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 1.1) < 10) ++low;
  }
  // Rank 0-9 of 1000 should receive far more than 1% of the mass.
  EXPECT_GT(low, n / 10);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(10);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.Zipf(37, 1.3), 37u);
  EXPECT_EQ(rng.Zipf(0, 1.1), 0u);
  EXPECT_EQ(rng.Zipf(1, 1.1), 0u);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(12);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(weights), weights.size());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(14);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --------------------------------------------------------------- strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(AsciiToLower("BrCa1"), "brca1");
  EXPECT_EQ(AsciiToUpper("BrCa1"), "BRCA1");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("page.html", ".html"));
  EXPECT_FALSE(EndsWith("html", "page.html"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("HTML", "html"));
  EXPECT_FALSE(EqualsIgnoreCase("HTML", "htm"));
}

TEST(StringUtilTest, CharacterClassPredicates) {
  EXPECT_TRUE(IsAllAlpha("abc"));
  EXPECT_FALSE(IsAllAlpha("ab1"));
  EXPECT_FALSE(IsAllAlpha(""));
  EXPECT_TRUE(IsAllUpper("TLA"));
  EXPECT_FALSE(IsAllUpper("TlA"));
  EXPECT_TRUE(ContainsDigit("GAD-67"));
  EXPECT_FALSE(ContainsDigit("GAD"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("x", "", "y"), "x");
}

TEST(StringUtilTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatWithCommas(4233523), "4,233,523");
  EXPECT_EQ(FormatWithCommas(-1000), "-1,000");
  EXPECT_EQ(FormatWithCommas(12), "12");
}

// --------------------------------------------------------------- pool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(LoggingTest, LevelNamesAndThreshold) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  LogLevel before = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  // Below-threshold messages are suppressed (no crash, no output check
  // needed — this exercises the emit path guard).
  WSIE_LOG(kInfo) << "suppressed " << 42;
  WSIE_LOG(kError) << "emitted";
  SetMinLogLevel(before);
}

int CountingOperand(int* evaluations) {
  ++*evaluations;
  return 7;
}

TEST(LoggingTest, SuppressedMessagesAreNeverFormatted) {
  LogLevel before = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  int evaluations = 0;
  // The macro's level gate must short-circuit the whole statement: stream
  // operands of a sub-threshold message are never evaluated (the hot-path
  // cost that motivated the gate).
  WSIE_LOG(kDebug) << "cost " << CountingOperand(&evaluations);
  WSIE_LOG(kInfo) << CountingOperand(&evaluations) << " things";
  EXPECT_EQ(evaluations, 0);
  WSIE_LOG(kError) << "counted " << CountingOperand(&evaluations);
  EXPECT_EQ(evaluations, 1);
  SetMinLogLevel(before);
}

TEST(LoggingTest, MacroComposesWithIfElse) {
  // The gated macro must still parse as a single statement inside an
  // unbraced if/else.
  LogLevel before = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  bool flag = true;
  if (flag)
    WSIE_LOG(kDebug) << "then-branch";
  else
    WSIE_LOG(kDebug) << "else-branch";
  SetMinLogLevel(before);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace wsie
