#include <gtest/gtest.h>

#include <set>

#include "corpus/document.h"
#include "corpus/lexicon.h"
#include "corpus/profile.h"
#include "corpus/text_generator.h"
#include "text/sentence_splitter.h"

namespace wsie::corpus {
namespace {

// ------------------------------------------------------------ Lexicons

TEST(LexiconTest, GeneratesRequestedSizes) {
  LexiconConfig config;
  config.num_genes = 500;
  config.num_drugs = 100;
  config.num_diseases = 150;
  EntityLexicons lexicons(config);
  EXPECT_EQ(lexicons.genes().size(), 500u);
  EXPECT_EQ(lexicons.drugs().size(), 100u);
  EXPECT_EQ(lexicons.diseases().size(), 150u);
  EXPECT_FALSE(lexicons.general_terms().empty());
}

TEST(LexiconTest, NamesAreUnique) {
  EntityLexicons lexicons(LexiconConfig{1000, 200, 200, 7});
  std::set<std::string> genes(lexicons.genes().begin(),
                              lexicons.genes().end());
  EXPECT_EQ(genes.size(), lexicons.genes().size());
}

TEST(LexiconTest, DeterministicFromSeed) {
  EntityLexicons a(LexiconConfig{300, 50, 50, 42});
  EntityLexicons b(LexiconConfig{300, 50, 50, 42});
  EXPECT_EQ(a.genes(), b.genes());
  EXPECT_EQ(a.drugs(), b.drugs());
  EXPECT_EQ(a.diseases(), b.diseases());
}

TEST(LexiconTest, DifferentSeedsDiffer) {
  EntityLexicons a(LexiconConfig{300, 50, 50, 1});
  EntityLexicons b(LexiconConfig{300, 50, 50, 2});
  EXPECT_NE(a.genes(), b.genes());
}

TEST(LexiconTest, DrugNamesHavePharmaSuffixes) {
  EntityLexicons lexicons(LexiconConfig{100, 100, 100, 3});
  const char* suffixes[] = {"tinib", "mab",    "statin", "cillin", "mycin",
                            "azole", "pril",   "sartan", "olol"};
  for (const std::string& drug : lexicons.drugs()) {
    bool matched = false;
    for (const char* suffix : suffixes) {
      if (drug.size() > strlen(suffix) &&
          drug.compare(drug.size() - strlen(suffix), strlen(suffix), suffix) ==
              0) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << drug;
  }
}

TEST(LexiconTest, SomeGenesAreTlas) {
  EntityLexicons lexicons(LexiconConfig{2000, 100, 100, 4});
  size_t tlas = 0;
  for (const std::string& gene : lexicons.genes()) {
    if (gene.size() == 3 &&
        std::all_of(gene.begin(), gene.end(),
                    [](char c) { return c >= 'A' && c <= 'Z'; })) {
      ++tlas;
    }
  }
  EXPECT_GT(tlas, 10u);
}

TEST(LexiconTest, ForTypeDispatch) {
  EntityLexicons lexicons(LexiconConfig{100, 50, 60, 5});
  EXPECT_EQ(&lexicons.ForType(ie::EntityType::kGene), &lexicons.genes());
  EXPECT_EQ(&lexicons.ForType(ie::EntityType::kDrug), &lexicons.drugs());
  EXPECT_EQ(&lexicons.ForType(ie::EntityType::kDisease),
            &lexicons.diseases());
}

// ------------------------------------------------------------ Profiles

TEST(ProfileTest, DocumentLengthOrderingMatchesTable3) {
  // rel > pmc > irrel > medline (Table 3 mean chars).
  EXPECT_GT(ProfileFor(CorpusKind::kRelevantWeb).mean_doc_chars,
            ProfileFor(CorpusKind::kPmc).mean_doc_chars);
  EXPECT_GT(ProfileFor(CorpusKind::kPmc).mean_doc_chars,
            ProfileFor(CorpusKind::kIrrelevantWeb).mean_doc_chars);
  EXPECT_GT(ProfileFor(CorpusKind::kIrrelevantWeb).mean_doc_chars,
            ProfileFor(CorpusKind::kMedline).mean_doc_chars);
}

TEST(ProfileTest, NegationOrderingMatchesFig6c) {
  // pmc > irrel > rel > medline.
  EXPECT_GT(ProfileFor(CorpusKind::kPmc).negation_rate,
            ProfileFor(CorpusKind::kIrrelevantWeb).negation_rate);
  EXPECT_GT(ProfileFor(CorpusKind::kIrrelevantWeb).negation_rate,
            ProfileFor(CorpusKind::kRelevantWeb).negation_rate);
  EXPECT_GT(ProfileFor(CorpusKind::kRelevantWeb).negation_rate,
            ProfileFor(CorpusKind::kMedline).negation_rate);
}

TEST(ProfileTest, ParenthesisOrdering) {
  // pmc > rel > medline > irrel (Sect. 4.3.1).
  EXPECT_GT(ProfileFor(CorpusKind::kPmc).parenthesis_rate,
            ProfileFor(CorpusKind::kRelevantWeb).parenthesis_rate);
  EXPECT_GT(ProfileFor(CorpusKind::kRelevantWeb).parenthesis_rate,
            ProfileFor(CorpusKind::kMedline).parenthesis_rate);
  EXPECT_GT(ProfileFor(CorpusKind::kMedline).parenthesis_rate,
            ProfileFor(CorpusKind::kIrrelevantWeb).parenthesis_rate);
}

TEST(ProfileTest, IrrelevantEntityRatesNearZero) {
  CorpusProfile irrel = ProfileFor(CorpusKind::kIrrelevantWeb);
  EXPECT_LT(irrel.disease_rate, 0.01);
  EXPECT_LT(irrel.drug_rate, 0.01);
  EXPECT_LT(irrel.gene_rate, 0.01);
}

TEST(ProfileTest, KindNames) {
  EXPECT_STREQ(CorpusKindName(CorpusKind::kRelevantWeb), "Relevant crawl");
  EXPECT_STREQ(CorpusKindName(CorpusKind::kMedline), "Medline");
}

// ------------------------------------------------------------ Generator

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : lexicons_(LexiconConfig{1000, 200, 200, 11}) {}
  EntityLexicons lexicons_;
};

TEST_F(GeneratorTest, DeterministicFromSeed) {
  TextGenerator a(&lexicons_, ProfileFor(CorpusKind::kMedline), 5);
  TextGenerator b(&lexicons_, ProfileFor(CorpusKind::kMedline), 5);
  Document da = a.GenerateDocument(1);
  Document db = b.GenerateDocument(1);
  EXPECT_EQ(da.text, db.text);
  EXPECT_EQ(da.gold_entities.size(), db.gold_entities.size());
}

TEST_F(GeneratorTest, GoldEntityOffsetsMatchText) {
  TextGenerator gen(&lexicons_, ProfileFor(CorpusKind::kMedline), 6);
  for (int i = 0; i < 10; ++i) {
    Document doc = gen.GenerateDocument(i);
    for (const GoldEntity& g : doc.gold_entities) {
      ASSERT_LE(g.end, doc.text.size());
      EXPECT_EQ(doc.text.substr(g.begin, g.end - g.begin), g.name);
    }
  }
}

TEST_F(GeneratorTest, DocumentLengthNearProfileMean) {
  CorpusProfile profile = ProfileFor(CorpusKind::kMedline);
  TextGenerator gen(&lexicons_, profile, 7);
  double total = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(gen.GenerateDocument(i).text.size());
  }
  double mean = total / n;
  EXPECT_GT(mean, profile.mean_doc_chars * 0.7);
  EXPECT_LT(mean, profile.mean_doc_chars * 1.6);
}

TEST_F(GeneratorTest, WebCorpusLongerThanMedline) {
  TextGenerator web(&lexicons_, ProfileFor(CorpusKind::kRelevantWeb), 8);
  TextGenerator medline(&lexicons_, ProfileFor(CorpusKind::kMedline), 8);
  double web_total = 0, medline_total = 0;
  for (int i = 0; i < 30; ++i) {
    web_total += static_cast<double>(web.GenerateDocument(i).text.size());
    medline_total +=
        static_cast<double>(medline.GenerateDocument(i).text.size());
  }
  EXPECT_GT(web_total, 3 * medline_total);
}

TEST_F(GeneratorTest, MedlineDenserInEntitiesPerSentence) {
  TextGenerator medline(&lexicons_, ProfileFor(CorpusKind::kMedline), 9);
  TextGenerator irrel(&lexicons_, ProfileFor(CorpusKind::kIrrelevantWeb), 9);
  size_t medline_entities = 0, medline_sentences = 0;
  size_t irrel_entities = 0, irrel_sentences = 0;
  for (int i = 0; i < 30; ++i) {
    Document dm = medline.GenerateDocument(i);
    medline_entities += dm.gold_entities.size();
    medline_sentences += dm.gold_sentences;
    Document di = irrel.GenerateDocument(i);
    irrel_entities += di.gold_entities.size();
    irrel_sentences += di.gold_sentences;
  }
  double medline_rate =
      static_cast<double>(medline_entities) / medline_sentences;
  double irrel_rate = static_cast<double>(irrel_entities) / irrel_sentences;
  EXPECT_GT(medline_rate, 10 * irrel_rate);
}

TEST_F(GeneratorTest, EntityNamesComeFromSlice) {
  CorpusProfile profile = ProfileFor(CorpusKind::kMedline);
  TextGenerator gen(&lexicons_, profile, 10);
  std::set<std::string> genes(lexicons_.genes().begin(),
                              lexicons_.genes().end());
  std::set<std::string> drugs(lexicons_.drugs().begin(),
                              lexicons_.drugs().end());
  std::set<std::string> diseases(lexicons_.diseases().begin(),
                                 lexicons_.diseases().end());
  for (int i = 0; i < 10; ++i) {
    Document doc = gen.GenerateDocument(i);
    for (const GoldEntity& g : doc.gold_entities) {
      if (!g.from_lexicon) continue;
      switch (g.type) {
        case ie::EntityType::kGene:
          EXPECT_TRUE(genes.count(g.name)) << g.name;
          break;
        case ie::EntityType::kDrug:
          EXPECT_TRUE(drugs.count(g.name)) << g.name;
          break;
        case ie::EntityType::kDisease:
          EXPECT_TRUE(diseases.count(g.name)) << g.name;
          break;
      }
    }
  }
}

TEST_F(GeneratorTest, WebTextContainsTlaNoise) {
  CorpusProfile profile = ProfileFor(CorpusKind::kRelevantWeb);
  TextGenerator gen(&lexicons_, profile, 12);
  size_t noise = 0;
  for (int i = 0; i < 20; ++i) {
    for (const GoldEntity& g : gen.GenerateDocument(i).gold_entities) {
      if (!g.from_lexicon) ++noise;
    }
  }
  EXPECT_GT(noise, 0u);
}

TEST_F(GeneratorTest, WebTextContainsDebrisLines) {
  CorpusProfile profile = ProfileFor(CorpusKind::kIrrelevantWeb);
  profile.debris_rate = 0.3;
  TextGenerator gen(&lexicons_, profile, 13);
  bool found = false;
  for (int i = 0; i < 10 && !found; ++i) {
    Document doc = gen.GenerateDocument(i);
    if (doc.text.find(" | ") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(GeneratorTest, SentenceCountMatchesSplitterApproximately) {
  CorpusProfile profile = ProfileFor(CorpusKind::kMedline);
  TextGenerator gen(&lexicons_, profile, 14);
  Document doc = gen.GenerateDocument(0);
  text::SentenceSplitter splitter;
  size_t detected = splitter.Split(doc.text).size();
  EXPECT_NEAR(static_cast<double>(detected),
              static_cast<double>(doc.gold_sentences),
              0.35 * static_cast<double>(doc.gold_sentences) + 2.0);
}

TEST_F(GeneratorTest, GenerateCorpusAssignsSequentialIds) {
  TextGenerator gen(&lexicons_, ProfileFor(CorpusKind::kMedline), 15);
  auto docs = gen.GenerateCorpus(100, 5);
  ASSERT_EQ(docs.size(), 5u);
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].id, 100 + i);
  }
}

// ------------------------------------------------------------ Store

TEST(DocumentStoreTest, TracksTotals) {
  DocumentStore store;
  Document a;
  a.text = "12345";
  Document b;
  b.text = "123";
  store.Add(a);
  store.Add(b);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_chars(), 8u);
  EXPECT_DOUBLE_EQ(store.mean_chars(), 4.0);
}

TEST(DocumentStoreTest, EmptyStore) {
  DocumentStore store;
  EXPECT_EQ(store.mean_chars(), 0.0);
}

}  // namespace
}  // namespace wsie::corpus
