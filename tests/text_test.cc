#include <gtest/gtest.h>

#include "text/bag_of_words.h"
#include "text/ngram.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wsie::text {
namespace {

// ------------------------------------------------------------ Tokenizer

TEST(TokenizerTest, SplitsOnWhitespace) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("the quick fox");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "the");
  EXPECT_EQ(tokens[2].text, "fox");
}

TEST(TokenizerTest, OffsetsMatchSource) {
  Tokenizer tok;
  std::string text = "BRCA1 inhibits growth.";
  for (const Token& t : tok.Tokenize(text)) {
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
  }
}

TEST(TokenizerTest, BaseOffsetApplied) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("abc", 100);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].begin, 100u);
  EXPECT_EQ(tokens[0].end, 103u);
}

TEST(TokenizerTest, PeelsTrailingPunctuation) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("growth.");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "growth");
  EXPECT_EQ(tokens[1].text, ".");
}

TEST(TokenizerTest, PeelsLeadingPunctuation) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("(see");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "(");
  EXPECT_EQ(tokens[1].text, "see");
}

TEST(TokenizerTest, KeepsInternalHyphens) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("GAD-67 works");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "GAD-67");
}

TEST(TokenizerTest, TrailingHyphenIsPunctuation) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("pre- and post");
  EXPECT_EQ(tokens[0].text, "pre");
  EXPECT_EQ(tokens[1].text, "-");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   \t\n").empty());
}

TEST(TokenizerTest, PurePunctuationRun) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("?!");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "?");
  EXPECT_EQ(tokens[1].text, "!");
}

// ------------------------------------------------------- SentenceSplitter

TEST(SentenceSplitterTest, SplitsSimpleSentences) {
  SentenceSplitter splitter;
  auto spans = splitter.Split("First one. Second one. Third.");
  ASSERT_EQ(spans.size(), 3u);
}

TEST(SentenceSplitterTest, SpansCoverText) {
  SentenceSplitter splitter;
  std::string text = "Alpha beta. Gamma delta!";
  auto spans = splitter.Split(text);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(text.substr(spans[0].begin, spans[0].length()), "Alpha beta.");
  EXPECT_EQ(text.substr(spans[1].begin, spans[1].length()), "Gamma delta!");
}

TEST(SentenceSplitterTest, DoesNotSplitAbbreviations) {
  SentenceSplitter splitter;
  auto spans = splitter.Split("Results, e.g. BRCA1, were found. Next one.");
  EXPECT_EQ(spans.size(), 2u);
}

TEST(SentenceSplitterTest, DoesNotSplitInitials) {
  SentenceSplitter splitter;
  auto spans = splitter.Split("Work by J. Meier was cited. More text.");
  EXPECT_EQ(spans.size(), 2u);
}

TEST(SentenceSplitterTest, RequiresCapitalAfterBoundary) {
  SentenceSplitter splitter;
  // Period followed by lowercase: likely not a boundary.
  auto spans = splitter.Split("value of 3.5 per cent was measured");
  EXPECT_EQ(spans.size(), 1u);
}

TEST(SentenceSplitterTest, NewlineBreaks) {
  SentenceSplitter splitter;
  auto spans = splitter.Split("Heading without period\nBody sentence here.");
  EXPECT_EQ(spans.size(), 2u);
}

TEST(SentenceSplitterTest, NewlineBreakDisabled) {
  SentenceSplitterOptions options;
  options.break_on_newline = false;
  SentenceSplitter splitter(options);
  auto spans = splitter.Split("no period\nstill same sentence");
  EXPECT_EQ(spans.size(), 1u);
}

TEST(SentenceSplitterTest, ForceSplitsRunawaySpans) {
  SentenceSplitterOptions options;
  options.max_sentence_chars = 100;
  options.break_on_newline = false;
  SentenceSplitter splitter(options);
  std::string runaway;
  for (int i = 0; i < 100; ++i) runaway += "navword ";
  auto spans = splitter.Split(runaway);
  EXPECT_GT(spans.size(), 5u);
  for (const auto& span : spans) EXPECT_LE(span.length(), 100u);
}

TEST(SentenceSplitterTest, UnlimitedWhenCapZero) {
  SentenceSplitterOptions options;
  options.max_sentence_chars = 0;
  options.break_on_newline = false;
  SentenceSplitter splitter(options);
  std::string runaway(5000, 'x');
  auto spans = splitter.Split(runaway);
  EXPECT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].length(), 5000u);
}

TEST(SentenceSplitterTest, EmptyInput) {
  SentenceSplitter splitter;
  EXPECT_TRUE(splitter.Split("").empty());
  EXPECT_TRUE(splitter.Split("   \n  ").empty());
}

TEST(SentenceSplitterTest, TrailingTextWithoutPunctuation) {
  SentenceSplitter splitter;
  // Lowercase after the period: not a boundary (abbreviation heuristic).
  EXPECT_EQ(splitter.Split("Complete sentence. trailing fragment").size(), 1u);
  // Uppercase trailing fragment without terminal punctuation: two spans.
  EXPECT_EQ(splitter.Split("Complete sentence. Trailing fragment").size(), 2u);
}

// ------------------------------------------------------------ BagOfWords

TEST(BagOfWordsTest, CountsTerms) {
  BagOfWords bow;
  TermCounts counts = bow.Featurize("cancer cancer treatment");
  EXPECT_EQ(counts["cancer"], 2u);
  EXPECT_EQ(counts["treatment"], 1u);
}

TEST(BagOfWordsTest, Lowercases) {
  BagOfWords bow;
  TermCounts counts = bow.Featurize("Cancer CANCER");
  EXPECT_EQ(counts["cancer"], 2u);
}

TEST(BagOfWordsTest, DropsStopwords) {
  BagOfWords bow;
  TermCounts counts = bow.Featurize("the cancer of this");
  EXPECT_EQ(counts.count("the"), 0u);
  EXPECT_EQ(counts.count("of"), 0u);
  EXPECT_EQ(counts.count("cancer"), 1u);
}

TEST(BagOfWordsTest, DropsNumbersAndShortTokens) {
  BagOfWords bow;
  TermCounts counts = bow.Featurize("a 123 4.5 gene");
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.count("gene"), 1u);
}

TEST(BagOfWordsTest, DropsOverlongTokens) {
  BagOfWords bow;
  std::string junk(60, 'z');
  TermCounts counts = bow.Featurize(junk + " fine");
  EXPECT_EQ(counts.size(), 1u);
}

TEST(BagOfWordsTest, IsStopword) {
  BagOfWords bow;
  EXPECT_TRUE(bow.IsStopword("the"));
  EXPECT_FALSE(bow.IsStopword("gene"));
}

// ------------------------------------------------------------ n-grams

TEST(CharNgramProfileTest, CountsTrigrams) {
  CharNgramProfile profile(3);
  profile.Add("aaa");
  EXPECT_GT(profile.total_ngrams(), 0u);
  EXPECT_GT(profile.distinct_ngrams(), 0u);
}

TEST(CharNgramProfileTest, TopKOrderedByFrequency) {
  CharNgramProfile profile(2);
  profile.Add("ababab x cd");
  auto top = profile.TopK(3);
  ASSERT_FALSE(top.empty());
  // "ab"-derived grams dominate.
  EXPECT_TRUE(top[0] == "ab" || top[0] == "ba");
}

TEST(CharNgramProfileTest, RankDistanceZeroForIdentical) {
  CharNgramProfile profile(3);
  profile.Add("the quick brown fox jumps over the lazy dog");
  auto top = profile.TopK(50);
  EXPECT_DOUBLE_EQ(CharNgramProfile::RankDistance(top, top), 0.0);
}

TEST(CharNgramProfileTest, RankDistanceDetectsDifferentText) {
  CharNgramProfile english(3), german(3);
  english.Add("the patient was treated with the drug for the disease");
  german.Add("der patient wurde mit dem medikament gegen die krankheit");
  auto e = english.TopK(100);
  auto g = german.TopK(100);
  double cross = CharNgramProfile::RankDistance(e, g);
  double self = CharNgramProfile::RankDistance(e, e);
  EXPECT_GT(cross, self + 1.0);
}

TEST(WordNgramCounterTest, CountsBigrams) {
  WordNgramCounter counter(2);
  counter.Add({"a", "b", "a", "b"});
  EXPECT_EQ(counter.Count("a b"), 2u);
  EXPECT_EQ(counter.Count("b a"), 1u);
  EXPECT_EQ(counter.Count("x y"), 0u);
  EXPECT_EQ(counter.total(), 3u);
}

TEST(WordNgramCounterTest, ShortInputIgnored) {
  WordNgramCounter counter(3);
  counter.Add({"only", "two"});
  EXPECT_EQ(counter.total(), 0u);
}

}  // namespace
}  // namespace wsie::text
