// Tests for the serving front end: batched admission queue (MPMC ring +
// ExecuteBatch under one epoch pin) and the text-protocol server. The
// queue's answers must be identical to direct engine calls — admission
// batching is a scheduling change, never a semantic one.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission_queue.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/slow_query_log.h"
#include "store/annotation_store.h"

namespace wsie::serve {
namespace {

using store::AnnotationStore;
using store::Posting;
using store::SegmentBuilder;

std::string FreshDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("wsie_serve_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::shared_ptr<AnnotationStore> FixtureStore(const std::string& name) {
  auto store_or = AnnotationStore::Open(FreshDir(name));
  EXPECT_TRUE(store_or.ok());
  auto store = *store_or;
  SegmentBuilder first;
  first.Add("braf", 0, 0, 0, Posting{1, 0, 0, 4});
  first.Add("braf", 0, 0, 1, Posting{1, 0, 0, 4});
  first.Add("braf", 0, 0, 0, Posting{2, 1, 5, 9});
  first.Add("aspirin", 0, 1, 0, Posting{1, 0, 10, 17});
  first.AddCorpusStats(0, 2, 10, 200);
  EXPECT_TRUE(store->Append(std::move(first)).ok());
  SegmentBuilder second;
  second.Add("braf", 0, 0, 0, Posting{3, 0, 2, 6});
  second.Add("brca1", 0, 0, 1, Posting{3, 0, 12, 17});
  second.Add("melanoma", 0, 2, 1, Posting{1, 0, 20, 28});
  second.AddCorpusStats(0, 1, 5, 80);
  EXPECT_TRUE(store->Append(std::move(second)).ok());
  return store;
}

// ------------------------------------------------- Execute / ExecuteBatch

TEST(ExecuteTest, MatchesDirectEngineCallsForEveryKind) {
  auto engine =
      std::make_shared<const QueryEngine>(FixtureStore("execute_parity"));

  QueryEngine::Request lookup;
  lookup.kind = QueryEngine::Request::Kind::kLookup;
  lookup.name = "braf";
  lookup.limit = 10;
  auto response = engine->Execute(lookup);
  auto direct = engine->Lookup("braf", {}, 10);
  EXPECT_EQ(response.lookup.found, direct.found);
  EXPECT_EQ(response.lookup.count, direct.count);
  EXPECT_EQ(response.lookup.docs, direct.docs);
  EXPECT_EQ(response.lookup.postings, direct.postings);

  QueryEngine::Request prefix;
  prefix.kind = QueryEngine::Request::Kind::kPrefix;
  prefix.name = "br";
  prefix.limit = 5;
  EXPECT_EQ(engine->Execute(prefix).names, engine->PrefixScan("br", 5));

  QueryEngine::Request frequency;
  frequency.kind = QueryEngine::Request::Kind::kFrequency;
  frequency.corpus = 0;
  frequency.type = 0;
  frequency.method = kAny;
  auto freq_response = engine->Execute(frequency).frequency;
  auto freq_direct = engine->CorpusFrequency(0, 0, kAny);
  EXPECT_EQ(freq_response.distinct_names, freq_direct.distinct_names);
  EXPECT_EQ(freq_response.annotations, freq_direct.annotations);
  EXPECT_EQ(freq_response.sentences, freq_direct.sentences);
  EXPECT_DOUBLE_EQ(freq_response.per_1000_sentences,
                   freq_direct.per_1000_sentences);

  QueryEngine::Request topk;
  topk.kind = QueryEngine::Request::Kind::kTopK;
  topk.limit = 3;
  auto topk_response = engine->Execute(topk).topk;
  auto topk_direct = engine->TopK(3);
  ASSERT_EQ(topk_response.size(), topk_direct.size());
  for (size_t i = 0; i < topk_response.size(); ++i) {
    EXPECT_EQ(topk_response[i].name, topk_direct[i].name);
    EXPECT_EQ(topk_response[i].count, topk_direct[i].count);
  }

  QueryEngine::Request cooc;
  cooc.kind = QueryEngine::Request::Kind::kCoOccurrence;
  cooc.name = "braf";
  cooc.name_b = "aspirin";
  auto cooc_response = engine->Execute(cooc).cooccurrence;
  auto cooc_direct = engine->CoOccurrence("braf", "aspirin");
  EXPECT_EQ(cooc_response.docs, cooc_direct.docs);
  EXPECT_EQ(cooc_response.sentences, cooc_direct.sentences);
}

// ------------------------------------------------------- admission queue

TEST(AdmissionQueueTest, SubmitReturnsSameAnswersAsDirectCalls) {
  auto engine =
      std::make_shared<const QueryEngine>(FixtureStore("queue_parity"));
  AdmissionQueue::Options options;
  options.capacity = 64;
  options.batch_size = 8;
  AdmissionQueue queue(engine, options);

  QueryEngine::Request request;
  request.kind = QueryEngine::Request::Kind::kLookup;
  request.name = "braf";
  QueryEngine::Response response;
  ASSERT_TRUE(queue.Submit(request, &response));
  EXPECT_TRUE(response.lookup.found);
  EXPECT_EQ(response.lookup.count, engine->Lookup("braf").count);

  request.kind = QueryEngine::Request::Kind::kTopK;
  request.limit = 2;
  ASSERT_TRUE(queue.Submit(request, &response));
  ASSERT_EQ(response.topk.size(), 2u);
  EXPECT_EQ(response.topk[0].name, "braf");
  queue.Stop();
}

TEST(AdmissionQueueTest, CapacityRoundsToPowerOfTwo) {
  auto engine = std::make_shared<const QueryEngine>(FixtureStore("queue_cap"));
  AdmissionQueue::Options options;
  options.capacity = 33;
  AdmissionQueue queue(engine, options);
  EXPECT_EQ(queue.capacity(), 64u);
  queue.Stop();
}

TEST(AdmissionQueueTest, ManyProducersSmallRingAllRequestsAnswered) {
  // Ring far smaller than the request volume: backpressure (spin-yield on
  // full) plus batch draining must still answer every request correctly.
  auto engine =
      std::make_shared<const QueryEngine>(FixtureStore("queue_stress"));
  AdmissionQueue::Options options;
  options.capacity = 8;
  options.batch_size = 4;
  options.workers = 2;
  AdmissionQueue queue(engine, options);

  const uint64_t expected_count = engine->Lookup("braf").count;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 400;
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        QueryEngine::Request request;
        QueryEngine::Response response;
        if ((t + i) % 2 == 0) {
          request.kind = QueryEngine::Request::Kind::kLookup;
          request.name = "braf";
          if (!queue.Submit(request, &response)) continue;
          if (response.lookup.count != expected_count) wrong.fetch_add(1);
        } else {
          request.kind = QueryEngine::Request::Kind::kPrefix;
          request.name = "br";
          request.limit = 10;
          if (!queue.Submit(request, &response)) continue;
          if (response.names.size() != 2) wrong.fetch_add(1);
        }
        answered.fetch_add(1);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  queue.Stop();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(answered.load(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
}

TEST(AdmissionQueueTest, StopDrainsAdmittedWorkAndRejectsNewSubmits) {
  auto engine = std::make_shared<const QueryEngine>(FixtureStore("queue_stop"));
  AdmissionQueue::Options options;
  options.capacity = 16;
  AdmissionQueue queue(engine, options);
  queue.Stop();
  QueryEngine::Request request;
  request.kind = QueryEngine::Request::Kind::kLookup;
  request.name = "braf";
  QueryEngine::Response response;
  EXPECT_FALSE(queue.Submit(request, &response));
  queue.Stop();  // idempotent
}

// ----------------------------------------------------------- HTTP server

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine =
        std::make_shared<const QueryEngine>(FixtureStore("http_server"));
    AdmissionQueue::Options options;
    options.slow_log = std::make_shared<SlowQueryLog>();
    queue_ = std::make_shared<AdmissionQueue>(engine, options);
    server_ = std::make_unique<Server>(queue_, Server::Options{});
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    server_->Stop();
    queue_->Stop();
  }

  std::string Get(const std::string& target) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string reply;
    char buffer[4096];
    ssize_t n;
    while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      reply.append(buffer, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
  }

  std::shared_ptr<AdmissionQueue> queue_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, HealthzAndMetricsRespond) {
  EXPECT_NE(Get("/healthz").find("200"), std::string::npos);
  std::string metrics = Get("/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("wsie"), std::string::npos);
}

TEST_F(ServerTest, LookupRouteReturnsEngineNumbers) {
  std::string reply = Get("/lookup?name=braf");
  EXPECT_NE(reply.find("200"), std::string::npos);
  EXPECT_NE(reply.find("found=1"), std::string::npos);
  EXPECT_NE(reply.find("count=4"), std::string::npos);
  EXPECT_NE(Get("/lookup?name=nonexistent").find("found=0"),
            std::string::npos);
  // Filtered: method=0 drops one braf posting.
  EXPECT_NE(Get("/lookup?name=braf&method=0").find("count=3"),
            std::string::npos);
}

TEST_F(ServerTest, PrefixTopkFreqCoocRoutes) {
  std::string prefix = Get("/prefix?p=br");
  EXPECT_NE(prefix.find("braf"), std::string::npos);
  EXPECT_NE(prefix.find("brca1"), std::string::npos);

  std::string topk = Get("/topk?k=1");
  EXPECT_NE(topk.find("braf 4"), std::string::npos);

  std::string freq = Get("/freq?corpus=0&type=0");
  EXPECT_NE(freq.find("distinct_names=2"), std::string::npos);

  std::string cooc = Get("/cooc?a=braf&b=aspirin");
  EXPECT_NE(cooc.find("docs=1"), std::string::npos);
  EXPECT_NE(cooc.find("sentences=1"), std::string::npos);
}

TEST_F(ServerTest, BadAndUnknownRequestsGetErrorStatuses) {
  EXPECT_NE(Get("/nosuchroute").find("404"), std::string::npos);
  EXPECT_NE(Get("/lookup").find("400"), std::string::npos);  // missing name
}

TEST_F(ServerTest, DebugSlowlogAndTraceRoutes) {
  // Populate the slow-query log (floor 0: every request is kept).
  EXPECT_NE(Get("/lookup?name=braf").find("200"), std::string::npos);
  std::string slowlog = Get("/debug/slowlog");
  EXPECT_NE(slowlog.find("200"), std::string::npos);
  EXPECT_NE(slowlog.find("\"entries\""), std::string::npos);
  EXPECT_NE(slowlog.find("\"kind\":\"lookup\""), std::string::npos);
  EXPECT_NE(slowlog.find("\"name\":\"braf\""), std::string::npos);
  std::string trace = Get("/debug/trace");
  EXPECT_NE(trace.find("200"), std::string::npos);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);
}

TEST(ServerSlowlogDisabledTest, DebugSlowlogIs404WithoutLog) {
  auto engine =
      std::make_shared<const QueryEngine>(FixtureStore("http_noslowlog"));
  auto queue = std::make_shared<AdmissionQueue>(engine,
                                                AdmissionQueue::Options{});
  Server server(queue, Server::Options{});
  ASSERT_TRUE(server.Start().ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request = "GET /debug/slowlog HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  server.Stop();
  queue->Stop();
  EXPECT_NE(reply.find("404"), std::string::npos);
}

// ------------------------------------------- sampled tracing + slow log

TEST(DigestTest, DeterministicAndSensitiveToEveryField) {
  QueryEngine::Request request;
  request.kind = QueryEngine::Request::Kind::kLookup;
  request.name = "braf";
  request.limit = 10;
  const uint64_t base = QueryEngine::Digest(request);
  EXPECT_EQ(QueryEngine::Digest(request), base);  // pure function

  QueryEngine::Request other = request;
  other.name = "brca1";
  EXPECT_NE(QueryEngine::Digest(other), base);
  other = request;
  other.kind = QueryEngine::Request::Kind::kPrefix;
  EXPECT_NE(QueryEngine::Digest(other), base);
  other = request;
  other.limit = 11;
  EXPECT_NE(QueryEngine::Digest(other), base);
  other = request;
  other.filter.method = 0;
  EXPECT_NE(QueryEngine::Digest(other), base);
  other = request;
  other.name_b = "x";
  EXPECT_NE(QueryEngine::Digest(other), base);
}

TEST(SamplingTest, SampledRequestsMatchBatchPathExactly) {
  // trace_sample_every=1: every request takes the individual traced path.
  // Responses must be byte-for-byte what the batch path produces.
  auto store = FixtureStore("sampling_parity");
  auto engine = std::make_shared<const QueryEngine>(store);
  AdmissionQueue::Options sampled_options;
  sampled_options.trace_sample_every = 1;
  AdmissionQueue sampled_queue(engine, sampled_options);

  const std::vector<std::string> names = {"braf", "brca1", "aspirin",
                                          "melanoma", "nonexistent"};
  for (const std::string& name : names) {
    QueryEngine::Request request;
    request.kind = QueryEngine::Request::Kind::kLookup;
    request.name = name;
    request.limit = 10;
    QueryEngine::Response via_queue;
    ASSERT_TRUE(sampled_queue.Submit(request, &via_queue));
    QueryEngine::Response direct = engine->Execute(request);
    EXPECT_EQ(via_queue.lookup.found, direct.lookup.found);
    EXPECT_EQ(via_queue.lookup.count, direct.lookup.count);
    EXPECT_EQ(via_queue.lookup.docs, direct.lookup.docs);
    EXPECT_EQ(via_queue.lookup.postings, direct.lookup.postings);
  }
  sampled_queue.Stop();
}

TEST(SamplingTest, OneInNAdmissionIsDeterministicAndExact) {
  auto engine =
      std::make_shared<const QueryEngine>(FixtureStore("sampling_exact"));
  constexpr size_t kEvery = 4;
  AdmissionQueue::Options options;
  options.trace_sample_every = kEvery;
  options.slow_log = std::make_shared<SlowQueryLog>();
  AdmissionQueue queue(engine, options);

  const uint64_t sampled_before = obs::MetricsRegistry::Global()
                                      .Snapshot()
                                      .CounterValue("wsie.serve.sampled");
  uint64_t expected_sampled = 0;
  constexpr int kRequests = 200;
  for (int i = 0; i < kRequests; ++i) {
    QueryEngine::Request request;
    request.kind = QueryEngine::Request::Kind::kPrefix;
    request.name = "q" + std::to_string(i);
    request.limit = 4;
    if (QueryEngine::Digest(request) % kEvery == 0) ++expected_sampled;
    QueryEngine::Response response;
    ASSERT_TRUE(queue.Submit(request, &response));
  }
  queue.Stop();
  const uint64_t sampled_after = obs::MetricsRegistry::Global()
                                     .Snapshot()
                                     .CounterValue("wsie.serve.sampled");
  // Keyed on the request digest, not arrival order: the count is exact
  // and reproducible, and a digest spread over 200 distinct terms puts it
  // in the statistical neighborhood of kRequests / kEvery.
  EXPECT_EQ(sampled_after - sampled_before, expected_sampled);
  EXPECT_GT(expected_sampled, 0u);
  EXPECT_LT(expected_sampled, static_cast<uint64_t>(kRequests));
  // Every completed request was offered to the slow log (floor 0).
  EXPECT_EQ(options.slow_log->TopByLatency().size(),
            std::min<size_t>(kRequests, SlowQueryOptions().top_k));
}

TEST(SlowQueryLogTest, KeepsTopKByLatencyAndRaisesFloor) {
  SlowQueryOptions options;
  options.top_k = 3;
  SlowQueryLog log(options);
  QueryEngine::Request request;
  request.kind = QueryEngine::Request::Kind::kLookup;
  for (uint64_t latency : {50u, 10u, 30u, 20u, 40u}) {
    request.name = "t" + std::to_string(latency);
    log.Record(request, latency, false);
  }
  // Kept: 50, 40, 30. Floor is the minimum kept latency.
  std::vector<SlowQueryLog::Entry> top = log.TopByLatency();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].latency_ns, 50u);
  EXPECT_EQ(top[1].latency_ns, 40u);
  EXPECT_EQ(top[2].latency_ns, 30u);
  EXPECT_EQ(top[0].name, "t50");
  EXPECT_EQ(log.floor_ns(), 30u);
  // Below-floor requests are rejected on the fast path.
  request.name = "fast";
  log.Record(request, 5, false);
  EXPECT_EQ(log.TopByLatency().size(), 3u);
  EXPECT_EQ(log.floor_ns(), 30u);
  // A new worst query evicts the current minimum.
  request.name = "worst";
  log.Record(request, 99, true);
  top = log.TopByLatency();
  EXPECT_EQ(top[0].name, "worst");
  EXPECT_TRUE(top[0].sampled);
  EXPECT_EQ(log.floor_ns(), 40u);
  log.Clear();
  EXPECT_TRUE(log.TopByLatency().empty());
}

TEST(SlowQueryLogTest, DumpJsonCarriesRequestShape) {
  SlowQueryLog log;
  QueryEngine::Request request;
  request.kind = QueryEngine::Request::Kind::kCoOccurrence;
  request.name = "braf";
  request.name_b = "quote\"y";
  log.Record(request, 1234, true);
  const std::string json = log.DumpJson();
  EXPECT_NE(json.find("\"kind\":\"cooc\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"braf\""), std::string::npos);
  EXPECT_NE(json.find("quote\\\"y"), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":true"), std::string::npos);
}

}  // namespace
}  // namespace wsie::serve
