// Tests for the persistent annotation store (segments, durability,
// compaction) and the concurrent query serving layer: round-trips are
// exact, corruption is rejected with a Status (never UB), and snapshot
// isolation holds while compaction runs under the readers' feet.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"

#include "dataflow/value.h"
#include "fault/checkpoint.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"
#include "store/posting_codec.h"
#include "store/segment.h"
#include "store/store_sink.h"

namespace wsie::store {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "wsie_store_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

SegmentBuilder SmallBuilder() {
  SegmentBuilder builder;
  builder.Add("braf", 0, 0, 0, Posting{1, 0, 10, 14});
  builder.Add("braf", 0, 0, 0, Posting{2, 3, 5, 9});
  builder.Add("braf", 0, 0, 1, Posting{1, 0, 10, 14});
  builder.Add("braf", 2, 0, 0, Posting{7, 1, 0, 4});
  builder.Add("aspirin", 0, 1, 0, Posting{1, 1, 20, 27});
  builder.Add("melanoma", 2, 2, 1, Posting{7, 2, 30, 38});
  builder.AddCorpusStats(0, 2, 9, 400);
  builder.AddCorpusStats(2, 1, 5, 220);
  return builder;
}

// ---------------------------------------------------------- segments

TEST(SegmentTest, BuilderProducesSortedDictionaryAndGroups) {
  auto segment = SmallBuilder().Finish(1);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ(segment->terms(),
            (std::vector<std::string>{"aspirin", "braf", "melanoma"}));
  EXPECT_EQ(segment->num_postings(), 6u);
  // Groups sorted by (term_id, corpus, type, method) and contiguous.
  int braf = segment->FindTerm("braf");
  ASSERT_GE(braf, 0);
  auto groups = segment->GroupsForTerm(static_cast<uint32_t>(braf));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].corpus, 0);
  EXPECT_EQ(groups[0].method, 0);
  EXPECT_EQ(groups[0].postings.size(), 2u);
  EXPECT_EQ(groups[1].method, 1);
  EXPECT_EQ(groups[2].corpus, 2);
  EXPECT_EQ(segment->FindTerm("unknown"), -1);
  EXPECT_TRUE(segment->GroupsForTerm(999).empty());
  EXPECT_EQ(segment->corpus_stats()[0].sentences, 9u);
  EXPECT_EQ(segment->corpus_stats()[2].docs, 1u);
}

TEST(SegmentTest, EncodeDecodeRoundTripIsExact) {
  auto segment = SmallBuilder().Finish(42);
  ASSERT_TRUE(segment.ok());
  std::string bytes = segment->Encode();
  auto decoded = Segment::Decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id(), 42u);
  EXPECT_EQ(decoded->terms(), segment->terms());
  EXPECT_EQ(decoded->groups(), segment->groups());
  EXPECT_EQ(decoded->corpus_stats(), segment->corpus_stats());
  EXPECT_EQ(decoded->num_postings(), segment->num_postings());
}

TEST(SegmentTest, FileRoundTripAndPrefixRange) {
  std::string dir = FreshDir("file_round_trip");
  std::filesystem::create_directories(dir);
  std::string path = dir + "/seg-1.wseg";
  auto segment = SmallBuilder().Finish(1);
  ASSERT_TRUE(segment.ok());
  ASSERT_TRUE(segment->WriteFile(path).ok());
  auto loaded = Segment::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->terms(), segment->terms());
  auto [first, last] = loaded->PrefixRange("br");
  EXPECT_EQ(last - first, 1u);
  EXPECT_EQ(loaded->terms()[first], "braf");
  auto [none_first, none_last] = loaded->PrefixRange("zz");
  EXPECT_EQ(none_first, none_last);
}

TEST(SegmentTest, EveryBitFlipIsRejectedNotUb) {
  auto segment = SmallBuilder().Finish(1);
  ASSERT_TRUE(segment.ok());
  std::string bytes = segment->Encode();
  // Flip one bit at a spread of positions covering the magic, the frame,
  // the payload, and the checksum trailer: decode must return an error
  // every time (the container checksums all bytes).
  for (size_t pos = 0; pos < bytes.size();
       pos += 1 + bytes.size() / 97) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    auto decoded = Segment::Decode(corrupt);
    EXPECT_FALSE(decoded.ok()) << "bit flip at " << pos << " accepted";
  }
}

TEST(SegmentTest, TruncationIsRejected) {
  auto segment = SmallBuilder().Finish(1);
  ASSERT_TRUE(segment.ok());
  std::string bytes = segment->Encode();
  for (size_t len : {size_t{0}, size_t{4}, bytes.size() / 2,
                     bytes.size() - 1}) {
    auto decoded = Segment::Decode(std::string_view(bytes.data(), len));
    EXPECT_FALSE(decoded.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(SegmentTest, StructurallyBadSectionsAreRejected) {
  // A container that passes the checksum but carries nonsense sections
  // must still be rejected by the segment-level validation.
  fault::Checkpoint container;
  container.SetSection("meta", "short");
  container.SetSection("dict", "");
  container.SetSection("postings", "");
  EXPECT_FALSE(Segment::Decode(container.Serialize()).ok());

  // Valid container, missing the postings section entirely.
  auto segment = SmallBuilder().Finish(1);
  ASSERT_TRUE(segment.ok());
  auto parsed = fault::Checkpoint::Deserialize(segment->Encode());
  ASSERT_TRUE(parsed.ok());
  fault::Checkpoint no_postings = *parsed;
  no_postings.SetSection("postings", "");
  EXPECT_FALSE(Segment::Decode(no_postings.Serialize()).ok());
}

// --------------------------------------------- group-varint codec

// The scalar delta/varint codec is the golden reference: every property
// test encodes with both codecs and demands identical decoded vectors,
// and identical accept/reject behaviour on corrupted bytes.

std::vector<Posting> RoundTripBoth(const std::vector<Posting>& postings) {
  std::string scalar_bytes, grouped_bytes;
  EXPECT_TRUE(EncodePostingList(postings, &scalar_bytes).ok());
  EXPECT_TRUE(EncodePostingListGrouped(postings, &grouped_bytes).ok());

  std::string_view scalar_in = scalar_bytes;
  std::string_view grouped_in = grouped_bytes;
  std::vector<Posting> scalar_out, grouped_out;
  EXPECT_TRUE(DecodePostingList(&scalar_in, &scalar_out).ok());
  EXPECT_TRUE(DecodePostingListGrouped(&grouped_in, &grouped_out).ok());
  EXPECT_TRUE(scalar_in.empty());
  EXPECT_TRUE(grouped_in.empty());
  EXPECT_EQ(scalar_out, postings);
  EXPECT_EQ(grouped_out, postings);
  return grouped_out;
}

TEST(GroupVarintTest, EmptyAndSingleRoundTrip) {
  RoundTripBoth({});
  RoundTripBoth({{7, 3, 10, 14}});
  RoundTripBoth({{0, 0, 0, 0}});
}

TEST(GroupVarintTest, MaxDeltaBoundaries) {
  const uint64_t u32max = 0xffffffffull;
  // Gaps exactly at the uint32 boundary stay on the grouped path; one past
  // it (and a huge first id) must fall back to the scalar-flag payload.
  // Both must round-trip exactly either way.
  RoundTripBoth({{u32max, 0xffffffffu, 0xfffffffeu, 0xffffffffu}});
  RoundTripBoth({{1, 0, 0, 0}, {1 + u32max, 0, 0, 0}});
  RoundTripBoth({{u32max + 1, 0, 0, 0}});
  RoundTripBoth({{5, 0, 0, 0}, {5 + u32max + 1, 0, 0, 0}});
  RoundTripBoth({{0xfffffffffffffff0ull, 9, 1, 2},
                 {0xfffffffffffffff1ull, 0, 0, 0}});
}

TEST(GroupVarintTest, RandomListsRoundTrip) {
  Rng rng(0xc0dec);
  for (int iter = 0; iter < 50; ++iter) {
    size_t n = rng.Uniform(40);
    std::vector<Posting> postings;
    uint64_t doc = rng.Uniform(1000);
    for (size_t i = 0; i < n; ++i) {
      doc += rng.Uniform(1 << (1 + rng.Uniform(30)));
      uint32_t begin = static_cast<uint32_t>(rng.Uniform(1u << 20));
      postings.push_back({doc, static_cast<uint32_t>(rng.Uniform(1u << 16)),
                          begin,
                          begin + static_cast<uint32_t>(rng.Uniform(200))});
    }
    std::sort(postings.begin(), postings.end());
    postings.erase(std::unique(postings.begin(), postings.end()),
                   postings.end());
    RoundTripBoth(postings);
  }
}

TEST(GroupVarintTest, LongListExercisesSimdAndTail) {
  // > 4 groups past the 17-byte SIMD window so both the vector kernel and
  // the bounds-checked scalar tail run (when SIMD is active on this host).
  std::vector<Posting> postings;
  uint64_t doc = 0;
  for (int i = 0; i < 257; ++i) {
    doc += 1 + (i % 300) * (i % 5);
    postings.push_back({doc, static_cast<uint32_t>(i * 977),
                        static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1 + i % 90)});
  }
  RoundTripBoth(postings);
}

TEST(GroupVarintTest, EncoderRejectsSameInputsAsScalar) {
  const std::vector<std::vector<Posting>> bad = {
      {{5, 0, 0, 0}, {4, 0, 0, 0}},      // unsorted docs
      {{5, 2, 0, 0}, {5, 1, 0, 0}},      // unsorted within doc
      {{5, 0, 9, 3}},                    // end < begin
  };
  for (const auto& postings : bad) {
    std::string scalar_bytes, grouped_bytes;
    EXPECT_FALSE(EncodePostingList(postings, &scalar_bytes).ok());
    EXPECT_FALSE(EncodePostingListGrouped(postings, &grouped_bytes).ok());
  }
  // Equal postings are allowed by both codecs (non-strict order) — parity
  // means agreeing on acceptance, too.
  RoundTripBoth({{5, 0, 0, 0}, {5, 0, 0, 0}});
}

TEST(GroupVarintTest, TruncationRejectionParity) {
  std::vector<Posting> postings;
  uint64_t doc = 100;
  for (int i = 0; i < 60; ++i) {
    doc += 1 + i * 31;
    postings.push_back({doc, static_cast<uint32_t>(i * 7),
                        static_cast<uint32_t>(i * 1000),
                        static_cast<uint32_t>(i * 1000 + 20)});
  }
  std::string bytes;
  ASSERT_TRUE(EncodePostingListGrouped(postings, &bytes).ok());
  // Every strict prefix must be rejected: the count header promises 60
  // postings, so running out of bytes mid-stream is always detectable.
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::string_view in(bytes.data(), len);
    std::vector<Posting> out;
    EXPECT_FALSE(DecodePostingListGrouped(&in, &out).ok())
        << "truncation to " << len << " accepted";
  }
}

TEST(GroupVarintTest, BitFlipsNeverCrashAndNeverYieldInvalidLists) {
  // Without a checksum, a bit flip may still decode (to different
  // postings) — the container layer catches those. At the codec layer the
  // contract is: no UB, and anything accepted is a structurally valid
  // sorted list. Mirrors the scalar codec's rejection tests.
  std::vector<Posting> postings;
  uint64_t doc = 3;
  for (int i = 0; i < 24; ++i) {
    doc += 1 + i;
    postings.push_back({doc, static_cast<uint32_t>(i), 10u * i, 10u * i + 4});
  }
  std::string bytes;
  ASSERT_TRUE(EncodePostingListGrouped(postings, &bytes).ok());
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << bit));
      std::string_view in = corrupt;
      std::vector<Posting> out;
      if (DecodePostingListGrouped(&in, &out).ok()) {
        for (size_t i = 0; i + 1 < out.size(); ++i) {
          EXPECT_LT(out[i], out[i + 1]);
        }
        for (const Posting& p : out) EXPECT_LE(p.begin, p.end);
      }
    }
  }
}

TEST(GroupVarintTest, StructurallyBadHeadersRejected) {
  {
    // Unknown flag byte.
    std::string bytes;
    PutVarint(&bytes, 1);
    bytes.push_back(0x07);
    bytes.append(5, '\0');
    std::string_view in = bytes;
    std::vector<Posting> out;
    EXPECT_FALSE(DecodePostingListGrouped(&in, &out).ok());
  }
  {
    // Count far beyond the available bytes (allocation-bomb guard).
    std::string bytes;
    PutVarint(&bytes, 1ull << 40);
    bytes.push_back(0x01);
    std::string_view in = bytes;
    std::vector<Posting> out;
    EXPECT_FALSE(DecodePostingListGrouped(&in, &out).ok());
  }
  {
    // Scalar-flag payload whose doc gap overflows the accumulator: parity
    // with the scalar codec's overflow rejection.
    std::string payload;
    PutVarint(&payload, 0xffffffffffffffffull);  // first doc id
    PutVarint(&payload, 0);
    PutVarint(&payload, 0);
    PutVarint(&payload, 0);
    PutVarint(&payload, 2);  // second gap: 0xffff... + 2 overflows
    PutVarint(&payload, 0);
    PutVarint(&payload, 0);
    PutVarint(&payload, 0);
    std::string bytes;
    PutVarint(&bytes, 2);
    bytes.push_back(0x00);
    bytes += payload;
    std::string_view in = bytes;
    std::vector<Posting> out;
    EXPECT_FALSE(DecodePostingListGrouped(&in, &out).ok());
  }
}

TEST(GroupVarintTest, SimdDispatchReportsAndMatchesScalarPath) {
  // Informational: on CI hosts with SSSE3/NEON the SIMD kernel must be
  // active; either way the decode above already proved bit-compatibility.
  (void)GroupVarintSimdActive();
  SUCCEED();
}

// ---------------------------------------------------------- store

TEST(AnnotationStoreTest, AppendPersistReopen) {
  std::string dir = FreshDir("append_reopen");
  {
    auto store = AnnotationStore::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(SmallBuilder()).ok());
    SegmentBuilder more;
    more.Add("tp53", 1, 0, 1, Posting{11, 0, 1, 5});
    more.AddCorpusStats(1, 1, 3, 90);
    ASSERT_TRUE((*store)->Append(std::move(more)).ok());
    EXPECT_EQ((*store)->num_segments(), 2u);
  }
  auto reopened = AnnotationStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_segments(), 2u);
  EXPECT_EQ((*reopened)->snapshot().num_postings(), 7u);
}

TEST(AnnotationStoreTest, CorruptSegmentFileRejectedAtOpen) {
  std::string dir = FreshDir("corrupt_open");
  {
    auto store = AnnotationStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(SmallBuilder()).ok());
  }
  // Flip a byte in the middle of the segment file.
  std::string seg_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wseg") seg_path = entry.path();
  }
  ASSERT_FALSE(seg_path.empty());
  std::string bytes = ReadWholeFile(seg_path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  WriteWholeFile(seg_path, bytes);
  auto reopened = AnnotationStore::Open(dir);
  EXPECT_FALSE(reopened.ok());
}

TEST(AnnotationStoreTest, CompactionPreservesContentAndUnlinksInputs) {
  std::string dir = FreshDir("compaction");
  auto store_or = AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  for (int i = 0; i < 4; ++i) {
    SegmentBuilder builder;
    builder.Add("braf", 0, 0, 0,
                Posting{static_cast<uint64_t>(i), 0, 0, 4});
    builder.Add("name" + std::to_string(i), 0, 0, 1,
                Posting{static_cast<uint64_t>(i), 1, 8, 12});
    builder.AddCorpusStats(0, 1, 2, 50);
    ASSERT_TRUE(store->Append(std::move(builder)).ok());
  }
  uint64_t postings_before = store->snapshot().num_postings();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->num_segments(), 1u);
  auto snap = store->snapshot();
  EXPECT_EQ(snap.num_postings(), postings_before);
  const Segment& merged = *snap.segments[0];
  int braf = merged.FindTerm("braf");
  ASSERT_GE(braf, 0);
  auto groups = merged.GroupsForTerm(static_cast<uint32_t>(braf));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].postings.size(), 4u);  // merged + doc-sorted
  EXPECT_EQ(merged.corpus_stats()[0].sentences, 8u);
  // One segment file + MANIFEST remain on disk.
  size_t seg_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wseg") ++seg_files;
  }
  EXPECT_EQ(seg_files, 1u);
  // The store survives a reopen after compaction.
  auto reopened = AnnotationStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->snapshot().num_postings(), postings_before);
}

TEST(AnnotationStoreTest, SnapshotIsolationAcrossCompaction) {
  std::string dir = FreshDir("snapshot_isolation");
  auto store_or = AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  for (int i = 0; i < 3; ++i) {
    SegmentBuilder builder;
    builder.Add("gene" + std::to_string(i), 0, 0, 0,
                Posting{static_cast<uint64_t>(i), 0, 0, 4});
    ASSERT_TRUE(store->Append(std::move(builder)).ok());
  }
  AnnotationStore::Snapshot before = store->snapshot();
  EXPECT_EQ(before.segments.size(), 3u);
  ASSERT_TRUE(store->Compact().ok());
  // The old snapshot still serves the pre-merge segments.
  EXPECT_EQ(before.segments.size(), 3u);
  EXPECT_EQ(before.num_postings(), 3u);
  for (const auto& segment : before.segments) {
    EXPECT_EQ(segment->num_postings(), 1u);
  }
  AnnotationStore::Snapshot after = store->snapshot();
  EXPECT_EQ(after.segments.size(), 1u);
  EXPECT_GT(after.epoch, before.epoch);
  EXPECT_EQ(after.num_postings(), 3u);
}

// ---------------------------------------------------------- store sink

dataflow::Record AnalyzedRecord(int64_t id, const std::string& corpus,
                                const std::string& text, int num_sentences,
                                const std::vector<std::array<std::string, 3>>&
                                    annotations) {
  dataflow::Record record;
  record.SetField("id", id);
  record.SetField("corpus", corpus);
  record.SetField("text", text);
  dataflow::Value::Array sentences;
  for (int i = 0; i < num_sentences; ++i) {
    dataflow::Value sentence;
    sentence.SetField("b", static_cast<int64_t>(i * 10));
    sentence.SetField("e", static_cast<int64_t>(i * 10 + 9));
    sentences.push_back(std::move(sentence));
  }
  record.SetField("sentences", dataflow::Value(std::move(sentences)));
  dataflow::Value::Array entities;
  int offset = 0;
  for (const auto& [type, method, surface] : annotations) {
    dataflow::Value entity;
    entity.SetField("type", type);
    entity.SetField("method", method);
    entity.SetField("surface", surface);
    entity.SetField("b", static_cast<int64_t>(offset));
    entity.SetField("e",
                    static_cast<int64_t>(offset + surface.size()));
    offset += 10;
    entities.push_back(std::move(entity));
  }
  record.SetField("entities", dataflow::Value(std::move(entities)));
  return record;
}

TEST(StoreSinkTest, AccumulatesNormalizedPostingsAndDedupesDocStats) {
  StoreSink sink;
  dataflow::Dataset unused;
  std::vector<dataflow::Record> batch;
  batch.push_back(AnalyzedRecord(1, "Medline", std::string(95, 'x'), 3,
                                 {{"gene", "dict", "BRAF"},
                                  {"gene", "ml", "braf"},
                                  {"bogus", "dict", "skipme"},
                                  {"gene", "unknown", "skipme"}}));
  // The same document arriving on a second union branch: entities
  // accumulate, document stats must not double-count.
  batch.push_back(AnalyzedRecord(1, "Medline", std::string(95, 'x'), 3,
                                 {{"drug", "dict", "Aspirin"}}));
  ASSERT_TRUE(sink.ProcessSpan(batch, &unused).ok());
  EXPECT_TRUE(unused.empty());  // a tap, not a transform
  EXPECT_EQ(sink.postings_accumulated(), 3u);

  auto segment = sink.TakeBuilder().Finish(1);
  ASSERT_TRUE(segment.ok());
  EXPECT_EQ(segment->terms(),
            (std::vector<std::string>{"aspirin", "braf"}));  // lowercased
  int medline = 2;  // corpus::CorpusKind::kMedline
  EXPECT_EQ(segment->corpus_stats()[medline].docs, 1u);
  EXPECT_EQ(segment->corpus_stats()[medline].sentences, 3u);
  EXPECT_EQ(segment->corpus_stats()[medline].chars, 95u);
}

TEST(StoreSinkTest, UnknownCorpusIsAnError) {
  StoreSink sink;
  dataflow::Dataset unused;
  std::vector<dataflow::Record> batch;
  batch.push_back(
      AnalyzedRecord(1, "NoSuchCorpus", "text", 1, {{"gene", "dict", "a"}}));
  EXPECT_FALSE(sink.ProcessSpan(batch, &unused).ok());
}

// ---------------------------------------------------------- serving

std::shared_ptr<AnnotationStore> QueryFixtureStore(const std::string& name) {
  auto store_or = AnnotationStore::Open(FreshDir(name));
  EXPECT_TRUE(store_or.ok());
  auto store = *store_or;
  // Two segments so every query exercises cross-segment aggregation.
  SegmentBuilder first;
  first.Add("braf", 0, 0, 0, Posting{1, 0, 0, 4});
  first.Add("braf", 0, 0, 1, Posting{1, 0, 0, 4});
  first.Add("braf", 0, 0, 0, Posting{2, 1, 5, 9});
  first.Add("aspirin", 0, 1, 0, Posting{1, 0, 10, 17});
  first.AddCorpusStats(0, 2, 10, 200);
  EXPECT_TRUE(store->Append(std::move(first)).ok());
  SegmentBuilder second;
  second.Add("braf", 0, 0, 0, Posting{3, 0, 2, 6});
  second.Add("brca1", 0, 0, 1, Posting{3, 0, 12, 17});
  second.Add("melanoma", 0, 2, 1, Posting{1, 0, 20, 28});
  second.AddCorpusStats(0, 1, 5, 80);
  EXPECT_TRUE(store->Append(std::move(second)).ok());
  return store;
}

TEST(QueryEngineTest, LookupAggregatesAcrossSegments) {
  serve::QueryEngine engine(QueryFixtureStore("qe_lookup"));
  auto result = engine.Lookup("braf", {}, /*max_postings=*/10);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.count, 4u);
  EXPECT_EQ(result.docs, 3u);
  EXPECT_EQ(result.per_corpus[0], 4u);
  EXPECT_EQ(result.postings.size(), 4u);

  serve::QueryFilter dict_only;
  dict_only.method = 0;
  EXPECT_EQ(engine.Lookup("braf", dict_only).count, 3u);
  EXPECT_FALSE(engine.Lookup("nonexistent").found);
}

TEST(QueryEngineTest, PrefixScanDeduplicatesSorted) {
  serve::QueryEngine engine(QueryFixtureStore("qe_prefix"));
  EXPECT_EQ(engine.PrefixScan("br"),
            (std::vector<std::string>{"braf", "brca1"}));
  EXPECT_EQ(engine.PrefixScan("br", 1),
            (std::vector<std::string>{"braf"}));
  EXPECT_TRUE(engine.PrefixScan("zz").empty());
}

TEST(QueryEngineTest, FrequencyMatchesAnalyticsFormula) {
  serve::QueryEngine engine(QueryFixtureStore("qe_freq"));
  auto genes_dict = engine.CorpusFrequency(0, 0, 0);
  EXPECT_EQ(genes_dict.distinct_names, 1u);  // braf
  EXPECT_EQ(genes_dict.annotations, 3u);
  EXPECT_EQ(genes_dict.sentences, 15u);
  EXPECT_DOUBLE_EQ(genes_dict.per_1000_sentences, 1000.0 * 3.0 / 15.0);
  auto genes_all = engine.CorpusFrequency(0, 0);
  EXPECT_EQ(genes_all.distinct_names, 2u);  // braf + brca1, union
  EXPECT_EQ(genes_all.annotations, 5u);
  // Per-method division first, then the sum — analytics evaluation order.
  EXPECT_DOUBLE_EQ(genes_all.per_1000_sentences,
                   1000.0 * 3.0 / 15.0 + 1000.0 * 2.0 / 15.0);
  EXPECT_EQ(engine.CorpusFrequency(-1, 0).annotations, 0u);
}

TEST(QueryEngineTest, TopKDeterministicOrder) {
  serve::QueryEngine engine(QueryFixtureStore("qe_topk"));
  auto top = engine.TopK(10);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].name, "braf");
  EXPECT_EQ(top[0].count, 4u);
  // Ties (count 1) break by name.
  EXPECT_EQ(top[1].name, "aspirin");
  EXPECT_EQ(top[2].name, "brca1");
  EXPECT_EQ(top[3].name, "melanoma");
  EXPECT_EQ(engine.TopK(2).size(), 2u);
}

TEST(QueryEngineTest, CoOccurrenceDocAndSentenceLevel) {
  serve::QueryEngine engine(QueryFixtureStore("qe_cooc"));
  // braf doc 1 sentence 0; aspirin doc 1 sentence 0 — co-occur both ways.
  auto result = engine.CoOccurrence("braf", "aspirin");
  EXPECT_EQ(result.docs, 1u);
  EXPECT_EQ(result.sentences, 1u);
  // braf and melanoma share doc 1 but melanoma has no postings in braf's
  // sentences beyond sentence 0 — same sentence there, still 1/1.
  auto none = engine.CoOccurrence("braf", "nonexistent");
  EXPECT_EQ(none.docs, 0u);
  EXPECT_EQ(none.sentences, 0u);
}

TEST(QueryEngineTest, ServingIndexFastPathMatchesBruteForceWalk) {
  // Randomized store; the engine's index-backed answers must be
  // bit-identical to a brute-force walk over the snapshot's segments
  // (the pre-index reference semantics).
  auto store_or = AnnotationStore::Open(FreshDir("qe_parity"));
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  Rng rng(0x9a71);
  std::vector<std::string> names;
  for (int n = 0; n < 30; ++n) names.push_back("term" + std::to_string(n));
  for (int s = 0; s < 5; ++s) {
    SegmentBuilder builder;
    size_t adds = 20 + rng.Uniform(30);
    for (size_t a = 0; a < adds; ++a) {
      builder.Add(names[rng.Uniform(names.size())],
                  static_cast<uint8_t>(rng.Uniform(3)),
                  static_cast<uint8_t>(rng.Uniform(3)),
                  static_cast<uint8_t>(rng.Uniform(2)),
                  Posting{rng.Uniform(40), static_cast<uint32_t>(rng.Uniform(6)),
                          static_cast<uint32_t>(rng.Uniform(100)),
                          static_cast<uint32_t>(100 + rng.Uniform(100))});
    }
    builder.AddCorpusStats(static_cast<uint8_t>(s % 3), 5, 50, 2000);
    ASSERT_TRUE(store->Append(std::move(builder)).ok());
  }

  serve::QueryEngine engine(store);
  auto snapshot = engine.snapshot();
  for (const auto& name : names) {
    uint64_t count = 0;
    std::set<std::pair<int, uint64_t>> docs;  // distinct (corpus, doc)
    std::array<uint64_t, 4> per_corpus{};
    bool found = false;
    for (const auto& segment : snapshot.segments) {
      int64_t term = -1;
      const auto& terms = segment->terms();
      auto it = std::lower_bound(terms.begin(), terms.end(), name);
      if (it != terms.end() && *it == name) {
        term = it - terms.begin();
        found = true;
      }
      if (term < 0) continue;
      for (const auto& group :
           segment->GroupsForTerm(static_cast<uint32_t>(term))) {
        count += group.postings.size();
        per_corpus[group.corpus] += group.postings.size();
        for (const auto& posting : group.postings) {
          docs.insert({group.corpus, posting.doc_id});
        }
      }
    }
    auto result = engine.Lookup(name);
    EXPECT_EQ(result.found, found) << name;
    EXPECT_EQ(result.count, count) << name;
    EXPECT_EQ(result.docs, docs.size()) << name;
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(result.per_corpus[c], per_corpus[c]) << name << " corpus " << c;
    }
    // The filtered path (posting walks) must agree with the fast path:
    // per-corpus filtered counts sum to the unfiltered total.
    uint64_t filtered_sum = 0;
    for (int c = 0; c < 3; ++c) {
      serve::QueryFilter filter;
      filter.corpus = c;
      filtered_sum += engine.Lookup(name, filter).count;
    }
    EXPECT_EQ(filtered_sum, count) << name;
  }
}

// ---------------------------------------------------------- concurrency

TEST(StoreConcurrencyTest, QueriesNeverFailDuringAppendsAndCompaction) {
  auto store_or = AnnotationStore::Open(FreshDir("concurrent"));
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  // Seed content so readers have something from the start.
  SegmentBuilder seed;
  seed.Add("braf", 0, 0, 0, Posting{0, 0, 0, 4});
  seed.AddCorpusStats(0, 1, 4, 100);
  ASSERT_TRUE(store->Append(std::move(seed)).ok());

  serve::QueryEngine engine(store);
  BackgroundCompactor compactor(store, /*min_segments=*/3,
                                std::chrono::milliseconds(1));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};

  std::thread writer([&] {
    for (int i = 1; i <= 40; ++i) {
      SegmentBuilder builder;
      builder.Add("braf", 0, 0, 0,
                  Posting{static_cast<uint64_t>(i), 0, 0, 4});
      builder.Add("gene" + std::to_string(i), 0, 0, 1,
                  Posting{static_cast<uint64_t>(i), 1, 8, 12});
      builder.AddCorpusStats(0, 1, 4, 100);
      if (!store->Append(std::move(builder)).ok()) ++anomalies;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    stop = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last_braf = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto lookup = engine.Lookup("braf");
        // braf only ever gains postings; a count going backwards would
        // mean a query observed a half-installed segment set.
        if (!lookup.found || lookup.count < last_braf) ++anomalies;
        last_braf = lookup.count;
        if (engine.TopK(3).empty()) ++anomalies;
        auto frequency = engine.CorpusFrequency(0, 0, 0);
        if (frequency.sentences == 0) ++anomalies;
        engine.PrefixScan("gene", 5);
        if ((t & 1) != 0) {
          engine.CoOccurrence("braf", "gene7");
        }
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  compactor.Stop();
  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(compactor.compactions_run(), 0u);
  // Everything written is present after the dust settles.
  EXPECT_EQ(engine.Lookup("braf").count, 41u);
  EXPECT_EQ(engine.Lookup("braf").docs, 41u);
}

}  // namespace
}  // namespace wsie::store
