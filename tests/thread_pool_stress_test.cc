// Concurrency stress tests for the shared thread pool, run under TSAN by
// scripts/tsan_check.sh (ctest -L tsan). They hammer the invariants the
// morsel executor and the crawler rely on: concurrent Submit()+Wait() from
// several client threads, and MorselFor() calls that must track their own
// completion instead of waiting on unrelated work.

#include "common/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wsie {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kClients = 8;
  constexpr int kTasksPerClient = 200;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kTasksPerClient; ++i) {
        pool.Submit([&counter] {
          counter.fetch_add(1, std::memory_order_relaxed);
        });
      }
      pool.Wait();
    });
  }
  for (auto& t : clients) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), kClients * kTasksPerClient);
}

TEST(ThreadPoolStressTest, ConcurrentMorselForCallers) {
  // Several threads drive independent MorselFor loops over one pool; each
  // call must see exactly its own indices complete before returning.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kItems = 500;
  std::vector<std::thread> callers;
  std::vector<std::atomic<size_t>> sums(kCallers);
  for (auto& s : sums) s = 0;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      bool complete = pool.MorselFor(kItems, 4, [&, c](size_t i) {
        sums[static_cast<size_t>(c)].fetch_add(i + 1,
                                               std::memory_order_relaxed);
        return true;
      });
      EXPECT_TRUE(complete);
      // MorselFor returned: every index of THIS call has run, regardless of
      // the other callers' in-flight work.
      EXPECT_EQ(sums[static_cast<size_t>(c)].load(),
                kItems * (kItems + 1) / 2);
    });
  }
  for (auto& t : callers) t.join();
}

TEST(ThreadPoolStressTest, MorselForCancellationStopsScheduling) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  bool complete = pool.MorselFor(10000, 4, [&](size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i < 5;  // cancel early
  });
  EXPECT_FALSE(complete);
  // Already-claimed morsels may finish, but the bulk must never run.
  EXPECT_LT(calls.load(), 1000u);
}

TEST(ThreadPoolStressTest, MorselForSkewedWorkCompletes) {
  // One very heavy item among many light ones: the shared cursor keeps the
  // other workers busy and the call still completes every index.
  ThreadPool pool(4);
  std::atomic<size_t> done{0};
  bool complete = pool.MorselFor(64, 4, [&](size_t i) {
    if (i == 0) {
      std::atomic<int> spin{0};
      while (spin.load(std::memory_order_relaxed) < 2000000) {
        spin.fetch_add(1, std::memory_order_relaxed);
      }
    }
    done.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  EXPECT_TRUE(complete);
  EXPECT_EQ(done.load(), 64u);
}

TEST(ThreadPoolStressTest, ParallelForChurn) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    pool.ParallelFor(97, [&](size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(hits.load(), 97);
  }
}

TEST(ThreadPoolStressTest, MorselForMoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<size_t> done{0};
  EXPECT_TRUE(pool.MorselFor(3, 16, [&](size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
    return true;
  }));
  EXPECT_EQ(done.load(), 3u);
  EXPECT_TRUE(pool.MorselFor(0, 4, [&](size_t) { return true; }));
}

}  // namespace
}  // namespace wsie
