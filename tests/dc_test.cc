// Tests for the extension modules: near-duplicate detection (DC package),
// relation extraction, annotation merging, JSON round-tripping, and the
// consolidated crawl+IE feedback signal.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/ie_feedback.h"
#include "core/operators_dc.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "dataflow/executor.h"
#include "dataflow/json.h"
#include "dc/near_duplicate.h"
#include "ie/relation_extractor.h"

namespace wsie {
namespace {

// ------------------------------------------------------------ MinHash

TEST(ShingleTest, ProducesDistinctShingles) {
  auto a = dc::ShingleSet("the quick brown fox jumps over the lazy dog", 3);
  EXPECT_GT(a.size(), 3u);
  // Deduplicated and sorted.
  for (size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
}

TEST(ShingleTest, CaseInsensitive) {
  EXPECT_EQ(dc::ShingleSet("The Quick Brown Fox", 2),
            dc::ShingleSet("the quick brown fox", 2));
}

TEST(ShingleTest, ShortTextSingleShingle) {
  EXPECT_EQ(dc::ShingleSet("one two", 4).size(), 1u);
  EXPECT_TRUE(dc::ShingleSet("", 4).empty());
}

TEST(MinHashTest, IdenticalTextsFullSimilarity) {
  dc::NearDuplicateIndex index;
  std::string text = "patients were treated with the drug over several weeks "
                     "and the results of the study were reported in detail";
  auto a = index.Signature(text);
  auto b = index.Signature(text);
  EXPECT_DOUBLE_EQ(dc::JaccardEstimate(a, b), 1.0);
}

TEST(MinHashTest, DisjointTextsLowSimilarity) {
  dc::NearDuplicateIndex index;
  auto a = index.Signature(
      "alpha beta gamma delta epsilon zeta eta theta iota kappa");
  auto b = index.Signature(
      "one two three four five six seven eight nine ten eleven");
  EXPECT_LT(dc::JaccardEstimate(a, b), 0.2);
}

TEST(MinHashTest, SlightEditStaysSimilar) {
  dc::NearDuplicateIndex index;
  std::string base =
      "patients were treated with the drug over several weeks and the "
      "results of the long running study were reported in detail by the "
      "clinical team at the research hospital during the annual meeting";
  std::string edited = base + " yesterday";
  double sim = dc::JaccardEstimate(index.Signature(base),
                                   index.Signature(edited));
  EXPECT_GT(sim, 0.7);
}

TEST(NearDuplicateIndexTest, DetectsExactDuplicate) {
  dc::NearDuplicateIndex index;
  std::string text =
      "this syndicated article about gene therapy appears on many mirror "
      "sites across the web with identical wording everywhere always";
  EXPECT_EQ(index.AddIfNovel(1, text), -1);
  EXPECT_EQ(index.AddIfNovel(2, text), 1);
  EXPECT_EQ(index.size(), 1u);
}

TEST(NearDuplicateIndexTest, DistinctDocumentsBothIndexed) {
  dc::NearDuplicateIndex index;
  EXPECT_EQ(index.AddIfNovel(1, "completely unique first document about "
                                "genes and proteins in cells"),
            -1);
  EXPECT_EQ(index.AddIfNovel(2, "a totally different second text about "
                                "football scores and match results"),
            -1);
  EXPECT_EQ(index.size(), 2u);
}

TEST(NearDuplicateIndexTest, GeneratedCorpusHasNoFalseDuplicates) {
  corpus::EntityLexicons lexicons(corpus::LexiconConfig{500, 100, 100, 3});
  corpus::TextGenerator generator(
      &lexicons, corpus::ProfileFor(corpus::CorpusKind::kMedline), 8);
  dc::NearDuplicateIndex index;
  size_t duplicates = 0;
  for (int i = 0; i < 40; ++i) {
    if (index.AddIfNovel(i, generator.GenerateDocument(i).text) >= 0) {
      ++duplicates;
    }
  }
  EXPECT_EQ(duplicates, 0u);
}

// ------------------------------------------------------------ Relations

ie::Annotation MakeEntity(ie::EntityType type, uint32_t b, uint32_t e,
                          const char* surface) {
  ie::Annotation a;
  a.entity_type = type;
  a.begin = b;
  a.end = e;
  a.surface = surface;
  a.method = ie::AnnotationMethod::kDictionary;
  return a;
}

TEST(RelationExtractorTest, DrugTreatsDiseaseWithTrigger) {
  ie::RelationExtractor extractor;
  std::string sentence = "Aspirin treats chronic migraine in most patients";
  auto relations = extractor.ExtractFromSentence(
      sentence, 0,
      {MakeEntity(ie::EntityType::kDrug, 0, 7, "Aspirin"),
       MakeEntity(ie::EntityType::kDisease, 15, 31, "chronic migraine")});
  ASSERT_EQ(relations.size(), 1u);
  EXPECT_EQ(relations[0].type, ie::RelationType::kDrugTreatsDisease);
  EXPECT_EQ(relations[0].arg1.surface, "Aspirin");
  EXPECT_EQ(relations[0].arg2.surface, "chronic migraine");
  EXPECT_EQ(relations[0].trigger, "treats");
  EXPECT_GT(relations[0].confidence, 0.7);
}

TEST(RelationExtractorTest, ArgumentOrderNormalized) {
  ie::RelationExtractor extractor;
  std::string sentence = "In lung cancer the drug Imatinib helps";
  auto relations = extractor.ExtractFromSentence(
      sentence, 0,
      {MakeEntity(ie::EntityType::kDisease, 3, 14, "lung cancer"),
       MakeEntity(ie::EntityType::kDrug, 24, 32, "Imatinib")});
  ASSERT_EQ(relations.size(), 1u);
  // Drug is always arg1 of drug-treats-disease.
  EXPECT_EQ(relations[0].arg1.surface, "Imatinib");
}

TEST(RelationExtractorTest, NegationLowersConfidence) {
  ie::RelationExtractor extractor;
  std::string plain = "Aspirin treats migraine";
  std::string negated = "Aspirin does not treat migraine";
  auto r1 = extractor.ExtractFromSentence(
      plain, 0,
      {MakeEntity(ie::EntityType::kDrug, 0, 7, "Aspirin"),
       MakeEntity(ie::EntityType::kDisease, 15, 23, "migraine")});
  auto r2 = extractor.ExtractFromSentence(
      negated, 0,
      {MakeEntity(ie::EntityType::kDrug, 0, 7, "Aspirin"),
       MakeEntity(ie::EntityType::kDisease, 23, 31, "migraine")});
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_GT(r1[0].confidence, r2[0].confidence);
}

TEST(RelationExtractorTest, SameTypePairsIgnored) {
  ie::RelationExtractor extractor;
  auto relations = extractor.ExtractFromSentence(
      "BRCA1 and TP53 interact", 0,
      {MakeEntity(ie::EntityType::kGene, 0, 5, "BRCA1"),
       MakeEntity(ie::EntityType::kGene, 10, 14, "TP53")});
  EXPECT_TRUE(relations.empty());
}

TEST(RelationExtractorTest, GeneDiseaseAndDrugGeneTypes) {
  ie::RelationExtractor extractor;
  auto r1 = extractor.ExtractFromSentence(
      "BRCA1 mutations are associated with breast cancer", 0,
      {MakeEntity(ie::EntityType::kGene, 0, 5, "BRCA1"),
       MakeEntity(ie::EntityType::kDisease, 36, 49, "breast cancer")});
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].type, ie::RelationType::kGeneAssociatedDisease);
  EXPECT_FALSE(r1[0].trigger.empty());

  auto r2 = extractor.ExtractFromSentence(
      "Imatinib inhibits KRAS2 expression", 0,
      {MakeEntity(ie::EntityType::kDrug, 0, 8, "Imatinib"),
       MakeEntity(ie::EntityType::kGene, 18, 23, "KRAS2")});
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2[0].type, ie::RelationType::kDrugTargetsGene);
}

TEST(RelationExtractorTest, DistantPairsSkipped) {
  ie::RelationExtractorOptions options;
  options.max_span_chars = 10;
  ie::RelationExtractor extractor(options);
  auto relations = extractor.ExtractFromSentence(
      "Aspirin and lots of unrelated words before migraine", 0,
      {MakeEntity(ie::EntityType::kDrug, 0, 7, "Aspirin"),
       MakeEntity(ie::EntityType::kDisease, 43, 51, "migraine")});
  EXPECT_TRUE(relations.empty());
}

TEST(RelationExtractorTest, TypeNames) {
  EXPECT_STREQ(ie::RelationTypeName(ie::RelationType::kDrugTreatsDisease),
               "drug-treats-disease");
  EXPECT_STREQ(ie::RelationTypeName(ie::RelationType::kDrugTargetsGene),
               "drug-targets-gene");
}

// ------------------------------------------------------------ JSON

TEST(JsonTest, RoundTripsScalars) {
  for (const char* json : {"null", "true", "false", "42", "-7", "\"text\""}) {
    auto v = dataflow::ParseJson(json);
    ASSERT_TRUE(v.ok()) << json;
    EXPECT_EQ(v->ToJson(), json);
  }
}

TEST(JsonTest, RoundTripsNested) {
  const char* json = "{\"a\":[1,2,{\"b\":\"x\"}],\"c\":true}";
  auto v = dataflow::ParseJson(json);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToJson(), json);
}

TEST(JsonTest, ParsesDoublesAndEscapes) {
  auto v = dataflow::ParseJson("{\"pi\":3.5,\"s\":\"a\\nb\\\"c\\\"\"}");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->Field("pi").AsDouble(), 3.5);
  EXPECT_EQ(v->Field("s").AsString(), "a\nb\"c\"");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(dataflow::ParseJson("{").ok());
  EXPECT_FALSE(dataflow::ParseJson("[1,]").ok());
  EXPECT_FALSE(dataflow::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(dataflow::ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(dataflow::ParseJson("12 34").ok());
  EXPECT_FALSE(dataflow::ParseJson("").ok());
}

TEST(JsonTest, JsonlFileRoundTrip) {
  dataflow::Dataset records;
  for (int i = 0; i < 5; ++i) {
    dataflow::Record r;
    r.SetField("id", i);
    r.SetField("text", "doc " + std::to_string(i));
    records.push_back(std::move(r));
  }
  std::string path = ::testing::TempDir() + "/wsie_jsonl_test.jsonl";
  ASSERT_TRUE(dataflow::WriteJsonl(path, records).ok());
  auto loaded = dataflow::ReadJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), records.size());
  EXPECT_EQ((*loaded)[3].Field("text").AsString(), "doc 3");
  std::remove(path.c_str());
}

TEST(JsonTest, ReadMissingFileFails) {
  EXPECT_FALSE(dataflow::ReadJsonl("/no/such/file.jsonl").ok());
}

// ------------------------------------------------- Operators end-to-end

class DcOperatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::AnalysisContextConfig config;
    config.crf_training_sentences = 200;
    config.pos_training_sentences = 600;
    context_ = new std::shared_ptr<const core::AnalysisContext>(
        std::make_shared<const core::AnalysisContext>(config));
  }
  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
  }
  static core::ContextPtr context() { return *context_; }
  static std::shared_ptr<const core::AnalysisContext>* context_;
};

std::shared_ptr<const core::AnalysisContext>* DcOperatorTest::context_ =
    nullptr;

TEST_F(DcOperatorTest, DeduplicateOperatorDropsCopies) {
  corpus::TextGenerator generator(
      &context()->lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline),
      4);
  auto docs = generator.GenerateCorpus(1, 6);
  // Duplicate two documents under new ids (mirror pages).
  auto copy1 = docs[0];
  copy1.id = 100;
  auto copy2 = docs[3];
  copy2.id = 101;
  docs.push_back(copy1);
  docs.push_back(copy2);

  dataflow::Plan plan;
  int src = plan.AddSource("docs");
  plan.MarkSink(plan.AddNode(core::MakeDeduplicateDocuments(), {src}), "out");
  dataflow::Executor executor(dataflow::ExecutorConfig{2, 0, 4});
  auto result =
      executor.Run(plan, {{"docs", core::DocumentsToRecords(docs)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sink_outputs.at("out").size(), 6u);
}

TEST_F(DcOperatorTest, MergeAnnotationsPreferMl) {
  dataflow::Record r;
  r.SetField(core::kFieldId, 1);
  dataflow::Value dict_ann, ml_ann, elsewhere;
  dict_ann.SetField("b", 0);
  dict_ann.SetField("e", 5);
  dict_ann.SetField("type", "gene");
  dict_ann.SetField("method", "dict");
  dict_ann.SetField("surface", "BRCA1");
  ml_ann.SetField("b", 0);
  ml_ann.SetField("e", 5);
  ml_ann.SetField("type", "gene");
  ml_ann.SetField("method", "ml");
  ml_ann.SetField("surface", "BRCA1");
  elsewhere.SetField("b", 20);
  elsewhere.SetField("e", 27);
  elsewhere.SetField("type", "drug");
  elsewhere.SetField("method", "dict");
  elsewhere.SetField("surface", "Aspirin");
  r.SetField(core::kFieldEntities,
             dataflow::Value(dataflow::Value::Array{dict_ann, ml_ann,
                                                    elsewhere}));

  auto op = core::MakeMergeAnnotations(core::MergeStrategy::kPreferMl);
  dataflow::Dataset out;
  ASSERT_TRUE(op->ProcessBatch({r}, &out).ok());
  const auto& merged = out[0].Field(core::kFieldEntities).AsArray();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].Field("method").AsString(), "ml");
  EXPECT_EQ(merged[1].Field("surface").AsString(), "Aspirin");
}

TEST_F(DcOperatorTest, MergeStrategiesDiffer) {
  dataflow::Record r;
  r.SetField(core::kFieldId, 1);
  dataflow::Value short_ml, long_dict;
  short_ml.SetField("b", 2);
  short_ml.SetField("e", 7);
  short_ml.SetField("type", "disease");
  short_ml.SetField("method", "ml");
  short_ml.SetField("surface", "tumor");
  long_dict.SetField("b", 0);
  long_dict.SetField("e", 12);
  long_dict.SetField("type", "disease");
  long_dict.SetField("method", "dict");
  long_dict.SetField("surface", "a tumor mass");
  r.SetField(core::kFieldEntities,
             dataflow::Value(dataflow::Value::Array{short_ml, long_dict}));

  dataflow::Dataset out_longest, out_ml;
  ASSERT_TRUE(core::MakeMergeAnnotations(core::MergeStrategy::kLongest)
                  ->ProcessBatch({r}, &out_longest)
                  .ok());
  ASSERT_TRUE(core::MakeMergeAnnotations(core::MergeStrategy::kPreferMl)
                  ->ProcessBatch({r}, &out_ml)
                  .ok());
  EXPECT_EQ(out_longest[0].Field(core::kFieldEntities).AsArray()[0]
                .Field("method")
                .AsString(),
            "dict");
  EXPECT_EQ(out_ml[0].Field(core::kFieldEntities).AsArray()[0]
                .Field("method")
                .AsString(),
            "ml");
}

TEST_F(DcOperatorTest, RelationFlowFindsRelations) {
  corpus::TextGenerator generator(
      &context()->lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline),
      12);
  auto docs = generator.GenerateCorpus(1, 80);

  dataflow::Plan plan;
  int node = plan.AddSource("docs");
  node = plan.AddNode(core::MakeAnnotateSentences(context()), {node});
  node = plan.AddNode(
      core::MakeAnnotateEntitiesDict(context(), ie::EntityType::kDrug), {node});
  node = plan.AddNode(
      core::MakeAnnotateEntitiesDict(context(), ie::EntityType::kDisease),
      {node});
  node = plan.AddNode(core::MakeExtractRelations(context()), {node});
  plan.MarkSink(node, "out");

  dataflow::Executor executor(dataflow::ExecutorConfig{2, 0, 4});
  auto result =
      executor.Run(plan, {{"docs", core::DocumentsToRecords(docs)}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t relations = 0;
  for (const auto& r : result->sink_outputs.at("out")) {
    for (const auto& rel : r.Field(core::kFieldRelations).AsArray()) {
      ++relations;
      EXPECT_FALSE(rel.Field("arg1").AsString().empty());
      EXPECT_FALSE(rel.Field("arg2").AsString().empty());
      double confidence = rel.Field("confidence").AsDouble();
      EXPECT_GE(confidence, 0.0);
      EXPECT_LE(confidence, 1.0);
    }
  }
  // Medline text mentions drugs and diseases in one sentence regularly,
  // but both mentions must also survive the incomplete dictionaries, so
  // only a handful of relation instances remain at this corpus size.
  EXPECT_GE(relations, 3u);
}

TEST_F(DcOperatorTest, MeteorScriptUsesExtensionOperators) {
  dataflow::OperatorRegistry registry;
  core::RegisterPipelineOperators(context(), &registry);
  dataflow::MeteorParser parser(&registry);
  auto plan = parser.Parse(R"(
    $docs = read 'docs';
    $uniq = deduplicate_documents $docs;
    $sent = annotate_sentences $uniq;
    $ents = annotate_entities $sent type 'drug' method 'dict';
    $more = annotate_entities $ents type 'drug' method 'ml';
    $good = merge_annotations $more strategy 'prefer-ml';
    $rels = extract_relations $good min_confidence '0.4';
    write $rels 'out';
  )");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_operators(), 6u);
}

// ------------------------------------------------------------ Feedback

TEST_F(DcOperatorTest, EntityDensitySignalSeparatesCorpora) {
  core::EntityDensitySignal signal(context());
  corpus::TextGenerator biomed(
      &context()->lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline),
      31);
  corpus::TextGenerator off(
      &context()->lexicons(),
      corpus::ProfileFor(corpus::CorpusKind::kIrrelevantWeb), 32);
  double biomed_score = 0, off_score = 0;
  for (int i = 0; i < 10; ++i) {
    biomed_score += signal.Score(biomed.GenerateDocument(i).text);
    off_score += signal.Score(off.GenerateDocument(i).text);
  }
  EXPECT_GT(biomed_score, 3 * off_score);
  EXPECT_EQ(signal.Score(""), 0.0);
}

}  // namespace
}  // namespace wsie
