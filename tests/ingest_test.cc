// The parallel write path's determinism gates. Three properties, each over
// randomized inputs and the thread counts {1, 2, 3, 8}:
//
//   1. Partitioned compaction merge (store/parallel_merge.cc) produces a
//      segment whose encoded bytes equal the serial SegmentBuilder
//      MergeSegment/Finish loop's, at every worker and partition count.
//   2. Batched Vamana construction (vec/ann_index.cc) produces the same
//      encoded index at every pool width — the graph depends only on
//      (names, config), with build_batch part of the config and persisted.
//   3. Incremental maintenance: terms introduced by Append() after a
//      vector-index build are similarity-searchable in the same epoch
//      (exact delta merged with the graph, recall@10 >= 0.95 against a
//      brute-force scan of the term union) and the next Compact() folds
//      them into a rebuilt graph byte-identical to a fresh Build over the
//      union, collapsing the delta to null.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"
#include "store/parallel_merge.h"
#include "store/segment.h"
#include "vec/ann_index.h"
#include "vec/delta_index.h"
#include "vec/distance.h"
#include "vec/embedder.h"

namespace wsie::store {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "wsie_ingest_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A randomized segment: terms drawn (with overlap across segments) from a
/// shared vocabulary, each with a random handful of postings spread over
/// random (corpus, type, method) groups.
std::shared_ptr<const Segment> RandomSegment(Rng* rng, uint64_t id,
                                             size_t vocabulary,
                                             size_t num_terms) {
  SegmentBuilder builder;
  for (size_t t = 0; t < num_terms; ++t) {
    const std::string name =
        "term-" + std::to_string(rng->Uniform(vocabulary));
    const size_t postings = 1 + rng->Uniform(4);
    for (size_t p = 0; p < postings; ++p) {
      const auto corpus = static_cast<uint8_t>(rng->Uniform(kNumCorpora));
      const auto type = static_cast<uint8_t>(rng->Uniform(kNumTypes));
      const auto method = static_cast<uint8_t>(rng->Uniform(kNumMethods));
      const auto begin = static_cast<uint32_t>(rng->Uniform(1000));
      builder.Add(name, corpus, type, method,
                  Posting{rng->Uniform(500), static_cast<uint32_t>(
                                                 rng->Uniform(30)),
                          begin, begin + 4});
    }
  }
  builder.AddCorpusStats(static_cast<uint8_t>(rng->Uniform(kNumCorpora)),
                         num_terms, 2 * num_terms, 100 * num_terms);
  auto segment_or = builder.Finish(id);
  EXPECT_TRUE(segment_or.ok());
  return std::make_shared<const Segment>(std::move(*segment_or));
}

TEST(ParallelMergeTest, ByteIdenticalToSerialAcrossThreadCounts) {
  Rng rng(20260808);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::shared_ptr<const Segment>> segments;
    const size_t count = 2 + rng.Uniform(4);
    for (size_t i = 0; i < count; ++i) {
      segments.push_back(
          RandomSegment(&rng, i + 1, /*vocabulary=*/120, 30 + rng.Uniform(90)));
    }

    SegmentBuilder serial;
    for (const auto& segment : segments) serial.MergeSegment(*segment);
    auto serial_or = serial.Finish(999);
    ASSERT_TRUE(serial_or.ok());
    const std::string expected = serial_or->Encode();

    for (const size_t threads : {1u, 2u, 3u, 8u}) {
      ThreadPool pool(threads);
      for (const size_t partitions : {0u, 1u, 5u, 64u}) {
        auto merged_or =
            MergeSegmentsParallel(segments, 999, &pool, threads, partitions);
        ASSERT_TRUE(merged_or.ok());
        EXPECT_EQ(expected, merged_or->Encode())
            << "round " << round << " threads " << threads << " partitions "
            << partitions;
        EXPECT_EQ(serial_or->num_postings(), merged_or->num_postings());
        EXPECT_EQ(serial_or->corpus_stats(), merged_or->corpus_stats());
      }
    }
  }
}

TEST(ParallelMergeTest, SingleAndEmptyInputs) {
  Rng rng(7);
  const auto segment = RandomSegment(&rng, 1, 40, 25);
  SegmentBuilder serial;
  serial.MergeSegment(*segment);
  auto serial_or = serial.Finish(2);
  ASSERT_TRUE(serial_or.ok());
  auto merged_or = MergeSegmentsParallel({segment}, 2);
  ASSERT_TRUE(merged_or.ok());
  EXPECT_EQ(serial_or->Encode(), merged_or->Encode());

  auto empty_or = MergeSegmentsParallel({}, 3);
  ASSERT_TRUE(empty_or.ok());
  EXPECT_EQ(empty_or->terms().size(), 0u);
  EXPECT_EQ(empty_or->num_postings(), 0u);
}

vec::VecIndexConfig SmallVecConfig() {
  vec::VecIndexConfig config;
  config.embedder.dim = 64;
  config.max_degree = 16;
  config.build_beam = 32;
  return config;
}

std::vector<std::string> RandomNames(Rng* rng, size_t n,
                                     const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(prefix + std::to_string(rng->Uniform(10 * n)));
  }
  return names;
}

TEST(ParallelVamanaTest, ByteIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const auto names = RandomNames(&rng, 300, "gene-");
  for (const uint32_t batch : {1u, 7u, 64u}) {
    vec::VecIndexConfig config = SmallVecConfig();
    config.build_batch = batch;
    std::string expected;
    for (const size_t threads : {1u, 2u, 3u, 8u}) {
      ThreadPool pool(threads);
      vec::VecBuildOptions options;
      options.pool = &pool;
      options.workers = threads;
      auto index_or = vec::VecIndex::Build(names, config, 5, options);
      ASSERT_TRUE(index_or.ok());
      const std::string encoded = index_or->Encode();
      if (expected.empty()) {
        expected = encoded;
      } else {
        EXPECT_EQ(expected, encoded)
            << "batch " << batch << " threads " << threads;
      }
    }
  }
}

TEST(ParallelVamanaTest, BatchSizeIsPersistedAndPartOfIdentity) {
  vec::VecIndexConfig config = SmallVecConfig();
  config.build_batch = 7;
  auto index_or = vec::VecIndex::Build({"a", "b", "c", "d"}, config, 9);
  ASSERT_TRUE(index_or.ok());
  auto decoded_or = vec::VecIndex::Decode(index_or->Encode());
  ASSERT_TRUE(decoded_or.ok());
  EXPECT_EQ(decoded_or->config().build_batch, 7u);
  EXPECT_EQ(decoded_or->config(), config);

  config.build_batch = 0;
  EXPECT_FALSE(vec::VecIndex::Build({"a"}, config).ok());
}

// --------------------------------------------------------- delta index

store::SegmentBuilder SegmentWithNames(const std::vector<std::string>& names,
                                       uint64_t doc_base) {
  store::SegmentBuilder builder;
  uint64_t doc = doc_base;
  for (const std::string& name : names) {
    builder.Add(name, 0, 0, 0, store::Posting{doc, 0, 0, 4});
    ++doc;
  }
  builder.AddCorpusStats(0, names.size(), names.size(), 100 * names.size());
  return builder;
}

/// Exact top-k names over an arbitrary name set by (distance, name) — the
/// golden reference the delta-merged Similar answers are gated against.
std::vector<std::string> BruteForceNeighbors(
    const std::vector<std::string>& universe, const vec::EmbedderConfig& config,
    const std::string& query_text, size_t k) {
  vec::Embedder embedder(config);
  std::vector<float> query(config.dim);
  embedder.Embed(query_text, query.data());
  std::vector<std::pair<float, std::string>> scored;
  std::vector<float> row(config.dim);
  for (const std::string& name : universe) {
    if (name == query_text) continue;  // Similar drops the query entity
    embedder.Embed(name, row.data());
    scored.emplace_back(
        vec::L2SquaredF32(query.data(), row.data(), config.dim), name);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<std::string> names;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    names.push_back(scored[i].second);
  }
  return names;
}

TEST(DeltaIndexTest, AppendedTermsSearchableBeforeAndAfterCompaction) {
  const std::string dir = FreshDir("delta");
  auto store_or = AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;

  Rng rng(1234);
  std::vector<std::string> base = RandomNames(&rng, 150, "braf-");
  ASSERT_TRUE(store->Append(SegmentWithNames(base, 0)).ok());
  ASSERT_TRUE(store->BuildVectorIndex(SmallVecConfig()).ok());
  ASSERT_EQ(store->snapshot().delta, nullptr);

  // Terms first seen after the build: visible to Similar immediately.
  std::vector<std::string> fresh = RandomNames(&rng, 40, "novel-");
  ASSERT_TRUE(store->Append(SegmentWithNames(fresh, 1000)).ok());
  auto after_append = store->snapshot();
  ASSERT_NE(after_append.delta, nullptr);
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  EXPECT_EQ(after_append.delta->size(), fresh.size());
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(obs::MetricsRegistry::Global().Snapshot().GaugeValue(
                  "wsie.vec.index.stale_terms"),
              static_cast<double>(fresh.size()));
  }

  serve::QueryEngine engine(store);
  // An appended term queried by name: found, with its delta embedding.
  auto self = engine.Similar(fresh.front(), 10);
  EXPECT_TRUE(self.index_available);
  EXPECT_TRUE(self.found);
  ASSERT_FALSE(self.neighbors.empty());

  // Recall@10 against the exact union scan, over a sample of queries.
  std::vector<std::string> universe;
  {
    auto pin_names = after_append.vectors->names();
    universe = pin_names;
    universe.insert(universe.end(), after_append.delta->names().begin(),
                    after_append.delta->names().end());
  }
  const vec::EmbedderConfig embed_config = SmallVecConfig().embedder;
  size_t hit = 0, want = 0;
  for (size_t q = 0; q < 15; ++q) {
    const std::string query = "query-" + std::to_string(q);
    const auto exact =
        BruteForceNeighbors(universe, embed_config, query, 10);
    const auto got = engine.Similar(query, 10);
    for (const auto& neighbor : got.neighbors) {
      if (std::find(exact.begin(), exact.end(), neighbor.name) !=
          exact.end()) {
        ++hit;
      }
    }
    want += exact.size();
  }
  EXPECT_GE(static_cast<double>(hit), 0.95 * static_cast<double>(want))
      << hit << "/" << want;

  // Every delta term must itself be findable among its own neighbors'
  // queries — i.e. querying the exact term text ranks it found, exact.
  for (const std::string& name : fresh) {
    EXPECT_TRUE(engine.Similar(name, 5).found) << name;
  }

  // Compact() folds the delta into a full rebuild: the published graph is
  // byte-identical to a fresh Build over the union, and the delta is gone.
  ASSERT_TRUE(store->Compact().ok());
  auto after_compact = store->snapshot();
  EXPECT_EQ(after_compact.delta, nullptr);
  if (obs::MetricsEnabled()) {
    EXPECT_EQ(obs::MetricsRegistry::Global().Snapshot().GaugeValue(
                  "wsie.vec.index.stale_terms"),
              0.0);
  }
  ASSERT_NE(after_compact.vectors, nullptr);
  for (const std::string& name : fresh) {
    EXPECT_GE(after_compact.vectors->FindName(name), 0) << name;
  }
  auto fresh_build_or = vec::VecIndex::Build(universe, SmallVecConfig(),
                                             after_compact.vectors->id());
  ASSERT_TRUE(fresh_build_or.ok());
  EXPECT_EQ(fresh_build_or->Encode(), after_compact.vectors->Encode());

  // The rebuilt graph serves the formerly-stale terms directly.
  for (const std::string& name : fresh) {
    EXPECT_TRUE(engine.Similar(name, 5).found) << name;
  }
}

TEST(DeltaIndexTest, RepeatedAppendsOfKnownTermsKeepDeltaNull) {
  const std::string dir = FreshDir("delta_null");
  auto store_or = AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  Rng rng(99);
  const auto names = RandomNames(&rng, 60, "egfr-");
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 0)).ok());
  ASSERT_TRUE(store->BuildVectorIndex(SmallVecConfig()).ok());
  const auto before = store->snapshot();
  // Re-appending already-indexed names must not spawn a delta, and the
  // immutable graph rides along by pointer.
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 5000)).ok());
  const auto after = store->snapshot();
  EXPECT_EQ(after.delta, nullptr);
  EXPECT_EQ(after.vectors.get(), before.vectors.get());
}

TEST(DeltaIndexTest, DeltaSurvivesReopen) {
  const std::string dir = FreshDir("delta_reopen");
  std::vector<std::string> fresh;
  {
    auto store_or = AnnotationStore::Open(dir);
    ASSERT_TRUE(store_or.ok());
    auto store = *store_or;
    Rng rng(5);
    ASSERT_TRUE(
        store->Append(SegmentWithNames(RandomNames(&rng, 50, "kras-"), 0))
            .ok());
    ASSERT_TRUE(store->BuildVectorIndex(SmallVecConfig()).ok());
    fresh = RandomNames(&rng, 20, "fresh-");
    ASSERT_TRUE(store->Append(SegmentWithNames(fresh, 900)).ok());
    ASSERT_NE(store->snapshot().delta, nullptr);
  }
  // The delta is never persisted; reopen re-derives it from the manifest's
  // segments minus the vec file's names.
  auto reopened_or = AnnotationStore::Open(dir);
  ASSERT_TRUE(reopened_or.ok());
  auto snapshot = (*reopened_or)->snapshot();
  ASSERT_NE(snapshot.delta, nullptr);
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  EXPECT_EQ(snapshot.delta->size(), fresh.size());
  serve::QueryEngine engine(*reopened_or);
  EXPECT_TRUE(engine.Similar(fresh.front(), 5).found);
}

}  // namespace
}  // namespace wsie::store
