#include <gtest/gtest.h>

#include "common/rng.h"
#include "nlp/abbreviation.h"
#include "nlp/linguistic.h"
#include "nlp/pos_tagger.h"
#include "nlp/tagset.h"
#include "text/tokenizer.h"

namespace wsie::nlp {
namespace {

// ------------------------------------------------------------ Tagset

TEST(TagsetTest, NameRoundTrip) {
  for (int i = 0; i < kNumPosTags; ++i) {
    PosTag tag = static_cast<PosTag>(i);
    EXPECT_EQ(PosTagFromName(PosTagName(tag)), tag);
  }
}

TEST(TagsetTest, UnknownName) {
  EXPECT_EQ(PosTagFromName("NOPE"), PosTag::kNumTags);
}

TEST(TagsetTest, NounAndVerbPredicates) {
  EXPECT_TRUE(IsNounTag(PosTag::kNN));
  EXPECT_TRUE(IsNounTag(PosTag::kNNP));
  EXPECT_FALSE(IsNounTag(PosTag::kVB));
  EXPECT_TRUE(IsVerbTag(PosTag::kVBD));
  EXPECT_TRUE(IsVerbTag(PosTag::kMD));
  EXPECT_FALSE(IsVerbTag(PosTag::kJJ));
}

// ------------------------------------------------------------ PosTagger

std::vector<text::Token> Tokens(const std::string& sentence) {
  static const text::Tokenizer kTokenizer;
  return kTokenizer.Tokenize(sentence);
}

TEST(PosTaggerTest, TreebankGenerationDeterministic) {
  Rng a(1), b(1);
  auto ta = PosTagger::GenerateTreebank(a, 50);
  auto tb = PosTagger::GenerateTreebank(b, 50);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].words, tb[i].words);
  }
}

TEST(PosTaggerTest, AccuracyOnHeldOutTreebank) {
  PosTagger tagger;
  tagger.TrainDefault(/*seed=*/1, /*num_sentences=*/3000);
  Rng rng(999);  // held-out draw
  auto held_out = PosTagger::GenerateTreebank(rng, 200);
  size_t correct = 0, total = 0;
  for (const PosSentence& sentence : held_out) {
    std::vector<text::Token> tokens;
    size_t offset = 0;
    for (const std::string& w : sentence.words) {
      tokens.push_back(text::Token{w, offset, offset + w.size()});
      offset += w.size() + 1;
    }
    auto tags = tagger.TagTokens(tokens);
    ASSERT_EQ(tags.size(), sentence.tags.size());
    for (size_t i = 0; i < tags.size(); ++i) {
      if (tags[i] == sentence.tags[i]) ++correct;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(PosTaggerTest, UnknownWordsGetPlausibleTags) {
  PosTagger tagger;
  tagger.TrainDefault();
  auto tags = tagger.TagTokens(Tokens("the flibbertigibbets inhibited it"));
  ASSERT_EQ(tags.size(), 4u);
  EXPECT_EQ(tags[0], PosTag::kDT);
  // "-s" suffix on an unknown word after a determiner: plural noun.
  EXPECT_EQ(tags[1], PosTag::kNNS);
}

TEST(PosTaggerTest, OverflowOnLongSentences) {
  PosTagger tagger;
  tagger.TrainDefault(1, 500);
  tagger.set_max_tokens_per_sentence(10);
  std::vector<text::Token> long_sentence;
  for (int i = 0; i < 11; ++i) {
    long_sentence.push_back(text::Token{"word", 0, 4});
  }
  bool overflowed = false;
  auto tags = tagger.TagTokens(long_sentence, &overflowed);
  EXPECT_TRUE(overflowed);
  EXPECT_TRUE(tags.empty());
}

TEST(PosTaggerTest, NoOverflowWhenUnlimited) {
  PosTagger tagger;
  tagger.TrainDefault(1, 500);
  tagger.set_max_tokens_per_sentence(0);
  std::vector<text::Token> long_sentence;
  for (int i = 0; i < 50; ++i) {
    long_sentence.push_back(text::Token{"word", 0, 4});
  }
  bool overflowed = true;
  auto tags = tagger.TagTokens(long_sentence, &overflowed);
  EXPECT_FALSE(overflowed);
  EXPECT_EQ(tags.size(), 50u);
}

TEST(PosTaggerTest, EmptyInput) {
  PosTagger tagger;
  tagger.TrainDefault(1, 200);
  EXPECT_TRUE(tagger.TagTokens({}).empty());
}

// ------------------------------------------------------------ Linguistic

TEST(LinguisticTest, FindsNegationWords) {
  LinguisticExtractor extractor;
  auto annotations =
      extractor.FindNegations(1, 0, "It did not work, neither did this, nor that");
  ASSERT_EQ(annotations.size(), 3u);
  EXPECT_EQ(annotations[0].surface, "not");
  EXPECT_EQ(annotations[1].surface, "neither");
  EXPECT_EQ(annotations[2].surface, "nor");
  EXPECT_EQ(annotations[0].category, "negation");
}

TEST(LinguisticTest, NegationCaseInsensitive) {
  LinguisticExtractor extractor;
  EXPECT_EQ(extractor.FindNegations(1, 0, "Not here").size(), 1u);
}

TEST(LinguisticTest, NegationNotSubstring) {
  LinguisticExtractor extractor;
  // "knot" and "nothing" must not match the word "not".
  EXPECT_TRUE(extractor.FindNegations(1, 0, "a knot of nothing").empty());
}

TEST(LinguisticTest, NegationOffsets) {
  LinguisticExtractor extractor;
  std::string sentence = "It is not true";
  auto annotations = extractor.FindNegations(3, 2, sentence, 100);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].doc_id, 3u);
  EXPECT_EQ(annotations[0].sentence_id, 2u);
  EXPECT_EQ(annotations[0].begin, 106u);
  EXPECT_EQ(annotations[0].end, 109u);
}

TEST(LinguisticTest, ClassifiesPronounClasses) {
  LinguisticExtractor extractor;
  EXPECT_EQ(extractor.ClassifyPronoun("they"), PronounClass::kPersonalSubject);
  EXPECT_EQ(extractor.ClassifyPronoun("them"), PronounClass::kObject);
  EXPECT_EQ(extractor.ClassifyPronoun("their"), PronounClass::kPossessive);
  EXPECT_EQ(extractor.ClassifyPronoun("these"), PronounClass::kDemonstrative);
  EXPECT_EQ(extractor.ClassifyPronoun("which"), PronounClass::kRelative);
  EXPECT_EQ(extractor.ClassifyPronoun("itself"), PronounClass::kReflexive);
  EXPECT_EQ(extractor.ClassifyPronoun("gene"), PronounClass::kNumClasses);
}

TEST(LinguisticTest, FindsPronounsWithCategories) {
  LinguisticExtractor extractor;
  auto annotations =
      extractor.FindPronouns(1, 0, "They gave it to them, which helped");
  ASSERT_EQ(annotations.size(), 4u);
  EXPECT_EQ(annotations[0].category, "pronoun/personal");
  EXPECT_EQ(annotations[3].category, "pronoun/relative");
}

TEST(LinguisticTest, PronounClassNames) {
  EXPECT_STREQ(PronounClassName(PronounClass::kDemonstrative),
               "demonstrative");
  EXPECT_STREQ(PronounClassName(PronounClass::kObject), "object");
}

TEST(LinguisticTest, FindsParentheses) {
  LinguisticExtractor extractor;
  auto annotations =
      extractor.FindParentheses(1, 0, "The gene (BRCA1) was found (again)");
  ASSERT_EQ(annotations.size(), 2u);
  EXPECT_EQ(annotations[0].surface, "(BRCA1)");
  EXPECT_EQ(annotations[1].surface, "(again)");
  EXPECT_EQ(annotations[0].category, "parenthesis");
}

TEST(LinguisticTest, NestedParentheses) {
  LinguisticExtractor extractor;
  auto annotations = extractor.FindParentheses(1, 0, "a (b (c) d) e");
  ASSERT_EQ(annotations.size(), 2u);
  EXPECT_EQ(annotations[0].surface, "(c)");
  EXPECT_EQ(annotations[1].surface, "(b (c) d)");
}

TEST(LinguisticTest, UnclosedParenthesisRunsToEnd) {
  LinguisticExtractor extractor;
  auto annotations = extractor.FindParentheses(1, 0, "broken (web text");
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].surface, "(web text");
}

TEST(LinguisticTest, EmptySentence) {
  LinguisticExtractor extractor;
  EXPECT_TRUE(extractor.FindNegations(1, 0, "").empty());
  EXPECT_TRUE(extractor.FindPronouns(1, 0, "").empty());
  EXPECT_TRUE(extractor.FindParentheses(1, 0, "").empty());
}

// ------------------------------------------------------------ Abbreviation

TEST(AbbreviationTest, ClassicDefinition) {
  AbbreviationDetector detector;
  auto defs = detector.Find(
      "Patients with chronic lung disease (CLD) were enrolled");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].short_form, "CLD");
  EXPECT_EQ(defs[0].long_form, "chronic lung disease");
}

TEST(AbbreviationTest, OffsetsPointIntoSentence) {
  AbbreviationDetector detector;
  std::string sentence = "We measured gene expression (GE) daily";
  auto defs = detector.Find(sentence);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(sentence.substr(defs[0].short_begin,
                            defs[0].short_end - defs[0].short_begin),
            "GE");
  EXPECT_EQ(sentence.substr(defs[0].long_begin,
                            defs[0].long_end - defs[0].long_begin),
            "gene expression");
}

TEST(AbbreviationTest, SingleWordPrefixAbbreviation) {
  AbbreviationDetector detector;
  auto defs = detector.Find("They received Imatinib (IMA) twice");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0].long_form, "Imatinib");
}

TEST(AbbreviationTest, RejectsNonMatchingParenthetical) {
  AbbreviationDetector detector;
  EXPECT_TRUE(detector.Find("The results (see Figure 3) were clear").empty());
  EXPECT_TRUE(detector.Find("The cohort (XQZ) was small").empty());
}

TEST(AbbreviationTest, RejectsInvalidShortForms) {
  EXPECT_FALSE(AbbreviationDetector::IsValidShortForm(""));
  EXPECT_FALSE(AbbreviationDetector::IsValidShortForm("A"));
  EXPECT_FALSE(AbbreviationDetector::IsValidShortForm("(x)"));
  EXPECT_FALSE(AbbreviationDetector::IsValidShortForm("three word form"));
  EXPECT_FALSE(
      AbbreviationDetector::IsValidShortForm("waytoolongshortform"));
  EXPECT_TRUE(AbbreviationDetector::IsValidShortForm("CLD"));
  EXPECT_TRUE(AbbreviationDetector::IsValidShortForm("GAD-67"));
}

TEST(AbbreviationTest, MultipleDefinitionsInOneSentence) {
  AbbreviationDetector detector;
  auto defs = detector.Find(
      "Both breast cancer (BC) and lung cancer (LC) respond");
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0].short_form, "BC");
  EXPECT_EQ(defs[1].short_form, "LC");
}

TEST(AbbreviationTest, AnnotationsCarryCategoryAndOffsets) {
  AbbreviationDetector detector;
  auto annotations = detector.FindAsAnnotations(
      7, 2, "chronic lung disease (CLD) again", 100);
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_EQ(annotations[0].category, "abbreviation");
  EXPECT_EQ(annotations[0].doc_id, 7u);
  EXPECT_EQ(annotations[0].begin, 100u);
  EXPECT_EQ(annotations[0].surface, "CLD=chronic lung disease");
}

TEST(AbbreviationTest, LongFormMustExceedShortForm) {
  AbbreviationDetector detector;
  EXPECT_TRUE(detector.Find("ab (AB) cd").empty());
}

}  // namespace
}  // namespace wsie::nlp
