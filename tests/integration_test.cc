// End-to-end integration: focused crawl over the simulated web feeding the
// analysis pipeline, and the four-corpus comparison orderings the paper
// reports.

#include <gtest/gtest.h>

#include <memory>

#include "core/analysis_context.h"
#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

namespace wsie {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::AnalysisContextConfig config;
    config.crf_training_sentences = 500;
    config.pos_training_sentences = 1000;
    context_ = new std::shared_ptr<const core::AnalysisContext>(
        std::make_shared<const core::AnalysisContext>(config));
  }
  static void TearDownTestSuite() {
    delete context_;
    context_ = nullptr;
  }
  static core::ContextPtr context() { return *context_; }

  static core::CorpusAnalysis Analyze(corpus::CorpusKind kind, size_t n,
                                      uint64_t seed) {
    corpus::TextGenerator generator(&context()->lexicons(),
                                    corpus::ProfileFor(kind), seed);
    auto docs = generator.GenerateCorpus(seed * 10000, n);
    core::FlowOptions options;
    dataflow::Plan plan = core::BuildAnalysisFlow(context(), options);
    auto result = core::RunFlow(plan, docs, dataflow::ExecutorConfig{4, 0, 4});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return core::AnalyzeRecords(kind, result->sink_outputs.at("analyzed"));
  }

  static std::shared_ptr<const core::AnalysisContext>* context_;
};

std::shared_ptr<const core::AnalysisContext>* IntegrationTest::context_ =
    nullptr;

TEST_F(IntegrationTest, SeededCrawlFeedsPipeline) {
  web::WebConfig web_config;
  web_config.num_hosts = 60;
  web_config.mean_pages_per_host = 8;
  web_config.seed = 77;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &context()->lexicons());
  web::SearchEngineFederation engines(&sim);

  // Seed generation via keyword queries (Sect. 2.2).
  crawler::SeedGenerator seeder(&context()->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{20, 30, 30, 30});
  ASSERT_GT(seeds.seed_urls.size(), 10u);

  // Focused crawl.
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 120;
  classifier_config.relevance_threshold = 0.5;
  crawler::RelevanceClassifier classifier(&context()->lexicons(),
                                          classifier_config);
  crawler::CrawlerConfig crawl_config;
  crawl_config.max_pages = 250;
  crawler::FocusedCrawler crawler(&sim, &classifier, crawl_config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  ASSERT_GT(crawler.relevant_corpus().size(), 3u);

  // Analysis flow over the crawled relevant corpus (already net text, so no
  // web preprocessing needed).
  core::FlowOptions options;
  dataflow::Plan plan = core::BuildAnalysisFlow(context(), options);
  auto result = core::RunFlow(plan, crawler.relevant_corpus().documents(),
                              dataflow::ExecutorConfig{4, 0, 4});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto analysis = core::AnalyzeRecords(corpus::CorpusKind::kRelevantWeb,
                                       result->sink_outputs.at("analyzed"));
  EXPECT_EQ(analysis.num_docs(), crawler.relevant_corpus().size());
  EXPECT_GT(analysis.total_sentences, 0u);
}

TEST_F(IntegrationTest, FourCorpusOrderingsMatchPaper) {
  auto rel = Analyze(corpus::CorpusKind::kRelevantWeb, 35, 1);
  auto irrel = Analyze(corpus::CorpusKind::kIrrelevantWeb, 25, 2);
  auto medline = Analyze(corpus::CorpusKind::kMedline, 60, 3);
  auto pmc = Analyze(corpus::CorpusKind::kPmc, 25, 4);

  // Table 3: document lengths rel > pmc > irrel > medline.
  EXPECT_GT(rel.mean_chars(), pmc.mean_chars());
  EXPECT_GT(pmc.mean_chars(), irrel.mean_chars());
  EXPECT_GT(irrel.mean_chars(), medline.mean_chars());

  // Fig. 6a: the differences are significant.
  EXPECT_LT(core::MwwPValue(rel.DocLengths(), medline.DocLengths()), 0.01);
  EXPECT_LT(core::MwwPValue(rel.DocLengths(), irrel.DocLengths()), 0.01);
  EXPECT_LT(core::MwwPValue(rel.DocLengths(), pmc.DocLengths()), 0.05);

  // Fig. 7: per-1000-sentence entity densities — relevant web dwarfs the
  // irrelevant crawl for every type (dictionary method; the ML gene tagger
  // inflates irrelevant pages with TLA false positives, as in the paper).
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    EXPECT_GT(rel.EntitiesPer1000Sentences(type, 0),
              4 * irrel.EntitiesPer1000Sentences(type, 0))
        << "type " << type;
  }
  EXPECT_GT(medline.EntitiesPer1000Sentences(1, 0),  // drug dict
            rel.EntitiesPer1000Sentences(1, 0));

  // Table 4: ML produces more distinct names than the dictionary, and the
  // relevant crawl yields more distinct names than the irrelevant crawl.
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    EXPECT_GE(rel.DistinctNames(type, 1), rel.DistinctNames(type, 0))
        << "type " << type;
    EXPECT_GT(rel.DistinctNames(type, 0), irrel.DistinctNames(type, 0))
        << "type " << type;
  }

  // Sect. 4.3.2 JSD orderings: rel-irrel > rel-medline and rel-irrel >
  // rel-pmc (dictionary names).
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    double rel_irrel = core::EntityDistributionJsd(rel, irrel, type, 0);
    double rel_medl = core::EntityDistributionJsd(rel, medline, type, 0);
    double rel_pmc = core::EntityDistributionJsd(rel, pmc, type, 0);
    EXPECT_GT(rel_irrel, rel_medl) << "type " << type;
    EXPECT_GT(rel_irrel, rel_pmc) << "type " << type;
  }

  // Fig. 8: the rel/irrel overlap of dictionary names is small relative to
  // the rel/medline overlap.
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    auto rel_names = core::DistinctNameSet(rel, type, 0);
    auto irrel_names = core::DistinctNameSet(irrel, type, 0);
    auto medl_names = core::DistinctNameSet(medline, type, 0);
    size_t rel_irrel = 0, rel_medl = 0;
    for (const auto& name : rel_names) {
      if (irrel_names.count(name)) ++rel_irrel;
      if (medl_names.count(name)) ++rel_medl;
    }
    EXPECT_GT(rel_medl, rel_irrel) << "type " << type;
  }
}

TEST_F(IntegrationTest, NegationIncidenceOrdering) {
  auto rel = Analyze(corpus::CorpusKind::kRelevantWeb, 20, 5);
  auto medline = Analyze(corpus::CorpusKind::kMedline, 50, 6);
  auto pmc = Analyze(corpus::CorpusKind::kPmc, 20, 7);

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  double rel_neg = mean(rel.NegationsPer100Sentences());
  double medline_neg = mean(medline.NegationsPer100Sentences());
  double pmc_neg = mean(pmc.NegationsPer100Sentences());
  // Fig. 6c: pmc > rel > medline.
  EXPECT_GT(pmc_neg, rel_neg);
  EXPECT_GT(rel_neg, medline_neg);
  EXPECT_LT(core::MwwPValue(pmc.NegationsPer100Sentences(),
                            medline.NegationsPer100Sentences()),
            0.01);
}

TEST_F(IntegrationTest, PronounAndParenthesisFindings) {
  auto rel = Analyze(corpus::CorpusKind::kRelevantWeb, 20, 8);
  auto pmc = Analyze(corpus::CorpusKind::kPmc, 20, 9);
  auto irrel = Analyze(corpus::CorpusKind::kIrrelevantWeb, 20, 10);

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  // Sect. 4.3.1: demonstrative/relative/object pronouns lower in both web
  // corpora than in PMC.
  for (auto cls : {nlp::PronounClass::kDemonstrative,
                   nlp::PronounClass::kRelative, nlp::PronounClass::kObject}) {
    double pmc_rate = mean(pmc.PronounsPer100Sentences(cls));
    EXPECT_GE(pmc_rate, mean(rel.PronounsPer100Sentences(cls)))
        << PronounClassName(cls);
  }
  // Parentheses: PMC highest, irrelevant lowest.
  EXPECT_GT(mean(pmc.ParenthesesPer100Sentences()),
            mean(rel.ParenthesesPer100Sentences()));
  EXPECT_GT(mean(rel.ParenthesesPer100Sentences()),
            mean(irrel.ParenthesesPer100Sentences()));
}

}  // namespace
}  // namespace wsie
