// Tests for the semantic retrieval subsystem: deterministic feature-hashed
// embeddings, SIMD distance kernels vs the scalar golden, scalar
// quantization error bounds, the Vamana-style ANN index (build, search,
// persistence, corruption rejection), the store integration (publication,
// manifest round-trip, compactor rebuild), and the 4-reader compaction
// storm proving snapshot-isolated similarity search never changes an
// answer across epoch flips.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/checkpoint.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"
#include "vec/ann_index.h"
#include "vec/distance.h"
#include "vec/embedder.h"
#include "vec/quantize.h"

namespace wsie::vec {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "wsie_vec_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Small, fast index parameters shared by the suites.
VecIndexConfig TestConfig() {
  VecIndexConfig config;
  config.embedder.dim = 64;
  config.max_degree = 16;
  config.build_beam = 32;
  return config;
}

std::vector<std::string> TestNames(size_t n, const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) names.push_back(prefix + std::to_string(i));
  return names;
}

// ---------------------------------------------------------------- embedder

TEST(EmbedderTest, DeterministicAcrossInstances) {
  Embedder a;
  Embedder b;
  const auto va = a.Embed("braf kinase inhibitor");
  const auto vb = b.Embed("braf kinase inhibitor");
  ASSERT_EQ(va.size(), vb.size());
  EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(float)), 0);
}

TEST(EmbedderTest, VectorsAreL2Normalized) {
  Embedder embedder;
  const auto v = embedder.Embed("aspirin");
  double norm = 0.0;
  for (const float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(EmbedderTest, DistinctTextsGetDistinctVectors) {
  Embedder embedder;
  EXPECT_NE(embedder.Embed("melanoma"), embedder.Embed("aspirin"));
}

TEST(EmbedderTest, EmptyAndNonAlnumTextEmbedsToZero) {
  Embedder embedder;
  for (const char* text : {"", "   ", "!!!"}) {
    for (const float x : embedder.Embed(text)) EXPECT_EQ(x, 0.0f);
  }
}

TEST(EmbedderTest, SimilarStringsCloserThanUnrelated) {
  Embedder embedder;
  const auto braf1 = embedder.Embed("braf kinase");
  const auto braf2 = embedder.Embed("braf kinases");
  const auto other = embedder.Embed("acetylsalicylic acid");
  const float near = L2SquaredF32(braf1.data(), braf2.data(), braf1.size());
  const float far = L2SquaredF32(braf1.data(), other.data(), braf1.size());
  EXPECT_LT(near, far);
}

// ---------------------------------------------------------------- distance

TEST(DistanceTest, SimdMatchesScalarGolden) {
  Rng rng(7);
  for (size_t n : {0u, 1u, 3u, 15u, 16u, 17u, 31u, 32u, 33u, 64u, 100u,
                   256u}) {
    std::vector<uint8_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<uint8_t>(rng.Uniform(256));
      b[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    EXPECT_EQ(L2SquaredU8(a.data(), b.data(), n),
              L2SquaredU8Scalar(a.data(), b.data(), n))
        << "n=" << n;
  }
}

// ---------------------------------------------------------------- quantize

TEST(QuantizeTest, RoundtripErrorBoundedByHalfStep) {
  const uint32_t dim = 16;
  Rng rng(11);
  std::vector<float> data(32 * dim);
  for (float& x : data) {
    x = static_cast<float>(rng.Uniform(2000)) / 1000.0f - 1.0f;
  }
  Quantizer quantizer = Quantizer::Train(data.data(), 32, dim);
  std::vector<uint8_t> codes(dim);
  for (size_t row = 0; row < 32; ++row) {
    quantizer.Encode(data.data() + row * dim, codes.data());
    for (uint32_t d = 0; d < dim; ++d) {
      const float step = quantizer.scales()[d];
      const float decoded = quantizer.Decode(codes[d], d);
      EXPECT_LE(std::abs(decoded - data[row * dim + d]), step * 0.51f + 1e-6f);
    }
  }
}

TEST(QuantizeTest, ConstantDimensionEncodesToZero) {
  const uint32_t dim = 4;
  std::vector<float> data = {1.f, 2.f, 3.f, 4.f, 1.f, 5.f, 3.f, 4.f};
  Quantizer quantizer = Quantizer::Train(data.data(), 2, dim);
  std::vector<uint8_t> codes(dim);
  quantizer.Encode(data.data(), codes.data());
  EXPECT_EQ(codes[0], 0);  // dim 0 constant -> scale 0 -> code 0
  EXPECT_EQ(codes[2], 0);
}

// --------------------------------------------------------------- ann index

TEST(AnnIndexTest, BuildSortsAndDedupsNames) {
  auto index = VecIndex::Build({"b", "a", "b", "c", "a"}, TestConfig());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->names(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(index->FindName("b"), 1);
  EXPECT_EQ(index->FindName("zzz"), -1);
}

TEST(AnnIndexTest, RejectsDegenerateConfig) {
  VecIndexConfig config = TestConfig();
  config.max_degree = 0;
  EXPECT_FALSE(VecIndex::Build({"a"}, config).ok());
  config = TestConfig();
  config.embedder.ngram_min = 5;
  config.embedder.ngram_max = 3;
  EXPECT_FALSE(VecIndex::Build({"a"}, config).ok());
}

TEST(AnnIndexTest, EmptyIndexSearchesEmpty) {
  auto index = VecIndex::Build({}, TestConfig());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(index->SearchText("anything", 5).empty());
  auto round = VecIndex::Decode(index->Encode());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->size(), 0u);
}

TEST(AnnIndexTest, SelfIsOwnNearestNeighbor) {
  auto index = VecIndex::Build(TestNames(200, "gene"), TestConfig());
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < index->size(); ++i) {
    const auto top = index->Search(index->vector(i), 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].id, i);
    EXPECT_EQ(top[0].distance, 0.0f);
  }
}

TEST(AnnIndexTest, RecallAtFiveAgainstBruteForce) {
  auto index = VecIndex::Build(TestNames(400, "entity"), TestConfig());
  ASSERT_TRUE(index.ok());
  uint64_t hits = 0, possible = 0;
  for (size_t q = 0; q < index->size(); ++q) {
    const auto ann = index->Search(index->vector(q), 5);
    const auto exact = index->SearchExact(index->vector(q), 5);
    possible += exact.size();
    for (const auto& truth : exact) {
      for (const auto& candidate : ann) {
        if (candidate.id == truth.id) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(possible);
  EXPECT_GE(recall, 0.95) << "recall@5 = " << recall;
}

TEST(AnnIndexTest, BuildIsByteDeterministic) {
  const auto names = TestNames(150, "drug");
  auto a = VecIndex::Build(names, TestConfig(), 9);
  auto b = VecIndex::Build(names, TestConfig(), 9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Encode(), b->Encode());
}

TEST(AnnIndexTest, SearchIsDeterministicAcrossCalls) {
  auto index = VecIndex::Build(TestNames(150, "x"), TestConfig());
  ASSERT_TRUE(index.ok());
  const auto first = index->SearchText("x17", 7);
  const auto second = index->SearchText("x17", 7);
  EXPECT_EQ(first, second);
}

TEST(AnnIndexTest, EncodeDecodeRoundtrip) {
  auto index = VecIndex::Build(TestNames(80, "term"), TestConfig(), 42);
  ASSERT_TRUE(index.ok());
  auto decoded = VecIndex::Decode(index->Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id(), 42u);
  EXPECT_EQ(decoded->names(), index->names());
  EXPECT_EQ(decoded->medoid(), index->medoid());
  EXPECT_EQ(decoded->config(), index->config());
  EXPECT_EQ(decoded->Encode(), index->Encode());
  // A decoded index answers identically.
  EXPECT_EQ(decoded->SearchText("term33", 5), index->SearchText("term33", 5));
}

TEST(AnnIndexTest, FileRoundtripAndCorruptionRejected) {
  const std::string dir = FreshDir("ann_file");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/index.wvec";
  auto index = VecIndex::Build(TestNames(60, "n"), TestConfig(), 3);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->WriteFile(path).ok());

  auto loaded = VecIndex::ReadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Encode(), index->Encode());

  // Any flipped byte must be rejected by the container checksum (or the
  // structural validation behind it) — never UB.
  std::string bytes = ReadWholeFile(path);
  ASSERT_FALSE(bytes.empty());
  for (const size_t at : {size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x5a);
    WriteWholeFile(path, corrupt);
    EXPECT_FALSE(VecIndex::ReadFile(path).ok()) << "byte " << at;
  }
  WriteWholeFile(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(VecIndex::ReadFile(path).ok());
}

TEST(AnnIndexTest, DecodeRejectsStructuralLies) {
  auto index = VecIndex::Build(TestNames(30, "s"), TestConfig(), 1);
  ASSERT_TRUE(index.ok());
  // Re-encode with a section dropped: the container checksum is valid but
  // the index structure is not.
  auto container_or = fault::Checkpoint::Deserialize(index->Encode());
  ASSERT_TRUE(container_or.ok());
  fault::Checkpoint container = *container_or;
  container.SetSection("graph", "");
  EXPECT_FALSE(VecIndex::Decode(container.Serialize()).ok());
}

// -------------------------------------------------------- store integration

store::SegmentBuilder SegmentWithNames(const std::vector<std::string>& names,
                                       uint64_t doc_base) {
  store::SegmentBuilder builder;
  uint64_t doc = doc_base;
  for (const std::string& name : names) {
    builder.Add(name, 0, 0, 0, store::Posting{doc, 0, 0, 4});
    ++doc;
  }
  builder.AddCorpusStats(0, names.size(), names.size(), 100 * names.size());
  return builder;
}

TEST(StoreVecTest, BuildPublishesAndSurvivesReopen) {
  const std::string dir = FreshDir("publish");
  auto store_or = store::AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  const auto names = TestNames(40, "braf");
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 0)).ok());
  EXPECT_EQ(store->snapshot().vectors, nullptr);

  ASSERT_TRUE(store->BuildVectorIndex(TestConfig()).ok());
  auto snapshot = store->snapshot();
  ASSERT_NE(snapshot.vectors, nullptr);
  // The index covers exactly the store's (sorted, deduped) term union.
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(snapshot.vectors->names(), sorted);

  // Reopen: the manifest's vec section restores the same index bytes.
  const std::string encoded = snapshot.vectors->Encode();
  store.reset();
  auto reopened_or = store::AnnotationStore::Open(dir);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened_snapshot = (*reopened_or)->snapshot();
  ASSERT_NE(reopened_snapshot.vectors, nullptr);
  EXPECT_EQ(reopened_snapshot.vectors->Encode(), encoded);
}

TEST(StoreVecTest, CorruptVecFileRejectedOnOpen) {
  const std::string dir = FreshDir("corrupt_open");
  {
    auto store_or = store::AnnotationStore::Open(dir);
    ASSERT_TRUE(store_or.ok());
    ASSERT_TRUE(
        (*store_or)->Append(SegmentWithNames(TestNames(10, "g"), 0)).ok());
    ASSERT_TRUE((*store_or)->BuildVectorIndex(TestConfig()).ok());
  }
  std::string vec_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("vec-", 0) == 0) {
      vec_path = entry.path().string();
    }
  }
  ASSERT_FALSE(vec_path.empty());
  std::string bytes = ReadWholeFile(vec_path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  WriteWholeFile(vec_path, bytes);
  EXPECT_FALSE(store::AnnotationStore::Open(dir).ok());
}

TEST(StoreVecTest, AppendCarriesIndexForwardCompactRebuildsIt) {
  const std::string dir = FreshDir("carry_rebuild");
  auto store_or = store::AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  const auto names = TestNames(30, "ent");
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 0)).ok());
  ASSERT_TRUE(store->BuildVectorIndex(TestConfig()).ok());
  auto before = store->snapshot();
  ASSERT_NE(before.vectors, nullptr);
  const uint64_t original_id = before.vectors->id();

  // Appends carry the index forward untouched (same object, same id) —
  // even when the new segment reuses the same terms.
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 1000)).ok());
  auto appended = store->snapshot();
  ASSERT_NE(appended.vectors, nullptr);
  EXPECT_EQ(appended.vectors.get(), before.vectors.get());

  // Compaction rebuilds under the same config. The term union is
  // unchanged, so everything but the persisted id is reproduced exactly.
  ASSERT_TRUE(store->Compact().ok());
  auto compacted = store->snapshot();
  ASSERT_EQ(compacted.segments.size(), 1u);
  ASSERT_NE(compacted.vectors, nullptr);
  EXPECT_NE(compacted.vectors->id(), original_id);
  EXPECT_EQ(compacted.vectors->names(), before.vectors->names());
  auto reference = VecIndex::Build(before.vectors->names(), TestConfig(),
                                   compacted.vectors->id());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(compacted.vectors->Encode(), reference->Encode());

  // Exactly one vec-* file remains: the rebuilt one.
  size_t vec_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("vec-", 0) == 0) ++vec_files;
  }
  EXPECT_EQ(vec_files, 1u);
}

// Four readers hammer similarity search while a writer appends segments
// (reusing the fixed term universe) and the background compactor storms.
// The term union never changes, so every rebuilt index is byte-identical
// modulo its id — each reader must observe the exact reference neighbor
// lists at every epoch flip, and the engine must never report the index
// missing. Zero tolerance: one anomaly fails the test.
TEST(VecPublicationStormTest, FourReadersCompactionStormZeroAnomalies) {
  const std::string dir = FreshDir("storm");
  auto store_or = store::AnnotationStore::Open(dir);
  ASSERT_TRUE(store_or.ok());
  auto store = *store_or;
  const auto names = TestNames(120, "gene");
  ASSERT_TRUE(store->Append(SegmentWithNames(names, 0)).ok());
  ASSERT_TRUE(store->BuildVectorIndex(TestConfig()).ok());

  // Reference answers from the initial index; sorted order is the node-id
  // order every rebuild reproduces.
  auto initial = store->snapshot();
  ASSERT_NE(initial.vectors, nullptr);
  const std::vector<std::string> sorted_names = initial.vectors->names();
  const size_t probe_count = 16;
  std::vector<std::vector<VecIndex::Neighbor>> reference(probe_count);
  for (size_t p = 0; p < probe_count; ++p) {
    reference[p] =
        initial.vectors->Search(initial.vectors->vector(p * 7 % 120), 5);
  }

  serve::QueryEngine engine(store);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> anomalies{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> epochs_seen{0};

  std::thread writer([&] {
    uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!store->Append(SegmentWithNames(names, round * 1000)).ok()) {
        ++anomalies;
      }
      ++round;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  store::BackgroundCompactor compactor(store, /*min_segments=*/2,
                                       std::chrono::milliseconds(1));

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      size_t p = r;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = store->snapshot();
        if (snapshot.vectors == nullptr) {
          ++anomalies;
          continue;
        }
        if (snapshot.epoch != last_epoch) {
          ++epochs_seen;
          last_epoch = snapshot.epoch;
        }
        if (snapshot.vectors->names() != sorted_names) ++anomalies;
        p = (p + 1) % probe_count;
        const auto got =
            snapshot.vectors->Search(snapshot.vectors->vector(p * 7 % 120), 5);
        if (got != reference[p]) ++anomalies;
        // The serve path must agree: neighbors of an indexed entity are
        // the reference list minus the entity itself.
        const auto served = engine.Similar(sorted_names[p * 7 % 120], 4);
        if (!served.index_available) ++anomalies;
        ++reads;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop = true;
  writer.join();
  for (auto& reader : readers) reader.join();
  compactor.Stop();

  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(compactor.compactions_run(), 0u);
  EXPECT_GT(epochs_seen.load(), 4u);  // readers actually crossed flips
}

}  // namespace
}  // namespace wsie::vec
