// Property-based tests (parameterized sweeps over seeds, corpora, and
// entity types): invariants that must hold for every instance, not just
// hand-picked examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "corpus/lexicon.h"
#include "corpus/text_generator.h"
#include "html/html_parser.h"
#include "html/html_repair.h"
#include "ie/aho_corasick.h"
#include "ie/dictionary_tagger.h"
#include "ml/stats.h"
#include "store/posting_codec.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"
#include "web/page_renderer.h"
#include "web/url.h"

namespace wsie {
namespace {

const corpus::EntityLexicons& SharedLexicons() {
  static const corpus::EntityLexicons* kLexicons =
      new corpus::EntityLexicons(corpus::LexiconConfig{1500, 250, 250, 77});
  return *kLexicons;
}

// ---------------------------------------------------------------------------
// Property: for every corpus kind and seed, generated documents have gold
// entity offsets that exactly reproduce the entity name, sentence counts
// that are positive, and text within sane length bounds.

using CorpusSeedParam = std::tuple<corpus::CorpusKind, uint64_t>;

class GeneratorProperty : public ::testing::TestWithParam<CorpusSeedParam> {};

TEST_P(GeneratorProperty, GoldOffsetsAndShapeInvariants) {
  auto [kind, seed] = GetParam();
  corpus::CorpusProfile profile = corpus::ProfileFor(kind);
  corpus::TextGenerator generator(&SharedLexicons(), profile, seed);
  for (int i = 0; i < 5; ++i) {
    corpus::Document doc = generator.GenerateDocument(i);
    EXPECT_GE(doc.text.size(), 100u);
    EXPECT_GT(doc.gold_sentences, 0u);
    for (const corpus::GoldEntity& g : doc.gold_entities) {
      ASSERT_LT(g.begin, g.end);
      ASSERT_LE(g.end, doc.text.size());
      EXPECT_EQ(doc.text.substr(g.begin, g.end - g.begin), g.name);
    }
  }
}

TEST_P(GeneratorProperty, DeterministicAcrossRuns) {
  auto [kind, seed] = GetParam();
  corpus::CorpusProfile profile = corpus::ProfileFor(kind);
  corpus::TextGenerator a(&SharedLexicons(), profile, seed);
  corpus::TextGenerator b(&SharedLexicons(), profile, seed);
  EXPECT_EQ(a.GenerateDocument(3).text, b.GenerateDocument(3).text);
}

INSTANTIATE_TEST_SUITE_P(
    AllCorporaAndSeeds, GeneratorProperty,
    ::testing::Combine(
        ::testing::Values(corpus::CorpusKind::kRelevantWeb,
                          corpus::CorpusKind::kIrrelevantWeb,
                          corpus::CorpusKind::kMedline,
                          corpus::CorpusKind::kPmc),
        ::testing::Values(1u, 17u, 23456u)));

// ---------------------------------------------------------------------------
// Property: tokenizer offsets always reconstruct the token text, and
// sentence spans are disjoint, in-bounds, and ordered — for arbitrary
// generated text of every register.

class TextProperty : public ::testing::TestWithParam<CorpusSeedParam> {};

TEST_P(TextProperty, TokenOffsetsReconstruct) {
  auto [kind, seed] = GetParam();
  corpus::TextGenerator generator(&SharedLexicons(),
                                  corpus::ProfileFor(kind), seed);
  corpus::Document doc = generator.GenerateDocument(0);
  text::Tokenizer tokenizer;
  for (const text::Token& t : tokenizer.Tokenize(doc.text)) {
    ASSERT_LE(t.end, doc.text.size());
    EXPECT_EQ(doc.text.substr(t.begin, t.end - t.begin), t.text);
    EXPECT_FALSE(t.text.empty());
  }
}

TEST_P(TextProperty, SentenceSpansDisjointOrderedInBounds) {
  auto [kind, seed] = GetParam();
  corpus::TextGenerator generator(&SharedLexicons(),
                                  corpus::ProfileFor(kind), seed);
  corpus::Document doc = generator.GenerateDocument(0);
  text::SentenceSplitter splitter;
  size_t prev_end = 0;
  for (const text::SentenceSpan& span : splitter.Split(doc.text)) {
    EXPECT_GE(span.begin, prev_end);
    EXPECT_LT(span.begin, span.end);
    EXPECT_LE(span.end, doc.text.size());
    prev_end = span.end;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCorpora, TextProperty,
    ::testing::Combine(
        ::testing::Values(corpus::CorpusKind::kRelevantWeb,
                          corpus::CorpusKind::kMedline,
                          corpus::CorpusKind::kPmc),
        ::testing::Values(5u, 91u)));

// ---------------------------------------------------------------------------
// Property: Aho-Corasick agrees with naive substring search on random
// dictionaries over random text (case-folded).

class AutomatonProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutomatonProperty, AgreesWithNaiveSearch) {
  Rng rng(GetParam());
  // Random dictionary over a tiny alphabet to force overlaps.
  std::vector<std::string> patterns;
  ie::AhoCorasick automaton;
  for (int p = 0; p < 30; ++p) {
    std::string pattern;
    size_t len = 2 + rng.Uniform(4);
    for (size_t c = 0; c < len; ++c) {
      pattern.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    patterns.push_back(pattern);
    automaton.AddPattern(pattern);
  }
  automaton.Build();
  std::string text;
  for (int c = 0; c < 300; ++c) {
    text.push_back(static_cast<char>('a' + rng.Uniform(3)));
  }

  std::multiset<std::tuple<size_t, size_t>> expected;
  for (const std::string& pattern : patterns) {
    for (size_t pos = 0; pos + pattern.size() <= text.size(); ++pos) {
      if (text.compare(pos, pattern.size(), pattern) == 0) {
        expected.insert({pos, pos + pattern.size()});
      }
    }
  }
  std::multiset<std::tuple<size_t, size_t>> actual;
  for (const ie::AutomatonMatch& m : automaton.FindAll(text)) {
    actual.insert({m.begin, m.end});
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(AutomatonProperty, KeepLongestProducesNonContainedSpans) {
  Rng rng(GetParam() + 1);
  std::vector<ie::AutomatonMatch> matches;
  for (int i = 0; i < 50; ++i) {
    size_t begin = rng.Uniform(100);
    matches.push_back(
        ie::AutomatonMatch{0, begin, begin + 1 + rng.Uniform(10)});
  }
  auto kept = ie::AhoCorasick::KeepLongest(matches);
  for (size_t i = 0; i < kept.size(); ++i) {
    for (size_t j = 0; j < kept.size(); ++j) {
      if (i == j) continue;
      bool contained = kept[j].begin <= kept[i].begin &&
                       kept[i].end <= kept[j].end &&
                       (kept[j].begin != kept[i].begin ||
                        kept[j].end != kept[i].end);
      EXPECT_FALSE(contained) << "span " << i << " contained in " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Property: dictionary tagger annotations always lie on word boundaries and
// reproduce their surface, for every entity type.

class DictionaryProperty
    : public ::testing::TestWithParam<ie::EntityType> {};

TEST_P(DictionaryProperty, AnnotationsWellFormed) {
  ie::EntityType type = GetParam();
  ie::DictionaryTagger tagger(type, SharedLexicons().ForType(type));
  corpus::TextGenerator generator(
      &SharedLexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline), 9);
  for (int i = 0; i < 5; ++i) {
    corpus::Document doc = generator.GenerateDocument(i);
    for (const ie::Annotation& a : tagger.Tag(doc.id, doc.text)) {
      ASSERT_LT(a.begin, a.end);
      ASSERT_LE(a.end, doc.text.size());
      EXPECT_EQ(doc.text.substr(a.begin, a.length()), a.surface);
      EXPECT_EQ(a.entity_type, type);
      EXPECT_GE(a.length(), ie::DictionaryTagger::kMinMentionLength);
    }
  }
}

TEST_P(DictionaryProperty, FindsMostInSliceLexiconMentions) {
  // With the full lexicon as dictionary, every from-lexicon gold mention
  // must be covered by some annotation.
  ie::EntityType type = GetParam();
  ie::DictionaryTagger tagger(type, SharedLexicons().ForType(type));
  corpus::TextGenerator generator(
      &SharedLexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline), 10);
  size_t gold = 0, covered = 0;
  for (int i = 0; i < 10; ++i) {
    corpus::Document doc = generator.GenerateDocument(i);
    auto annotations = tagger.Tag(doc.id, doc.text);
    for (const corpus::GoldEntity& g : doc.gold_entities) {
      if (g.type != type || !g.from_lexicon) continue;
      ++gold;
      for (const ie::Annotation& a : annotations) {
        if (a.begin <= g.begin && a.end >= g.end) {
          ++covered;
          break;
        }
      }
    }
  }
  if (gold > 0) {
    EXPECT_GT(static_cast<double>(covered) / static_cast<double>(gold), 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DictionaryProperty,
                         ::testing::Values(ie::EntityType::kGene,
                                           ie::EntityType::kDrug,
                                           ie::EntityType::kDisease));

// ---------------------------------------------------------------------------
// Property: HTML repair output is tag-balanced and idempotent-ish (repairing
// a repaired page changes nothing), for arbitrarily mangled pages.

class RepairProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairProperty, RepairedPagesAreBalancedAndStable) {
  corpus::EntityLexicons lexicons(corpus::LexiconConfig{300, 60, 60, 4});
  web::WebConfig config;
  config.num_hosts = 12;
  config.mean_pages_per_host = 6;
  config.seed = GetParam();
  web::SyntheticWeb web(config);
  web::RendererConfig renderer_config;
  renderer_config.severe_error_page_frac = 0.0;  // repairable damage only
  web::PageRenderer renderer(&web, &lexicons, renderer_config);
  html::HtmlRepair repair;
  html::HtmlLexer lexer;
  size_t repaired_pages = 0;
  for (const auto& page : web.pages()) {
    if (page.mime != lang::MimeClass::kHtml) continue;
    if (repaired_pages >= 10) break;
    auto result = repair.Repair(renderer.Render(page).html);
    if (!result.ok()) continue;
    ++repaired_pages;
    // Balance check: per-tag open/close counts match for non-void tags.
    std::map<std::string, int> depth;
    for (const auto& ev : lexer.Lex(result->html)) {
      if (ev.kind == html::HtmlEvent::Kind::kStartTag &&
          ev.name != "script" && ev.name != "style") {
        ++depth[ev.name];
      }
      if (ev.kind == html::HtmlEvent::Kind::kEndTag && ev.name != "script" &&
          ev.name != "style") {
        --depth[ev.name];
      }
    }
    for (const auto& [tag, d] : depth) {
      EXPECT_EQ(d, 0) << "unbalanced <" << tag << ">";
    }
    // Stability: a second repair pass applies no further fixes.
    auto second = repair.Repair(result->html);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->stats.unclosed_tags_closed, 0);
    EXPECT_EQ(second->stats.stray_end_tags_dropped, 0);
    EXPECT_EQ(second->stats.misnested_tags_fixed, 0);
  }
  EXPECT_GT(repaired_pages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------------------
// Property: URL resolution produces re-parseable URLs.

class UrlProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UrlProperty, ResolvedLinksReparse) {
  Rng rng(GetParam());
  web::Url base;
  ASSERT_TRUE(web::ParseUrl("http://host.example.org/dir/page.html", &base));
  const char* links[] = {"/abs.html", "rel.html",
                         "http://other.org/x",     "page2.html#frag",
                         "/a/b/c.html?q=1",        "https://s.org/"};
  for (const char* link : links) {
    web::Url resolved;
    if (!web::ResolveLink(base, link, &resolved)) continue;
    web::Url reparsed;
    EXPECT_TRUE(web::ParseUrl(resolved.ToString(), &reparsed))
        << resolved.ToString();
    EXPECT_EQ(reparsed.host, resolved.host);
  }
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrlProperty, ::testing::Values(1u));

// ---------------------------------------------------------------------------
// Property: statistical measures respect their analytic bounds on random
// inputs.

class StatsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsProperty, JsdBoundsAndSymmetry) {
  Rng rng(GetParam());
  std::map<std::string, uint64_t> a, b;
  for (int i = 0; i < 60; ++i) {
    if (rng.Bernoulli(0.7)) a["k" + std::to_string(rng.Uniform(40))] += 1;
    if (rng.Bernoulli(0.7)) b["k" + std::to_string(rng.Uniform(40))] += 1;
  }
  if (a.empty() || b.empty()) return;
  ml::Distribution pa = ml::NormalizeCounts(a);
  ml::Distribution pb = ml::NormalizeCounts(b);
  double ab = ml::JensenShannonDivergence(pa, pb);
  double ba = ml::JensenShannonDivergence(pb, pa);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_NEAR(ml::JensenShannonDivergence(pa, pa), 0.0, 1e-9);
}

TEST_P(StatsProperty, MwwPValueInUnitIntervalAndShiftMonotone) {
  Rng rng(GetParam() * 13 + 1);
  std::vector<double> base;
  for (int i = 0; i < 60; ++i) base.push_back(rng.Gaussian(0, 1));
  double last_p = 1.1;
  for (double shift : {0.0, 0.5, 1.5, 4.0}) {
    std::vector<double> shifted;
    for (double v : base) shifted.push_back(v + shift + rng.Gaussian(0, 0.1));
    double p = ml::MannWhitneyU(base, shifted).p_value;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    if (shift >= 1.5) {
      EXPECT_LT(p, last_p + 0.05);
    }
    last_p = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Property: the posting-list codec (varint + delta) round-trips every sorted
// posting list exactly and rejects malformed input with an error, not UB.

TEST(PostingCodecProperty, VarintRoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             UINT64_MAX - 1,
                             UINT64_MAX};
  for (uint64_t value : values) {
    std::string buffer;
    store::PutVarint(&buffer, value);
    EXPECT_LE(buffer.size(), 10u);
    std::string_view in = buffer;
    uint64_t decoded = 0;
    ASSERT_TRUE(store::GetVarint(&in, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(in.empty());
  }
}

TEST(PostingCodecProperty, EmptyAndSingleLists) {
  for (const std::vector<store::Posting>& postings :
       {std::vector<store::Posting>{},
        std::vector<store::Posting>{{42, 7, 100, 104}},
        std::vector<store::Posting>{{UINT64_MAX, UINT32_MAX, 0, UINT32_MAX}}}) {
    std::string encoded;
    ASSERT_TRUE(store::EncodePostingList(postings, &encoded).ok());
    std::string_view in = encoded;
    std::vector<store::Posting> decoded;
    ASSERT_TRUE(store::DecodePostingList(&in, &decoded).ok());
    EXPECT_EQ(decoded, postings);
    EXPECT_TRUE(in.empty());
  }
}

TEST(PostingCodecProperty, MaxDeltaDocIds) {
  // Consecutive postings as far apart as uint64 allows: delta == max.
  std::vector<store::Posting> postings = {{0, 0, 0, 0},
                                          {UINT64_MAX, 1, 2, 3}};
  std::string encoded;
  ASSERT_TRUE(store::EncodePostingList(postings, &encoded).ok());
  std::string_view in = encoded;
  std::vector<store::Posting> decoded;
  ASSERT_TRUE(store::DecodePostingList(&in, &decoded).ok());
  EXPECT_EQ(decoded, postings);
}

TEST(PostingCodecProperty, RejectsUnsortedAndInvalidSpans) {
  std::string encoded;
  std::vector<store::Posting> unsorted = {{5, 0, 0, 1}, {3, 0, 0, 1}};
  EXPECT_FALSE(store::EncodePostingList(unsorted, &encoded).ok());
  std::vector<store::Posting> bad_span = {{1, 0, 9, 4}};  // end < begin
  EXPECT_FALSE(store::EncodePostingList(bad_span, &encoded).ok());
}

class PostingCodecSeedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostingCodecSeedProperty, RandomListsRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::vector<store::Posting> postings;
    size_t n = rng.Uniform(200);
    uint64_t doc = 0;
    for (size_t i = 0; i < n; ++i) {
      doc += rng.Uniform(1000);  // non-decreasing, duplicates allowed
      uint32_t begin = static_cast<uint32_t>(rng.Uniform(10000));
      postings.push_back(store::Posting{
          doc, static_cast<uint32_t>(rng.Uniform(500)), begin,
          begin + static_cast<uint32_t>(rng.Uniform(40))});
    }
    // The codec contract takes fully sorted lists (<=> over all fields);
    // equal doc ids above may carry out-of-order sentences.
    std::sort(postings.begin(), postings.end());
    std::string encoded;
    ASSERT_TRUE(store::EncodePostingList(postings, &encoded).ok());
    std::string_view in = encoded;
    std::vector<store::Posting> decoded;
    ASSERT_TRUE(store::DecodePostingList(&in, &decoded).ok());
    EXPECT_EQ(decoded, postings);
    EXPECT_TRUE(in.empty());
  }
}

TEST_P(PostingCodecSeedProperty, TruncationAlwaysRejectedNeverUb) {
  Rng rng(GetParam());
  std::vector<store::Posting> postings;
  uint64_t doc = 0;
  for (size_t i = 0; i < 50; ++i) {
    doc += rng.Uniform(100) + 1;
    uint32_t begin = static_cast<uint32_t>(rng.Uniform(1000));
    postings.push_back(store::Posting{
        doc, static_cast<uint32_t>(rng.Uniform(30)), begin, begin + 5});
  }
  std::string encoded;
  ASSERT_TRUE(store::EncodePostingList(postings, &encoded).ok());
  // Every strict prefix must decode to an error (list length is encoded
  // up front, so a shortened buffer can never silently yield fewer items).
  for (size_t len = 0; len < encoded.size(); ++len) {
    std::string_view in(encoded.data(), len);
    std::vector<store::Posting> decoded;
    EXPECT_FALSE(store::DecodePostingList(&in, &decoded).ok()) << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingCodecSeedProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace wsie
