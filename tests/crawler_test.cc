#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/thread_pool.h"
#include "fault/fault_plan.h"
#include "corpus/text_generator.h"
#include "crawler/crawl_db.h"
#include "crawler/filters.h"
#include "crawler/focused_crawler.h"
#include "crawler/link_db.h"
#include "crawler/pagerank.h"
#include "crawler/relevance_classifier.h"
#include "crawler/seed_generator.h"

namespace wsie::crawler {
namespace {

// ------------------------------------------------------------ CrawlDb

TEST(CrawlDbTest, InjectDeduplicates) {
  CrawlDb db;
  EXPECT_TRUE(db.Inject("http://a/1", "a"));
  EXPECT_FALSE(db.Inject("http://a/1", "a"));
  EXPECT_EQ(db.num_known(), 1u);
  EXPECT_EQ(db.num_pending(), 1u);
}

TEST(CrawlDbTest, BatchRespectsMax) {
  CrawlDb db;
  for (int i = 0; i < 20; ++i) {
    db.Inject("http://h" + std::to_string(i) + "/p", "h" + std::to_string(i));
  }
  auto batch = db.NextFetchBatch(5);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(db.num_pending(), 15u);
}

TEST(CrawlDbTest, PerHostCapDefersUrls) {
  CrawlDb db(/*max_fetch_list_per_host=*/2);
  for (int i = 0; i < 5; ++i) {
    db.Inject("http://one/" + std::to_string(i), "one");
  }
  auto batch = db.NextFetchBatch(10);
  EXPECT_EQ(batch.size(), 2u);  // politeness cap
  auto batch2 = db.NextFetchBatch(10);
  EXPECT_EQ(batch2.size(), 2u);  // deferred URLs come back
}

TEST(CrawlDbTest, EmptyAfterDraining) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  EXPECT_FALSE(db.Empty());
  auto batch = db.NextFetchBatch(10);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(db.Empty());
  EXPECT_TRUE(db.NextFetchBatch(10).empty());
}

TEST(CrawlDbTest, FetchedUrlsNotReissued) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  auto batch = db.NextFetchBatch(10);
  db.MarkFetched(batch[0]);
  db.Inject("http://a/1", "a");  // duplicate, already known
  EXPECT_TRUE(db.NextFetchBatch(10).empty());
}

TEST(CrawlDbTest, HostFetchCountAccumulates) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  db.Inject("http://a/2", "a");
  db.NextFetchBatch(10);
  EXPECT_EQ(db.HostFetchCount("a"), 2u);
  EXPECT_EQ(db.HostFetchCount("unknown"), 0u);
}

TEST(CrawlDbTest, RequeueReturnsUrlToFrontier) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  db.Inject("http://a/2", "a");
  auto batch = db.NextFetchBatch(10);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(db.HostFetchCount("a"), 2u);
  db.Requeue("http://a/1");  // breaker deferral: back of frontier
  EXPECT_EQ(db.num_pending(), 1u);
  EXPECT_EQ(db.HostFetchCount("a"), 1u) << "dispatch charge rolled back";
  auto again = db.NextFetchBatch(10);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], "http://a/1");
  // Requeue of a non-dispatched URL is a no-op.
  db.MarkFetched("http://a/1");
  db.Requeue("http://a/1");
  EXPECT_EQ(db.num_pending(), 0u);
}

TEST(CrawlDbTest, SerializationRoundTrip) {
  CrawlDb db(/*max_fetch_list_per_host=*/3);
  for (int i = 0; i < 6; ++i) {
    db.Inject("http://h1/" + std::to_string(i), "h1");
    db.Inject("http://h2/" + std::to_string(i), "h2");
  }
  auto batch = db.NextFetchBatch(4);
  ASSERT_EQ(batch.size(), 4u);
  db.MarkFetched(batch[0]);
  db.MarkError(batch[1]);
  // batch[2], batch[3] stay in flight (kFetching), as after a crash.

  std::string bytes;
  db.EncodeTo(&bytes);
  CrawlDb restored;
  ASSERT_TRUE(restored.DecodeFrom(bytes).ok());
  EXPECT_EQ(restored.num_known(), db.num_known());
  EXPECT_EQ(restored.total_injected(), db.total_injected());
  // The two in-flight URLs rejoined the frontier with their host dispatch
  // charges rolled back.
  EXPECT_EQ(restored.num_pending(), db.num_pending() + 2);
  EXPECT_EQ(restored.HostFetchCount("h1") + restored.HostFetchCount("h2"),
            db.HostFetchCount("h1") + db.HostFetchCount("h2") - 2);
  // Fetched/errored URLs are never reissued after a resume.
  std::vector<std::string> all;
  for (;;) {
    auto next = restored.NextFetchBatch(100);
    if (next.empty()) break;
    all.insert(all.end(), next.begin(), next.end());
  }
  for (const std::string& url : all) {
    EXPECT_NE(url, batch[0]);
    EXPECT_NE(url, batch[1]);
  }
  EXPECT_EQ(all.size(), 10u);  // 12 known - 1 fetched - 1 errored
}

TEST(CrawlDbTest, SerializationIsCanonicalAndRejectsCorruptBytes) {
  CrawlDb db;
  db.Inject("http://b/1", "b");
  db.Inject("http://a/1", "a");
  std::string bytes;
  db.EncodeTo(&bytes);
  CrawlDb restored;
  ASSERT_TRUE(restored.DecodeFrom(bytes).ok());
  std::string bytes2;
  restored.EncodeTo(&bytes2);
  EXPECT_EQ(bytes, bytes2) << "encode(decode(x)) must be byte-stable";

  CrawlDb scratch;
  EXPECT_FALSE(scratch.DecodeFrom("garbage").ok());
  EXPECT_FALSE(scratch.DecodeFrom(bytes.substr(0, bytes.size() / 2)).ok());
  // State-field out of range.
  std::string bad = bytes;
  size_t pos = bad.rfind("\n0\n");
  if (pos != std::string::npos) bad.replace(pos, 3, "\n9\n");
  EXPECT_FALSE(scratch.DecodeFrom(bad).ok());
}

TEST(CrawlDbTest, ConcurrentInjectsDeduplicate) {
  CrawlDb db;
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&db] {
      for (int i = 0; i < 200; ++i) {
        db.Inject("http://h/" + std::to_string(i), "h");
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(db.num_known(), 200u);
  EXPECT_EQ(db.num_pending(), 200u);
}

// ------------------------------------------------------------ LinkDb

TEST(LinkDbTest, AddsNodesAndEdges) {
  LinkDb db;
  db.AddLink("http://a/1", "http://b/1");
  db.AddLink("http://a/1", "http://b/2");
  EXPECT_EQ(db.num_nodes(), 3u);
  EXPECT_EQ(db.num_edges(), 2u);
}

TEST(LinkDbTest, SnapshotConsistent) {
  LinkDb db;
  db.AddLink("http://a/1", "http://b/1");
  auto snap = db.TakeSnapshot();
  ASSERT_EQ(snap.urls.size(), 2u);
  ASSERT_EQ(snap.outlinks.size(), 2u);
  EXPECT_EQ(snap.outlinks[0].size(), 1u);
  EXPECT_EQ(snap.urls[snap.outlinks[0][0]], "http://b/1");
}

TEST(LinkDbTest, IntraHostFraction) {
  LinkDb db;
  db.AddLink("http://a/1", "http://a/2");  // intra
  db.AddLink("http://a/1", "http://b/1");  // inter
  EXPECT_NEAR(db.IntraHostEdgeFraction(), 0.5, 1e-9);
}

// ------------------------------------------------------------ PageRank

TEST(PageRankTest, UniformOnSymmetricGraph) {
  LinkDb db;
  db.AddLink("http://a/", "http://b/");
  db.AddLink("http://b/", "http://a/");
  auto ranks = ComputePageRank(db.TakeSnapshot());
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_NEAR(ranks[0], ranks[1], 1e-6);
  EXPECT_NEAR(ranks[0] + ranks[1], 1.0, 1e-6);
}

TEST(PageRankTest, HubReceivesMoreRank) {
  LinkDb db;
  // Several pages link to the hub; hub links back to one.
  for (int i = 0; i < 5; ++i) {
    db.AddLink("http://s" + std::to_string(i) + ".org/", "http://hub.org/");
  }
  db.AddLink("http://hub.org/", "http://s0.org/");
  auto top = TopPages(db.TakeSnapshot(), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].name, "http://hub.org/");
}

TEST(PageRankTest, DanglingNodesHandled) {
  LinkDb db;
  db.AddLink("http://a/", "http://sink/");  // sink has no outlinks
  auto ranks = ComputePageRank(db.TakeSnapshot());
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, TopDomainsAggregates) {
  LinkDb db;
  db.AddLink("http://a.x.org/", "http://b.x.org/");
  db.AddLink("http://b.x.org/", "http://a.x.org/");
  db.AddLink("http://solo.y.org/", "http://a.x.org/");
  auto domains = TopDomains(db.TakeSnapshot(), 5);
  ASSERT_GE(domains.size(), 2u);
  EXPECT_EQ(domains[0].name, "x.org");
}

// ------------------------------------------------------------ Filters

TEST(FilterTest, MimeRejection) {
  PreFilterChain chain;
  EXPECT_EQ(chain.Apply("http://x/doc.pdf", "%PDF-1.4", "long enough text"),
            FilterVerdict::kMimeRejected);
  EXPECT_EQ(chain.mime_rejected(), 1u);
}

TEST(FilterTest, LengthRejection) {
  LengthFilterOptions options;
  options.min_chars = 100;
  PreFilterChain chain(options);
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", "short"),
            FilterVerdict::kLengthRejected);
}

TEST(FilterTest, LanguageRejection) {
  PreFilterChain chain({/*min_chars=*/10, /*max_chars=*/100000});
  std::string german =
      "der patient wurde mit dem medikament gegen die krankheit behandelt "
      "und die ergebnisse der studie zeigen dass es einen unterschied gibt "
      "zwischen den gruppen wegen der behandlung die im krankenhaus gegeben "
      "wurde und die aerzte berichteten weitere forschung";
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", german),
            FilterVerdict::kLanguageRejected);
}

TEST(FilterTest, EnglishTextPasses) {
  PreFilterChain chain({/*min_chars=*/10, /*max_chars=*/100000});
  std::string english =
      "the patient was treated with the drug for the disease and the "
      "results of the study show that there is a difference between the "
      "groups because of the treatment given in the hospital and the "
      "doctors reported that further research is needed";
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", english),
            FilterVerdict::kPass);
  EXPECT_EQ(chain.passed(), 1u);
  EXPECT_EQ(chain.total(), 1u);
}

// ------------------------------------------------- RelevanceClassifier

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() : lexicons_(corpus::LexiconConfig{800, 150, 150, 5}) {}
  corpus::EntityLexicons lexicons_;
};

TEST_F(ClassifierTest, SeparatesBiomedFromOffDomain) {
  ClassifierTrainConfig config;
  config.docs_per_class = 150;
  RelevanceClassifier classifier(&lexicons_, config);
  corpus::TextGenerator biomed(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kMedline), 77);
  corpus::TextGenerator off(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kIrrelevantWeb), 78);
  int biomed_correct = 0, off_correct = 0;
  for (int i = 0; i < 20; ++i) {
    if (classifier.IsRelevant(biomed.GenerateDocument(i).text))
      ++biomed_correct;
    if (!classifier.IsRelevant(off.GenerateDocument(i).text)) ++off_correct;
  }
  EXPECT_GE(biomed_correct, 17);
  EXPECT_GE(off_correct, 17);
}

TEST_F(ClassifierTest, CrossValidationHighPrecision) {
  ClassifierTrainConfig config;
  config.docs_per_class = 120;
  RelevanceClassifier classifier(&lexicons_, config);
  auto cv = classifier.CrossValidate(5);
  EXPECT_GT(cv.mean_precision, 0.9);
  EXPECT_GT(cv.mean_recall, 0.7);
  EXPECT_EQ(cv.fold_confusions.size(), 5u);
}

TEST_F(ClassifierTest, ThresholdTradesPrecisionForRecall) {
  ClassifierTrainConfig config;
  config.docs_per_class = 120;
  RelevanceClassifier classifier(&lexicons_, config);
  // Lay-web relevant text is harder than Medline; a lower threshold accepts
  // more of it.
  corpus::TextGenerator web(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kRelevantWeb), 79);
  int accepted_high = 0, accepted_low = 0;
  std::vector<std::string> texts;
  for (int i = 0; i < 30; ++i) texts.push_back(web.GenerateDocument(i).text);
  classifier.set_relevance_threshold(0.95);
  for (const auto& t : texts) accepted_high += classifier.IsRelevant(t);
  classifier.set_relevance_threshold(0.2);
  for (const auto& t : texts) accepted_low += classifier.IsRelevant(t);
  EXPECT_GE(accepted_low, accepted_high);
}

// ------------------------------------------------------------ E2E crawl

class CrawlerE2eTest : public ::testing::Test {
 protected:
  CrawlerE2eTest()
      : lexicons_(corpus::LexiconConfig{800, 150, 150, 5}),
        web_(MakeWebConfig()),
        sim_(&web_, &lexicons_),
        classifier_(&lexicons_, MakeClassifierConfig()) {}

  static web::WebConfig MakeWebConfig() {
    web::WebConfig config;
    config.num_hosts = 50;
    config.mean_pages_per_host = 8;
    config.seed = 31;
    return config;
  }
  static ClassifierTrainConfig MakeClassifierConfig() {
    ClassifierTrainConfig config;
    config.docs_per_class = 120;
    config.relevance_threshold = 0.5;
    return config;
  }

  std::vector<std::string> SeedsFromBiomedHosts(size_t count) {
    std::vector<std::string> seeds;
    for (const auto& page : web_.pages()) {
      if (seeds.size() >= count) break;
      const auto& host = web_.HostOf(page);
      if ((host.topic == web::HostTopic::kBiomedPortal ||
           host.topic == web::HostTopic::kBiomedResearch) &&
          page.mime == lang::MimeClass::kHtml && page.relevant) {
        seeds.push_back(web_.UrlOf(page));
      }
    }
    return seeds;
  }

  corpus::EntityLexicons lexicons_;
  web::SyntheticWeb web_;
  web::SimulatedWeb sim_;
  RelevanceClassifier classifier_;
};

TEST_F(CrawlerE2eTest, CrawlCollectsRelevantCorpus) {
  CrawlerConfig config;
  config.num_fetch_threads = 4;
  config.max_pages = 300;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(20));
  crawler.Crawl();
  const CrawlStats& stats = crawler.stats();
  EXPECT_GT(stats.fetched, 20u);
  EXPECT_GT(stats.classified_relevant, 0u);
  EXPECT_GT(crawler.relevant_corpus().size(), 0u);
  EXPECT_GT(stats.HarvestRate(), 0.1);
  EXPECT_GT(crawler.link_db().num_edges(), 0u);
}

TEST_F(CrawlerE2eTest, ClassifierDecisionsTrackGroundTruth) {
  CrawlerConfig config;
  config.max_pages = 300;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(20));
  crawler.Crawl();
  const auto& confusion = crawler.stats().classification_vs_truth;
  ASSERT_GT(confusion.total(), 20u);
  EXPECT_GT(confusion.Precision(), 0.6);
}

TEST_F(CrawlerE2eTest, RobotsRulesRespected) {
  CrawlerConfig config;
  config.max_pages = 400;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(30));
  // Inject a disallowed URL directly.
  const web::HostInfo* host_with_rules = nullptr;
  for (const auto& host : web_.hosts()) {
    if (!host.robots_disallow_prefix.empty()) {
      host_with_rules = &host;
      break;
    }
  }
  ASSERT_NE(host_with_rules, nullptr);
  crawler.InjectSeeds({"http://" + host_with_rules->name + "/private/x.html"});
  crawler.Crawl();
  EXPECT_GT(crawler.stats().robots_blocked, 0u);
}

TEST_F(CrawlerE2eTest, TrapBoundedByHostBudget) {
  CrawlerConfig config;
  config.max_pages = 500;
  config.max_pages_per_host = 20;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  const web::HostInfo* trap = nullptr;
  for (const auto& host : web_.hosts()) {
    if (host.topic == web::HostTopic::kTrap) {
      trap = &host;
      break;
    }
  }
  ASSERT_NE(trap, nullptr);
  crawler.InjectSeeds({"http://" + trap->name + "/day?p=0"});
  crawler.Crawl();
  // The crawl terminates (no infinite loop) and the trap host is capped.
  EXPECT_LE(crawler.crawl_db().HostFetchCount(trap->name),
            config.max_pages_per_host + 2);
}

TEST_F(CrawlerE2eTest, EmptySeedListStopsImmediately) {
  FocusedCrawler crawler(&sim_, &classifier_, CrawlerConfig{});
  crawler.Crawl();
  EXPECT_EQ(crawler.stats().fetched, 0u);
}

TEST_F(CrawlerE2eTest, FollowIrrelevantMarginIncreasesYield) {
  // Seed only off-domain pages: with margin 0 the crawl dies fast; with
  // margin 2 it pushes through irrelevant pages (Sect. 2.2 discussion).
  std::vector<std::string> off_seeds;
  for (const auto& page : web_.pages()) {
    if (off_seeds.size() >= 10) break;
    if (web_.HostOf(page).topic == web::HostTopic::kOffDomain &&
        page.mime == lang::MimeClass::kHtml && !page.relevant) {
      off_seeds.push_back(web_.UrlOf(page));
    }
  }
  ASSERT_EQ(off_seeds.size(), 10u);

  CrawlerConfig strict;
  strict.max_pages = 400;
  strict.follow_irrelevant_margin = 0;
  FocusedCrawler crawler_strict(&sim_, &classifier_, strict);
  crawler_strict.InjectSeeds(off_seeds);
  crawler_strict.Crawl();

  CrawlerConfig lenient = strict;
  lenient.follow_irrelevant_margin = 2;
  FocusedCrawler crawler_lenient(&sim_, &classifier_, lenient);
  crawler_lenient.InjectSeeds(off_seeds);
  crawler_lenient.Crawl();

  EXPECT_GT(crawler_lenient.stats().fetched, crawler_strict.stats().fetched);
}

// ------------------------------------------------- Faults & recovery

TEST_F(CrawlerE2eTest, LinkDbSerializationRoundTrip) {
  LinkDb db;
  db.AddLink("http://a/1", "http://a/2");
  db.AddLink("http://a/1", "http://b/1");
  db.AddLink("http://b/1", "http://a/1");
  std::string bytes;
  db.EncodeTo(&bytes);
  LinkDb restored;
  ASSERT_TRUE(restored.DecodeFrom(bytes).ok());
  EXPECT_EQ(restored.num_nodes(), 3u);
  EXPECT_EQ(restored.num_edges(), 3u);
  std::string bytes2;
  restored.EncodeTo(&bytes2);
  EXPECT_EQ(bytes, bytes2);
  // Interning still works against restored ids.
  EXPECT_EQ(restored.InternUrl("http://a/1"), db.InternUrl("http://a/1"));

  LinkDb scratch;
  EXPECT_FALSE(scratch.DecodeFrom("junk").ok());
  EXPECT_FALSE(scratch.DecodeFrom(bytes.substr(0, bytes.size() / 2)).ok());
}

TEST_F(CrawlerE2eTest, FaultyCrawlRecoversViaRetries) {
  fault::FaultPlanConfig plan_config;
  plan_config.seed = 99;
  plan_config.flaky_host_frac = 0.5;
  fault::FaultPlan plan(plan_config);
  sim_.set_fault_plan(&plan);

  CrawlerConfig config;
  config.num_fetch_threads = 4;
  config.max_pages = 250;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(20));
  crawler.Crawl();

  const CrawlStats& stats = crawler.stats();
  EXPECT_GT(stats.fetched, 20u);
  EXPECT_GT(stats.fetch_faults, 0u) << "plan should have injected faults";
  EXPECT_GT(stats.fetch_retries, 0u) << "transient faults should retry";
  EXPECT_GT(plan.faults_injected(), 0u);
  // Transient faults clear within the plan's attempt budget, which is below
  // the retry budget — so no page is lost to a *retryable* failure.
  EXPECT_GT(stats.classified_relevant, 0u);
}

TEST_F(CrawlerE2eTest, FaultyCrawlIsDeterministicAcrossThreadCounts) {
  // The determinism guard: same seed, different thread counts -> identical
  // crawl state, stats, and fault traces.
  auto run = [this](size_t threads, fault::FaultPlan* plan,
                    std::string* crawl_bytes, std::string* link_bytes,
                    CrawlStats* stats_out) {
    sim_.set_fault_plan(plan);
    CrawlerConfig config;
    config.num_fetch_threads = threads;
    config.max_pages = 150;
    FocusedCrawler crawler(&sim_, &classifier_, config);
    crawler.InjectSeeds(SeedsFromBiomedHosts(15));
    crawler.Crawl();
    crawler.crawl_db().EncodeTo(crawl_bytes);
    crawler.link_db().EncodeTo(link_bytes);
    *stats_out = crawler.stats();
    sim_.set_fault_plan(nullptr);
  };

  fault::FaultPlanConfig plan_config;
  plan_config.seed = 4242;
  plan_config.flaky_host_frac = 0.6;
  fault::FaultPlan plan1(plan_config), plan8(plan_config);

  std::string crawl1, link1, crawl8, link8;
  CrawlStats stats1, stats8;
  run(1, &plan1, &crawl1, &link1, &stats1);
  run(8, &plan8, &crawl8, &link8, &stats8);

  EXPECT_EQ(crawl1, crawl8) << "CrawlDb must not depend on thread schedule";
  EXPECT_EQ(link1, link8) << "LinkDb must not depend on thread schedule";
  EXPECT_TRUE(plan1.SortedTrace() == plan8.SortedTrace())
      << "fault traces must be identical for identical seeds";
  EXPECT_GT(plan1.SortedTrace().size(), 0u);
  // All stats are bit-identical except measured wall time and modeled fetch
  // time, which by design divides total virtual latency by the thread count.
  stats1.processing_seconds = stats8.processing_seconds = 0.0;
  stats1.virtual_fetch_seconds = stats8.virtual_fetch_seconds = 0.0;
  std::string enc1, enc8;
  stats1.EncodeTo(&enc1);
  stats8.EncodeTo(&enc8);
  EXPECT_EQ(enc1, enc8);
}

TEST_F(CrawlerE2eTest, KilledCrawlResumesByteIdentical) {
  fault::FaultPlanConfig plan_config;
  plan_config.seed = 7;
  plan_config.flaky_host_frac = 0.5;

  CrawlerConfig config;
  config.num_fetch_threads = 4;
  config.max_pages = 200;
  std::vector<std::string> seeds = SeedsFromBiomedHosts(15);

  // Reference: one uninterrupted crawl.
  fault::FaultPlan plan_full(plan_config);
  sim_.set_fault_plan(&plan_full);
  FocusedCrawler uninterrupted(&sim_, &classifier_, config);
  uninterrupted.InjectSeeds(seeds);
  uninterrupted.Crawl();
  sim_.set_fault_plan(nullptr);

  // Killed run: same crawl, checkpointing every batch, killed after 2.
  std::string path = testing::TempDir() + "wsie_crawl_resume_test.ckpt";
  CrawlerConfig killed_config = config;
  killed_config.max_batches = 2;
  killed_config.checkpoint_every_batches = 1;
  killed_config.checkpoint_path = path;
  fault::FaultPlan plan_killed(plan_config);
  sim_.set_fault_plan(&plan_killed);
  FocusedCrawler killed(&sim_, &classifier_, killed_config);
  killed.InjectSeeds(seeds);
  killed.Crawl();
  EXPECT_LT(killed.stats().fetched, uninterrupted.stats().fetched);
  sim_.set_fault_plan(nullptr);

  // Resumed run: a fresh crawler restores the checkpoint and finishes.
  fault::FaultPlan plan_resumed(plan_config);
  sim_.set_fault_plan(&plan_resumed);
  FocusedCrawler resumed(&sim_, &classifier_, config);
  ASSERT_TRUE(resumed.RestoreCheckpoint(path).ok());
  EXPECT_EQ(resumed.stats().batches, 2u);
  resumed.Crawl();
  sim_.set_fault_plan(nullptr);

  // Byte-identical CrawlDb and LinkDb, identical harvest rate and corpora.
  std::string crawl_a, crawl_b, link_a, link_b;
  uninterrupted.crawl_db().EncodeTo(&crawl_a);
  resumed.crawl_db().EncodeTo(&crawl_b);
  uninterrupted.link_db().EncodeTo(&link_a);
  resumed.link_db().EncodeTo(&link_b);
  EXPECT_EQ(crawl_a, crawl_b);
  EXPECT_EQ(link_a, link_b);
  EXPECT_EQ(uninterrupted.stats().fetched, resumed.stats().fetched);
  EXPECT_EQ(uninterrupted.stats().HarvestRate(), resumed.stats().HarvestRate());
  ASSERT_EQ(uninterrupted.relevant_corpus().size(),
            resumed.relevant_corpus().size());
  for (size_t i = 0; i < resumed.relevant_corpus().size(); ++i) {
    const corpus::Document& a = uninterrupted.relevant_corpus().documents()[i];
    const corpus::Document& b = resumed.relevant_corpus().documents()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.url, b.url);
    EXPECT_EQ(a.text, b.text);
  }
  std::remove(path.c_str());
}

TEST_F(CrawlerE2eTest, CorruptCheckpointIsRejectedAndCrawlerUntouched) {
  CrawlerConfig config;
  config.max_pages = 40;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(5));
  crawler.Crawl();
  uint64_t fetched_before = crawler.stats().fetched;
  ASSERT_GT(fetched_before, 0u);

  std::string path = testing::TempDir() + "wsie_corrupt_test.ckpt";
  ASSERT_TRUE(crawler.SaveCheckpoint(path).ok());
  // Flip a byte in the middle of the file.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(crawler.RestoreCheckpoint(path).ok());
  EXPECT_EQ(crawler.stats().fetched, fetched_before) << "state untouched";
  EXPECT_FALSE(crawler.RestoreCheckpoint(path + ".missing").ok());
  std::remove(path.c_str());
}

TEST_F(CrawlerE2eTest, CircuitBreakerShedsPersistentlyFailingHost) {
  // A host that times out on every attempt, forever.
  fault::FaultPlanConfig plan_config;
  plan_config.flaky_host_frac = 1.0;
  plan_config.flaky = fault::HostFaultProfile{};
  plan_config.flaky.timeout_prob = 1.0;
  plan_config.max_faulty_attempts = 1000;  // never recovers
  fault::FaultPlan plan(plan_config);
  sim_.set_fault_plan(&plan);

  CrawlerConfig config;
  config.num_fetch_threads = 2;
  config.batch_size = 4;
  config.retry.max_attempts = 2;
  config.breaker.failure_threshold = 4;
  config.breaker.open_ticks = 2;
  config.breaker_requeue_limit = 1;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  std::vector<std::string> seeds;
  for (int i = 0; i < 12; ++i) {
    seeds.push_back("http://always-down.example/p" + std::to_string(i));
  }
  crawler.InjectSeeds(seeds);
  crawler.Crawl();  // must terminate
  sim_.set_fault_plan(nullptr);

  const CrawlStats& stats = crawler.stats();
  EXPECT_EQ(stats.fetched, 0u);
  EXPECT_GT(stats.fetch_errors, 0u);
  EXPECT_GT(stats.fetch_retries, 0u);
  EXPECT_GT(stats.breaker_skipped, 0u) << "open circuit should defer URLs";
  EXPECT_GT(stats.breaker_dropped, 0u)
      << "URLs deferred past the requeue limit are dropped";
  EXPECT_GE(crawler.breaker().times_opened(), 1u);
}

TEST_F(CrawlerE2eTest, UnreachableRobotsDisallowsHostConservatively) {
  fault::FaultPlanConfig plan_config;
  plan_config.flaky_host_frac = 1.0;
  plan_config.flaky = fault::HostFaultProfile{};
  plan_config.flaky.robots_flap_prob = 1.0;
  plan_config.max_faulty_attempts = 1000;  // robots never answers
  fault::FaultPlan plan(plan_config);
  sim_.set_fault_plan(&plan);

  CrawlerConfig config;
  config.max_pages = 50;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(5));
  crawler.Crawl();
  sim_.set_fault_plan(nullptr);

  EXPECT_EQ(crawler.stats().fetched, 0u)
      << "no robots answer -> host treated as fully disallowed";
  EXPECT_GT(crawler.stats().robots_unavailable, 0u);
  EXPECT_GT(crawler.stats().robots_blocked, 0u);
}

// ------------------------------------------------------------ Seeds

TEST_F(CrawlerE2eTest, SeedGeneratorProducesCategorizedReport) {
  web::SearchEngineFederation engines(&sim_);
  SeedGenerator generator(&lexicons_, &engines);
  SeedQueryBudget budget{10, 20, 15, 25};
  SeedGenerationReport report = generator.Generate(budget);
  ASSERT_EQ(report.categories.size(), 4u);
  EXPECT_EQ(report.categories[0].category, "general terms");
  EXPECT_EQ(report.categories[0].terms_requested, 10u);
  // Each term queried against all five engines.
  EXPECT_EQ(report.categories[0].queries_issued,
            report.categories[0].terms_used * engines.num_engines());
  EXPECT_FALSE(report.seed_urls.empty());
  // Seed URLs deduplicated and sorted.
  for (size_t i = 1; i < report.seed_urls.size(); ++i) {
    EXPECT_LT(report.seed_urls[i - 1], report.seed_urls[i]);
  }
}

TEST_F(CrawlerE2eTest, LargerBudgetYieldsMoreSeeds) {
  web::SearchEngineFederation engines_small(&sim_);
  SeedGenerator small(&lexicons_, &engines_small);
  auto report_small = small.Generate(SeedQueryBudget::FirstCrawl());

  web::SearchEngineFederation engines_big(&sim_);
  SeedGenerator big(&lexicons_, &engines_big);
  auto report_big = big.Generate(SeedQueryBudget{});  // full budget

  EXPECT_GE(report_big.seed_urls.size(), report_small.seed_urls.size());
}

}  // namespace
}  // namespace wsie::crawler
