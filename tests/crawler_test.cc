#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "corpus/text_generator.h"
#include "crawler/crawl_db.h"
#include "crawler/filters.h"
#include "crawler/focused_crawler.h"
#include "crawler/link_db.h"
#include "crawler/pagerank.h"
#include "crawler/relevance_classifier.h"
#include "crawler/seed_generator.h"

namespace wsie::crawler {
namespace {

// ------------------------------------------------------------ CrawlDb

TEST(CrawlDbTest, InjectDeduplicates) {
  CrawlDb db;
  EXPECT_TRUE(db.Inject("http://a/1", "a"));
  EXPECT_FALSE(db.Inject("http://a/1", "a"));
  EXPECT_EQ(db.num_known(), 1u);
  EXPECT_EQ(db.num_pending(), 1u);
}

TEST(CrawlDbTest, BatchRespectsMax) {
  CrawlDb db;
  for (int i = 0; i < 20; ++i) {
    db.Inject("http://h" + std::to_string(i) + "/p", "h" + std::to_string(i));
  }
  auto batch = db.NextFetchBatch(5);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(db.num_pending(), 15u);
}

TEST(CrawlDbTest, PerHostCapDefersUrls) {
  CrawlDb db(/*max_fetch_list_per_host=*/2);
  for (int i = 0; i < 5; ++i) {
    db.Inject("http://one/" + std::to_string(i), "one");
  }
  auto batch = db.NextFetchBatch(10);
  EXPECT_EQ(batch.size(), 2u);  // politeness cap
  auto batch2 = db.NextFetchBatch(10);
  EXPECT_EQ(batch2.size(), 2u);  // deferred URLs come back
}

TEST(CrawlDbTest, EmptyAfterDraining) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  EXPECT_FALSE(db.Empty());
  auto batch = db.NextFetchBatch(10);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(db.Empty());
  EXPECT_TRUE(db.NextFetchBatch(10).empty());
}

TEST(CrawlDbTest, FetchedUrlsNotReissued) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  auto batch = db.NextFetchBatch(10);
  db.MarkFetched(batch[0]);
  db.Inject("http://a/1", "a");  // duplicate, already known
  EXPECT_TRUE(db.NextFetchBatch(10).empty());
}

TEST(CrawlDbTest, HostFetchCountAccumulates) {
  CrawlDb db;
  db.Inject("http://a/1", "a");
  db.Inject("http://a/2", "a");
  db.NextFetchBatch(10);
  EXPECT_EQ(db.HostFetchCount("a"), 2u);
  EXPECT_EQ(db.HostFetchCount("unknown"), 0u);
}

TEST(CrawlDbTest, ConcurrentInjectsDeduplicate) {
  CrawlDb db;
  ThreadPool pool(4);
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&db] {
      for (int i = 0; i < 200; ++i) {
        db.Inject("http://h/" + std::to_string(i), "h");
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(db.num_known(), 200u);
  EXPECT_EQ(db.num_pending(), 200u);
}

// ------------------------------------------------------------ LinkDb

TEST(LinkDbTest, AddsNodesAndEdges) {
  LinkDb db;
  db.AddLink("http://a/1", "http://b/1");
  db.AddLink("http://a/1", "http://b/2");
  EXPECT_EQ(db.num_nodes(), 3u);
  EXPECT_EQ(db.num_edges(), 2u);
}

TEST(LinkDbTest, SnapshotConsistent) {
  LinkDb db;
  db.AddLink("http://a/1", "http://b/1");
  auto snap = db.TakeSnapshot();
  ASSERT_EQ(snap.urls.size(), 2u);
  ASSERT_EQ(snap.outlinks.size(), 2u);
  EXPECT_EQ(snap.outlinks[0].size(), 1u);
  EXPECT_EQ(snap.urls[snap.outlinks[0][0]], "http://b/1");
}

TEST(LinkDbTest, IntraHostFraction) {
  LinkDb db;
  db.AddLink("http://a/1", "http://a/2");  // intra
  db.AddLink("http://a/1", "http://b/1");  // inter
  EXPECT_NEAR(db.IntraHostEdgeFraction(), 0.5, 1e-9);
}

// ------------------------------------------------------------ PageRank

TEST(PageRankTest, UniformOnSymmetricGraph) {
  LinkDb db;
  db.AddLink("http://a/", "http://b/");
  db.AddLink("http://b/", "http://a/");
  auto ranks = ComputePageRank(db.TakeSnapshot());
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_NEAR(ranks[0], ranks[1], 1e-6);
  EXPECT_NEAR(ranks[0] + ranks[1], 1.0, 1e-6);
}

TEST(PageRankTest, HubReceivesMoreRank) {
  LinkDb db;
  // Several pages link to the hub; hub links back to one.
  for (int i = 0; i < 5; ++i) {
    db.AddLink("http://s" + std::to_string(i) + ".org/", "http://hub.org/");
  }
  db.AddLink("http://hub.org/", "http://s0.org/");
  auto top = TopPages(db.TakeSnapshot(), 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].name, "http://hub.org/");
}

TEST(PageRankTest, DanglingNodesHandled) {
  LinkDb db;
  db.AddLink("http://a/", "http://sink/");  // sink has no outlinks
  auto ranks = ComputePageRank(db.TakeSnapshot());
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, TopDomainsAggregates) {
  LinkDb db;
  db.AddLink("http://a.x.org/", "http://b.x.org/");
  db.AddLink("http://b.x.org/", "http://a.x.org/");
  db.AddLink("http://solo.y.org/", "http://a.x.org/");
  auto domains = TopDomains(db.TakeSnapshot(), 5);
  ASSERT_GE(domains.size(), 2u);
  EXPECT_EQ(domains[0].name, "x.org");
}

// ------------------------------------------------------------ Filters

TEST(FilterTest, MimeRejection) {
  PreFilterChain chain;
  EXPECT_EQ(chain.Apply("http://x/doc.pdf", "%PDF-1.4", "long enough text"),
            FilterVerdict::kMimeRejected);
  EXPECT_EQ(chain.mime_rejected(), 1u);
}

TEST(FilterTest, LengthRejection) {
  LengthFilterOptions options;
  options.min_chars = 100;
  PreFilterChain chain(options);
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", "short"),
            FilterVerdict::kLengthRejected);
}

TEST(FilterTest, LanguageRejection) {
  PreFilterChain chain({/*min_chars=*/10, /*max_chars=*/100000});
  std::string german =
      "der patient wurde mit dem medikament gegen die krankheit behandelt "
      "und die ergebnisse der studie zeigen dass es einen unterschied gibt "
      "zwischen den gruppen wegen der behandlung die im krankenhaus gegeben "
      "wurde und die aerzte berichteten weitere forschung";
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", german),
            FilterVerdict::kLanguageRejected);
}

TEST(FilterTest, EnglishTextPasses) {
  PreFilterChain chain({/*min_chars=*/10, /*max_chars=*/100000});
  std::string english =
      "the patient was treated with the drug for the disease and the "
      "results of the study show that there is a difference between the "
      "groups because of the treatment given in the hospital and the "
      "doctors reported that further research is needed";
  EXPECT_EQ(chain.Apply("http://x/p.html", "<html>", english),
            FilterVerdict::kPass);
  EXPECT_EQ(chain.passed(), 1u);
  EXPECT_EQ(chain.total(), 1u);
}

// ------------------------------------------------- RelevanceClassifier

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() : lexicons_(corpus::LexiconConfig{800, 150, 150, 5}) {}
  corpus::EntityLexicons lexicons_;
};

TEST_F(ClassifierTest, SeparatesBiomedFromOffDomain) {
  ClassifierTrainConfig config;
  config.docs_per_class = 150;
  RelevanceClassifier classifier(&lexicons_, config);
  corpus::TextGenerator biomed(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kMedline), 77);
  corpus::TextGenerator off(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kIrrelevantWeb), 78);
  int biomed_correct = 0, off_correct = 0;
  for (int i = 0; i < 20; ++i) {
    if (classifier.IsRelevant(biomed.GenerateDocument(i).text))
      ++biomed_correct;
    if (!classifier.IsRelevant(off.GenerateDocument(i).text)) ++off_correct;
  }
  EXPECT_GE(biomed_correct, 17);
  EXPECT_GE(off_correct, 17);
}

TEST_F(ClassifierTest, CrossValidationHighPrecision) {
  ClassifierTrainConfig config;
  config.docs_per_class = 120;
  RelevanceClassifier classifier(&lexicons_, config);
  auto cv = classifier.CrossValidate(5);
  EXPECT_GT(cv.mean_precision, 0.9);
  EXPECT_GT(cv.mean_recall, 0.7);
  EXPECT_EQ(cv.fold_confusions.size(), 5u);
}

TEST_F(ClassifierTest, ThresholdTradesPrecisionForRecall) {
  ClassifierTrainConfig config;
  config.docs_per_class = 120;
  RelevanceClassifier classifier(&lexicons_, config);
  // Lay-web relevant text is harder than Medline; a lower threshold accepts
  // more of it.
  corpus::TextGenerator web(
      &lexicons_, corpus::ProfileFor(corpus::CorpusKind::kRelevantWeb), 79);
  int accepted_high = 0, accepted_low = 0;
  std::vector<std::string> texts;
  for (int i = 0; i < 30; ++i) texts.push_back(web.GenerateDocument(i).text);
  classifier.set_relevance_threshold(0.95);
  for (const auto& t : texts) accepted_high += classifier.IsRelevant(t);
  classifier.set_relevance_threshold(0.2);
  for (const auto& t : texts) accepted_low += classifier.IsRelevant(t);
  EXPECT_GE(accepted_low, accepted_high);
}

// ------------------------------------------------------------ E2E crawl

class CrawlerE2eTest : public ::testing::Test {
 protected:
  CrawlerE2eTest()
      : lexicons_(corpus::LexiconConfig{800, 150, 150, 5}),
        web_(MakeWebConfig()),
        sim_(&web_, &lexicons_),
        classifier_(&lexicons_, MakeClassifierConfig()) {}

  static web::WebConfig MakeWebConfig() {
    web::WebConfig config;
    config.num_hosts = 50;
    config.mean_pages_per_host = 8;
    config.seed = 31;
    return config;
  }
  static ClassifierTrainConfig MakeClassifierConfig() {
    ClassifierTrainConfig config;
    config.docs_per_class = 120;
    config.relevance_threshold = 0.5;
    return config;
  }

  std::vector<std::string> SeedsFromBiomedHosts(size_t count) {
    std::vector<std::string> seeds;
    for (const auto& page : web_.pages()) {
      if (seeds.size() >= count) break;
      const auto& host = web_.HostOf(page);
      if ((host.topic == web::HostTopic::kBiomedPortal ||
           host.topic == web::HostTopic::kBiomedResearch) &&
          page.mime == lang::MimeClass::kHtml && page.relevant) {
        seeds.push_back(web_.UrlOf(page));
      }
    }
    return seeds;
  }

  corpus::EntityLexicons lexicons_;
  web::SyntheticWeb web_;
  web::SimulatedWeb sim_;
  RelevanceClassifier classifier_;
};

TEST_F(CrawlerE2eTest, CrawlCollectsRelevantCorpus) {
  CrawlerConfig config;
  config.num_fetch_threads = 4;
  config.max_pages = 300;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(20));
  crawler.Crawl();
  const CrawlStats& stats = crawler.stats();
  EXPECT_GT(stats.fetched, 20u);
  EXPECT_GT(stats.classified_relevant, 0u);
  EXPECT_GT(crawler.relevant_corpus().size(), 0u);
  EXPECT_GT(stats.HarvestRate(), 0.1);
  EXPECT_GT(crawler.link_db().num_edges(), 0u);
}

TEST_F(CrawlerE2eTest, ClassifierDecisionsTrackGroundTruth) {
  CrawlerConfig config;
  config.max_pages = 300;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(20));
  crawler.Crawl();
  const auto& confusion = crawler.stats().classification_vs_truth;
  ASSERT_GT(confusion.total(), 20u);
  EXPECT_GT(confusion.Precision(), 0.6);
}

TEST_F(CrawlerE2eTest, RobotsRulesRespected) {
  CrawlerConfig config;
  config.max_pages = 400;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  crawler.InjectSeeds(SeedsFromBiomedHosts(30));
  // Inject a disallowed URL directly.
  const web::HostInfo* host_with_rules = nullptr;
  for (const auto& host : web_.hosts()) {
    if (!host.robots_disallow_prefix.empty()) {
      host_with_rules = &host;
      break;
    }
  }
  ASSERT_NE(host_with_rules, nullptr);
  crawler.InjectSeeds({"http://" + host_with_rules->name + "/private/x.html"});
  crawler.Crawl();
  EXPECT_GT(crawler.stats().robots_blocked, 0u);
}

TEST_F(CrawlerE2eTest, TrapBoundedByHostBudget) {
  CrawlerConfig config;
  config.max_pages = 500;
  config.max_pages_per_host = 20;
  FocusedCrawler crawler(&sim_, &classifier_, config);
  const web::HostInfo* trap = nullptr;
  for (const auto& host : web_.hosts()) {
    if (host.topic == web::HostTopic::kTrap) {
      trap = &host;
      break;
    }
  }
  ASSERT_NE(trap, nullptr);
  crawler.InjectSeeds({"http://" + trap->name + "/day?p=0"});
  crawler.Crawl();
  // The crawl terminates (no infinite loop) and the trap host is capped.
  EXPECT_LE(crawler.crawl_db().HostFetchCount(trap->name),
            config.max_pages_per_host + 2);
}

TEST_F(CrawlerE2eTest, EmptySeedListStopsImmediately) {
  FocusedCrawler crawler(&sim_, &classifier_, CrawlerConfig{});
  crawler.Crawl();
  EXPECT_EQ(crawler.stats().fetched, 0u);
}

TEST_F(CrawlerE2eTest, FollowIrrelevantMarginIncreasesYield) {
  // Seed only off-domain pages: with margin 0 the crawl dies fast; with
  // margin 2 it pushes through irrelevant pages (Sect. 2.2 discussion).
  std::vector<std::string> off_seeds;
  for (const auto& page : web_.pages()) {
    if (off_seeds.size() >= 10) break;
    if (web_.HostOf(page).topic == web::HostTopic::kOffDomain &&
        page.mime == lang::MimeClass::kHtml && !page.relevant) {
      off_seeds.push_back(web_.UrlOf(page));
    }
  }
  ASSERT_EQ(off_seeds.size(), 10u);

  CrawlerConfig strict;
  strict.max_pages = 400;
  strict.follow_irrelevant_margin = 0;
  FocusedCrawler crawler_strict(&sim_, &classifier_, strict);
  crawler_strict.InjectSeeds(off_seeds);
  crawler_strict.Crawl();

  CrawlerConfig lenient = strict;
  lenient.follow_irrelevant_margin = 2;
  FocusedCrawler crawler_lenient(&sim_, &classifier_, lenient);
  crawler_lenient.InjectSeeds(off_seeds);
  crawler_lenient.Crawl();

  EXPECT_GT(crawler_lenient.stats().fetched, crawler_strict.stats().fetched);
}

// ------------------------------------------------------------ Seeds

TEST_F(CrawlerE2eTest, SeedGeneratorProducesCategorizedReport) {
  web::SearchEngineFederation engines(&sim_);
  SeedGenerator generator(&lexicons_, &engines);
  SeedQueryBudget budget{10, 20, 15, 25};
  SeedGenerationReport report = generator.Generate(budget);
  ASSERT_EQ(report.categories.size(), 4u);
  EXPECT_EQ(report.categories[0].category, "general terms");
  EXPECT_EQ(report.categories[0].terms_requested, 10u);
  // Each term queried against all five engines.
  EXPECT_EQ(report.categories[0].queries_issued,
            report.categories[0].terms_used * engines.num_engines());
  EXPECT_FALSE(report.seed_urls.empty());
  // Seed URLs deduplicated and sorted.
  for (size_t i = 1; i < report.seed_urls.size(); ++i) {
    EXPECT_LT(report.seed_urls[i - 1], report.seed_urls[i]);
  }
}

TEST_F(CrawlerE2eTest, LargerBudgetYieldsMoreSeeds) {
  web::SearchEngineFederation engines_small(&sim_);
  SeedGenerator small(&lexicons_, &engines_small);
  auto report_small = small.Generate(SeedQueryBudget::FirstCrawl());

  web::SearchEngineFederation engines_big(&sim_);
  SeedGenerator big(&lexicons_, &engines_big);
  auto report_big = big.Generate(SeedQueryBudget{});  // full budget

  EXPECT_GE(report_big.seed_urls.size(), report_small.seed_urls.size());
}

}  // namespace
}  // namespace wsie::crawler
