#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/crf.h"
#include "ml/hmm.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/stats.h"

namespace wsie::ml {
namespace {

// ------------------------------------------------------------ NaiveBayes

text::TermCounts Counts(std::initializer_list<std::pair<const char*, int>> items) {
  text::TermCounts counts;
  for (const auto& [term, n] : items) counts[term] = static_cast<uint32_t>(n);
  return counts;
}

TEST(NaiveBayesTest, LearnsSeparableClasses) {
  NaiveBayesClassifier nb({"bio", "web"});
  for (int i = 0; i < 20; ++i) {
    nb.Update(0, Counts({{"gene", 2}, {"protein", 1}, {"disease", 1}}));
    nb.Update(1, Counts({{"shop", 2}, {"price", 1}, {"deal", 1}}));
  }
  EXPECT_EQ(nb.Predict(Counts({{"gene", 1}, {"disease", 1}})), 0u);
  EXPECT_EQ(nb.Predict(Counts({{"price", 1}, {"shop", 1}})), 1u);
}

TEST(NaiveBayesTest, PosteriorsSumToOne) {
  NaiveBayesClassifier nb({"a", "b", "c"});
  nb.Update(0, Counts({{"x", 1}}));
  nb.Update(1, Counts({{"y", 1}}));
  nb.Update(2, Counts({{"z", 1}}));
  auto probs = nb.PredictProbabilities(Counts({{"x", 1}, {"q", 1}}));
  double sum = probs[0] + probs[1] + probs[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(probs[0], probs[1]);
}

TEST(NaiveBayesTest, IncrementalUpdateShiftsDecision) {
  NaiveBayesClassifier nb({"a", "b"});
  nb.Update(0, Counts({{"term", 5}}));
  nb.Update(1, Counts({{"other", 5}}));
  EXPECT_EQ(nb.Predict(Counts({{"term", 1}})), 0u);
  // Flood class b with "term": the model, updated incrementally, flips.
  for (int i = 0; i < 50; ++i) nb.Update(1, Counts({{"term", 10}}));
  EXPECT_EQ(nb.Predict(Counts({{"term", 1}})), 1u);
}

TEST(NaiveBayesTest, RobustToClassImbalance) {
  // 50:1 imbalance; the minority class still wins on its own vocabulary.
  NaiveBayesClassifier nb({"minority", "majority"});
  nb.Update(0, Counts({{"rarepattern", 3}}));
  for (int i = 0; i < 50; ++i) nb.Update(1, Counts({{"common", 3}}));
  EXPECT_EQ(nb.Predict(Counts({{"rarepattern", 2}})), 0u);
}

TEST(NaiveBayesTest, EmptyFeaturesFallBackToPrior) {
  NaiveBayesClassifier nb({"a", "b"});
  for (int i = 0; i < 9; ++i) nb.Update(0, Counts({{"x", 1}}));
  nb.Update(1, Counts({{"y", 1}}));
  EXPECT_EQ(nb.Predict(Counts({})), 0u);  // prior favours class 0
}

TEST(NaiveBayesTest, TracksVocabularyAndMemory) {
  NaiveBayesClassifier nb({"a", "b"});
  nb.Update(0, Counts({{"x", 1}, {"y", 1}}));
  EXPECT_EQ(nb.vocabulary_size(), 2u);
  EXPECT_EQ(nb.documents_seen(), 1u);
  EXPECT_GT(nb.ApproxMemoryBytes(), 0u);
}

// ------------------------------------------------------------ HMM

LabeledSequence Seq(std::initializer_list<const char*> words,
                    std::initializer_list<int> states) {
  LabeledSequence s;
  for (const char* w : words) s.observations.push_back(w);
  s.states.assign(states);
  return s;
}

TEST(HmmTest, DecodesTrainedPattern) {
  // Two states: 0 = determiner-ish, 1 = noun-ish, alternating.
  TrigramHmm hmm(2);
  for (int i = 0; i < 30; ++i) {
    hmm.AddTrainingSequence(Seq({"the", "dog", "the", "cat"}, {0, 1, 0, 1}));
    hmm.AddTrainingSequence(Seq({"a", "gene", "the", "cell"}, {0, 1, 0, 1}));
  }
  hmm.Finalize();
  std::vector<int> decoded = hmm.Decode({"the", "gene"});
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], 0);
  EXPECT_EQ(decoded[1], 1);
}

TEST(HmmTest, SuffixBackoffHandlesUnknownWords) {
  TrigramHmm hmm(2);
  for (int i = 0; i < 40; ++i) {
    hmm.AddTrainingSequence(
        Seq({"the", "running", "the", "walking"}, {0, 1, 0, 1}));
    hmm.AddTrainingSequence(Seq({"a", "jumping"}, {0, 1}));
  }
  hmm.Finalize();
  // "swimming" is OOV; its -ing suffix indicates state 1.
  std::vector<int> decoded = hmm.Decode({"the", "swimming"});
  EXPECT_EQ(decoded[1], 1);
}

TEST(HmmTest, SingleTokenSequence) {
  TrigramHmm hmm(2);
  for (int i = 0; i < 10; ++i) {
    hmm.AddTrainingSequence(Seq({"yes"}, {1}));
  }
  hmm.Finalize();
  std::vector<int> decoded = hmm.Decode({"yes"});
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], 1);
}

TEST(HmmTest, EmptySequence) {
  TrigramHmm hmm(2);
  hmm.AddTrainingSequence(Seq({"x"}, {0}));
  hmm.Finalize();
  EXPECT_TRUE(hmm.Decode({}).empty());
}

TEST(HmmTest, DecodeIsDeterministic) {
  TrigramHmm hmm(3);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    LabeledSequence s;
    for (int j = 0; j < 8; ++j) {
      int state = static_cast<int>(rng.Uniform(3));
      s.observations.push_back("w" + std::to_string(state));
      s.states.push_back(state);
    }
    hmm.AddTrainingSequence(s);
  }
  hmm.Finalize();
  std::vector<std::string> input = {"w0", "w1", "w2", "w0", "w1"};
  EXPECT_EQ(hmm.Decode(input), hmm.Decode(input));
}

TEST(HmmTest, TrigramContextDisambiguates) {
  // State of third symbol depends on the two previous states.
  TrigramHmm hmm(3);
  for (int i = 0; i < 50; ++i) {
    hmm.AddTrainingSequence(Seq({"a", "b", "x"}, {0, 1, 2}));
    hmm.AddTrainingSequence(Seq({"b", "a", "x"}, {1, 0, 0}));
  }
  hmm.Finalize();
  EXPECT_EQ(hmm.Decode({"a", "b", "x"})[2], 2);
  EXPECT_EQ(hmm.Decode({"b", "a", "x"})[2], 0);
}

// ------------------------------------------------------------ CRF

PositionFeatures Feats(std::initializer_list<const char*> names) {
  PositionFeatures f;
  for (const char* n : names) f.push_back(HashFeature(n));
  return f;
}

TEST(CrfTest, HashFeatureIsStable) {
  EXPECT_EQ(HashFeature("w=gene"), HashFeature("w=gene"));
  EXPECT_NE(HashFeature("w=gene"), HashFeature("w=genes"));
}

TEST(CrfTest, LearnsSimpleTagging) {
  // Label 1 iff feature "isgene" present.
  LinearChainCrf crf(2, 1 << 10);
  std::vector<CrfInstance> data;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    CrfInstance instance;
    for (int j = 0; j < 6; ++j) {
      bool gene = rng.Bernoulli(0.3);
      instance.features.push_back(gene ? Feats({"isgene", "word"})
                                       : Feats({"plain", "word"}));
      instance.labels.push_back(gene ? 1 : 0);
    }
    data.push_back(std::move(instance));
  }
  crf.Train(data);
  std::vector<PositionFeatures> test = {Feats({"plain", "word"}),
                                        Feats({"isgene", "word"}),
                                        Feats({"plain", "word"})};
  std::vector<int> labels = crf.Decode(test);
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 0}));
}

TEST(CrfTest, LearnsTransitionStructure) {
  // Emission features are identical everywhere; only transitions carry
  // signal: label sequence always 0,1,0,1...
  LinearChainCrf crf(2, 1 << 8);
  std::vector<CrfInstance> data;
  for (int i = 0; i < 40; ++i) {
    CrfInstance instance;
    for (int j = 0; j < 8; ++j) {
      instance.features.push_back(Feats({j == 0 ? "start" : "mid"}));
      instance.labels.push_back(j % 2);
    }
    data.push_back(std::move(instance));
  }
  crf.Train(data);
  std::vector<PositionFeatures> test;
  for (int j = 0; j < 8; ++j)
    test.push_back(Feats({j == 0 ? "start" : "mid"}));
  std::vector<int> labels = crf.Decode(test);
  for (int j = 0; j < 8; ++j) EXPECT_EQ(labels[j], j % 2) << "position " << j;
}

TEST(CrfTest, TrainingImprovesLikelihood) {
  LinearChainCrf crf(2, 1 << 8);
  CrfInstance instance;
  instance.features = {Feats({"a"}), Feats({"b"}), Feats({"a"})};
  instance.labels = {0, 1, 0};
  double before = crf.LogLikelihood(instance);
  crf.Train({instance});
  double after = crf.LogLikelihood(instance);
  EXPECT_GT(after, before);
}

TEST(CrfTest, DecodeEmptyInput) {
  LinearChainCrf crf(3);
  EXPECT_TRUE(crf.Decode({}).empty());
}

TEST(CrfTest, MemoryScalesWithFeatureDim) {
  LinearChainCrf small(3, 1 << 8), big(3, 1 << 12);
  EXPECT_LT(small.ApproxMemoryBytes(), big.ApproxMemoryBytes());
}

// ------------------------------------------------------------ metrics

TEST(MetricsTest, ConfusionMath) {
  BinaryConfusion c;
  c.true_positives = 8;
  c.false_positives = 2;
  c.false_negatives = 4;
  c.true_negatives = 86;
  EXPECT_NEAR(c.Precision(), 0.8, 1e-9);
  EXPECT_NEAR(c.Recall(), 8.0 / 12.0, 1e-9);
  EXPECT_NEAR(c.Accuracy(), 0.94, 1e-9);
  double p = 0.8, r = 8.0 / 12.0;
  EXPECT_NEAR(c.F1(), 2 * p * r / (p + r), 1e-9);
}

TEST(MetricsTest, ConfusionAdd) {
  BinaryConfusion c;
  c.Add(true, true);
  c.Add(true, false);
  c.Add(false, true);
  c.Add(false, false);
  EXPECT_EQ(c.true_positives, 1u);
  EXPECT_EQ(c.false_positives, 1u);
  EXPECT_EQ(c.false_negatives, 1u);
  EXPECT_EQ(c.true_negatives, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(MetricsTest, EmptyConfusionIsZeroNotNan) {
  BinaryConfusion c;
  EXPECT_EQ(c.Precision(), 0.0);
  EXPECT_EQ(c.Recall(), 0.0);
  EXPECT_EQ(c.F1(), 0.0);
}

TEST(MetricsTest, KFoldPartitionsAllItems) {
  auto folds = KFoldSplits(103, 10);
  ASSERT_EQ(folds.size(), 10u);
  size_t total = 0;
  std::vector<bool> seen(103, false);
  for (const auto& fold : folds) {
    total += fold.size();
    for (size_t idx : fold) {
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(MetricsTest, KFoldMoreFoldsThanItems) {
  auto folds = KFoldSplits(3, 10);
  EXPECT_EQ(folds.size(), 3u);
}

TEST(MetricsTest, SummarizeFoldsAverages) {
  BinaryConfusion perfect;
  perfect.true_positives = 10;
  perfect.true_negatives = 10;
  BinaryConfusion half;
  half.true_positives = 5;
  half.false_positives = 5;
  half.false_negatives = 5;
  half.true_negatives = 5;
  auto result = SummarizeFolds({perfect, half});
  EXPECT_NEAR(result.mean_precision, 0.75, 1e-9);
  EXPECT_NEAR(result.mean_recall, 0.75, 1e-9);
}

// ------------------------------------------------------------ stats

TEST(StatsTest, DescribeBasics) {
  Descriptive d = Describe({1, 2, 3, 4, 5});
  EXPECT_EQ(d.n, 5u);
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.median, 3.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  EXPECT_NEAR(d.stddev, std::sqrt(2.5), 1e-9);
}

TEST(StatsTest, DescribeEmpty) {
  Descriptive d = Describe({});
  EXPECT_EQ(d.n, 0u);
  EXPECT_EQ(d.mean, 0.0);
}

TEST(StatsTest, MwwIdenticalSamplesNotSignificant) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  MannWhitneyResult r = MannWhitneyU(a, a);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(StatsTest, MwwShiftedSamplesSignificant) {
  std::vector<double> a, b;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(3.0, 1.0));
  }
  MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(StatsTest, MwwSymmetric) {
  std::vector<double> a = {1, 5, 2, 8, 3};
  std::vector<double> b = {9, 4, 7, 6, 10};
  EXPECT_NEAR(MannWhitneyU(a, b).p_value, MannWhitneyU(b, a).p_value, 1e-9);
}

TEST(StatsTest, MwwHandlesTies) {
  std::vector<double> a = {1, 1, 1, 2, 2};
  std::vector<double> b = {2, 2, 3, 3, 3};
  MannWhitneyResult r = MannWhitneyU(a, b);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
  EXPECT_LT(r.p_value, 0.2);  // clear shift despite ties
}

TEST(StatsTest, MwwEmptyInput) {
  EXPECT_EQ(MannWhitneyU({}, {1.0}).p_value, 1.0);
}

TEST(StatsTest, NormalizeCountsSumsToOne) {
  Distribution d = NormalizeCounts({{"a", 3}, {"b", 1}});
  EXPECT_NEAR(d["a"], 0.75, 1e-9);
  EXPECT_NEAR(d["b"], 0.25, 1e-9);
}

TEST(StatsTest, JsdIdenticalIsZero) {
  Distribution p = NormalizeCounts({{"a", 1}, {"b", 1}});
  EXPECT_NEAR(JensenShannonDivergence(p, p), 0.0, 1e-9);
}

TEST(StatsTest, JsdDisjointIsOne) {
  Distribution p = NormalizeCounts({{"a", 1}});
  Distribution q = NormalizeCounts({{"b", 1}});
  EXPECT_NEAR(JensenShannonDivergence(p, q), 1.0, 1e-6);
}

TEST(StatsTest, JsdSymmetricAndBounded) {
  Distribution p = NormalizeCounts({{"a", 5}, {"b", 2}, {"c", 1}});
  Distribution q = NormalizeCounts({{"b", 4}, {"c", 3}, {"d", 2}});
  double pq = JensenShannonDivergence(p, q);
  double qp = JensenShannonDivergence(q, p);
  EXPECT_NEAR(pq, qp, 1e-9);
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, 1.0);
}

TEST(StatsTest, KlAsymmetric) {
  Distribution p = NormalizeCounts({{"a", 9}, {"b", 1}});
  Distribution q = NormalizeCounts({{"a", 5}, {"b", 5}});
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

}  // namespace
}  // namespace wsie::ml
