// Quickstart: generate a small Medline-style corpus, run the full analysis
// data flow (sentences -> linguistics -> POS -> dictionary & ML NER), and
// print what was extracted.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"

int main() {
  using namespace wsie;

  // 1. A shared analysis context: lexicons, trained CRF taggers (on
  //    Medline-register gold), trained HMM POS tagger.
  std::printf("Training taggers (CRF x3, HMM POS)...\n");
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 400;  // quick demo settings
  auto context = std::make_shared<const core::AnalysisContext>(context_config);

  // 2. Generate 50 Medline-style abstracts.
  corpus::TextGenerator generator(&context->lexicons(),
                                  corpus::ProfileFor(corpus::CorpusKind::kMedline),
                                  /*seed=*/1);
  std::vector<corpus::Document> docs = generator.GenerateCorpus(1, 50);
  std::printf("Generated %zu abstracts (%zu chars in doc 1).\n", docs.size(),
              docs[0].text.size());

  // 3. Build and run the consolidated analysis flow (Fig. 2 of the paper).
  core::FlowOptions options;  // defaults: linguistic + all entity annotators
  dataflow::Plan plan = core::BuildAnalysisFlow(context, options);
  std::printf("Flow has %zu operators.\n", plan.num_operators());

  dataflow::ExecutorConfig executor_config;
  executor_config.dop = 4;
  auto result = core::RunFlow(plan, docs, executor_config);
  if (!result.ok()) {
    std::printf("Flow failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the results.
  core::CorpusAnalysis analysis = core::AnalyzeRecords(
      corpus::CorpusKind::kMedline, result->sink_outputs.at("analyzed"));
  std::printf("\nCorpus: %zu docs, %llu sentences, mean %.0f chars/doc\n",
              analysis.num_docs(),
              static_cast<unsigned long long>(analysis.total_sentences),
              analysis.mean_chars());
  const char* type_names[] = {"gene", "drug", "disease"};
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    std::printf(
        "%-8s dict: %5zu distinct names (%.1f /1000 sentences) | "
        "ml: %5zu distinct names (%.1f /1000 sentences)\n",
        type_names[type], analysis.DistinctNames(type, 0),
        analysis.EntitiesPer1000Sentences(type, 0),
        analysis.DistinctNames(type, 1),
        analysis.EntitiesPer1000Sentences(type, 1));
  }
  uint64_t negations = 0, parens = 0;
  for (const auto& d : analysis.per_doc) {
    negations += d.negations;
    parens += d.parentheses;
  }
  std::printf("negations: %llu, parenthesized spans: %llu\n",
              static_cast<unsigned long long>(negations),
              static_cast<unsigned long long>(parens));

  // 5. Per-operator runtime profile.
  std::printf("\n%-28s %10s %10s %12s %8s\n", "operator", "recs in",
              "recs out", "bytes out", "sec");
  for (const auto& s : result->operator_stats) {
    std::printf("%-28s %10llu %10llu %12llu %8.3f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.records_in),
                static_cast<unsigned long long>(s.records_out),
                static_cast<unsigned long long>(s.bytes_out),
                s.open_seconds + s.process_seconds);
  }
  return 0;
}
