// Corpus-comparison example: the paper's headline study in miniature.
// Generates the four corpora (relevant crawl, irrelevant crawl, Medline
// abstracts, PMC full texts), runs the same analysis flow over each, and
// prints the linguistic and biomedical-entity contrasts of Sect. 4.3.
//
// Usage: ./build/examples/corpus_comparison [docs_per_corpus]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"

int main(int argc, char** argv) {
  using namespace wsie;
  size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;

  std::printf("Training taggers...\n");
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 400;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};

  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  uint64_t seed = 1;
  for (auto kind : kinds) {
    corpus::TextGenerator generator(&context->lexicons(),
                                    corpus::ProfileFor(kind), seed);
    // Medline gets more (short) documents, as in Table 3's proportions.
    size_t docs = kind == corpus::CorpusKind::kMedline ? n * 5 : n;
    auto corpus_docs = generator.GenerateCorpus(seed * 100000, docs);
    core::FlowOptions options;
    dataflow::Plan plan = core::BuildAnalysisFlow(context, options);
    auto result = core::RunFlow(plan, corpus_docs,
                                dataflow::ExecutorConfig{4, 0, 8});
    if (!result.ok()) {
      std::printf("flow failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    analyses.emplace(kind, core::AnalyzeRecords(
                               kind, result->sink_outputs.at("analyzed")));
    ++seed;
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };

  std::printf("\n%-18s %8s %10s %10s %9s %9s %9s\n", "corpus", "docs",
              "mean chrs", "sentences", "neg/100s", "par/100s", "pron/100s");
  for (auto kind : kinds) {
    const auto& a = analyses.at(kind);
    double pronouns = 0;
    for (size_t c = 0; c < core::kNumPronounClasses; ++c) {
      pronouns += mean(a.PronounsPer100Sentences(
          static_cast<nlp::PronounClass>(c)));
    }
    std::printf("%-18s %8zu %10.0f %10llu %9.2f %9.2f %9.2f\n",
                corpus::CorpusKindName(kind), a.num_docs(), a.mean_chars(),
                static_cast<unsigned long long>(a.total_sentences),
                mean(a.NegationsPer100Sentences()),
                mean(a.ParenthesesPer100Sentences()), pronouns);
  }

  std::printf("\nentity annotations per 1000 sentences (dict | ml):\n");
  std::printf("%-18s %15s %15s %15s\n", "corpus", "gene", "drug", "disease");
  for (auto kind : kinds) {
    const auto& a = analyses.at(kind);
    std::printf("%-18s %6.1f | %6.1f %6.1f | %6.1f %6.1f | %6.1f\n",
                corpus::CorpusKindName(kind), a.EntitiesPer1000Sentences(0, 0),
                a.EntitiesPer1000Sentences(0, 1),
                a.EntitiesPer1000Sentences(1, 0),
                a.EntitiesPer1000Sentences(1, 1),
                a.EntitiesPer1000Sentences(2, 0),
                a.EntitiesPer1000Sentences(2, 1));
  }

  // Significance and divergence (Sect. 4.3).
  const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
  const auto& medl = analyses.at(corpus::CorpusKind::kMedline);
  std::printf("\nMWW P-value, doc length rel vs medline: %.2e\n",
              core::MwwPValue(rel.DocLengths(), medl.DocLengths()));
  std::printf("JSD of dictionary gene-name distributions:\n");
  for (auto kind : {corpus::CorpusKind::kIrrelevantWeb,
                    corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc}) {
    std::printf("  relevant vs %-18s %.4f\n", corpus::CorpusKindName(kind),
                core::EntityDistributionJsd(rel, analyses.at(kind), 0, 0));
  }

  // The "new knowledge on the web" finding: names only in the relevant
  // crawl.
  std::array<std::set<std::string>, 4> gene_sets;
  for (size_t k = 0; k < 4; ++k) {
    gene_sets[k] = core::DistinctNameSet(analyses.at(kinds[k]), 0, 0);
  }
  for (const auto& region : core::ComputeOverlap(gene_sets)) {
    if (region.membership == 0x1) {
      std::printf("\ndistinct gene names found ONLY in the relevant crawl: "
                  "%llu (%.1f%% of the union) — the paper's evidence that "
                  "the web holds knowledge absent from the literature\n",
                  static_cast<unsigned long long>(region.count),
                  100 * region.share);
    }
  }
  return 0;
}
