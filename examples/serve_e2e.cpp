// Serving end-to-end: focused crawl over the synthetic web -> analysis
// data flow with a StoreSink tap -> durable annotation store on disk ->
// reopen the store cold and answer a fixed query script (top-10 genes,
// drug–disease co-occurrence) through the query engine.
//
// Every printed number is derived from seeded components, so the output
// is byte-identical across runs — scripts/serve_check.sh runs this binary
// twice and diffs the transcripts. Exits non-zero if the store round-trip
// is not exact or any self-check fails.
//
// Usage: ./build/examples/serve_e2e [store_dir]

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"
#include "store/store_sink.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main(int argc, char** argv) {
  using namespace wsie;
  const std::string store_dir =
      argc > 1 ? argv[1] : "/tmp/wsie_serve_store";
  std::filesystem::remove_all(store_dir);

  // 1. Focused crawl over a seeded synthetic web. One fetch thread keeps
  //    the crawl order (and thus the corpus) fully deterministic.
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 400;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);
  web::WebConfig web_config;
  web_config.num_hosts = 60;
  web_config.mean_pages_per_host = 8;
  web_config.seed = 77;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &context->lexicons());
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&context->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{20, 30, 30, 30});
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 120;
  crawler::RelevanceClassifier classifier(&context->lexicons(),
                                          classifier_config);
  crawler::CrawlerConfig crawl_config;
  crawl_config.max_pages = 250;
  crawl_config.num_fetch_threads = 1;
  crawler::FocusedCrawler crawler(&sim, &classifier, crawl_config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  const auto& docs = crawler.relevant_corpus().documents();
  std::printf("crawl: %zu relevant documents\n", docs.size());
  if (docs.size() < 4) return 1;

  // 2. Analysis flow with a StoreSink tap; annotations stream into the
  //    store as one segment, then get compacted.
  dataflow::Plan plan = core::BuildAnalysisFlow(context, core::FlowOptions{});
  auto sink = std::make_shared<store::StoreSink>();
  if (store::AttachStoreSink(&plan, sink) == dataflow::Plan::kInvalidNode)
    return 1;
  auto result = core::RunFlow(plan, docs, dataflow::ExecutorConfig{4, 0, 8});
  if (!result.ok()) {
    std::printf("flow failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  core::CorpusAnalysis analysis = core::AnalyzeRecords(
      corpus::CorpusKind::kRelevantWeb, result->sink_outputs.at("analyzed"));
  {
    auto store = store::AnnotationStore::Open(store_dir);
    if (!store.ok()) return 1;
    if (!sink->FlushTo(store->get()).ok()) return 1;
    if (!(*store)->Compact().ok()) return 1;
  }  // store closed here — the query path below starts from cold files

  // 3. Reopen from disk and serve the fixed query script.
  auto reopened = store::AnnotationStore::Open(store_dir);
  if (!reopened.ok()) {
    std::printf("reopen failed: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  serve::QueryEngine engine(*reopened);
  const int corpus_index = static_cast<int>(corpus::CorpusKind::kRelevantWeb);

  std::printf("\nTop 10 gene names in the relevant crawl (all methods):\n");
  serve::QueryFilter genes;
  genes.corpus = corpus_index;
  genes.type = 0;
  auto top_genes = engine.TopK(10, genes);
  for (size_t i = 0; i < top_genes.size(); ++i) {
    std::printf("  %2zu. %-24s %6llu occurrences\n", i + 1,
                top_genes[i].name.c_str(),
                static_cast<unsigned long long>(top_genes[i].count));
  }

  serve::QueryFilter drugs = genes;
  drugs.type = 1;
  serve::QueryFilter diseases = genes;
  diseases.type = 2;
  auto top_drugs = engine.TopK(3, drugs);
  auto top_diseases = engine.TopK(3, diseases);
  std::printf("\nDrug–disease co-occurrence (top 3 x top 3):\n");
  std::printf("  %-20s %-20s %6s %9s\n", "drug", "disease", "docs",
              "sentences");
  bool cooccurrence_symmetric = true;
  for (const auto& drug : top_drugs) {
    for (const auto& disease : top_diseases) {
      auto forward = engine.CoOccurrence(drug.name, disease.name);
      auto backward = engine.CoOccurrence(disease.name, drug.name);
      if (forward.docs != backward.docs ||
          forward.sentences != backward.sentences) {
        cooccurrence_symmetric = false;
      }
      std::printf("  %-20s %-20s %6llu %9llu\n", drug.name.c_str(),
                  disease.name.c_str(),
                  static_cast<unsigned long long>(forward.docs),
                  static_cast<unsigned long long>(forward.sentences));
    }
  }

  // 4. Self-checks: the cold-opened store reproduces the in-memory
  //    analysis exactly; lookups and co-occurrence behave.
  bool exact = true;
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    for (size_t method = 0; method < core::kNumMethods; ++method) {
      auto frequency = engine.CorpusFrequency(
          corpus_index, static_cast<int>(type), static_cast<int>(method));
      if (frequency.distinct_names != analysis.DistinctNames(type, method))
        exact = false;
      if (frequency.per_1000_sentences !=
          analysis.EntitiesPer1000Sentences(type, method))
        exact = false;
    }
    if (engine.CorpusFrequency(corpus_index, static_cast<int>(type))
            .distinct_names != analysis.DistinctNamesAllMethods(type))
      exact = false;
  }
  bool lookups_ok = !top_genes.empty() && !top_drugs.empty() &&
                    !top_diseases.empty();
  if (lookups_ok) {
    auto lookup = engine.Lookup(top_genes[0].name);
    if (!lookup.found || lookup.count != top_genes[0].count)
      lookups_ok = false;
  }
  std::printf("\nstore round-trip vs in-memory analysis: %s\n",
              exact ? "EXACT" : "MISMATCH");
  std::printf("lookup/top-k consistency: %s\n", lookups_ok ? "OK" : "FAILED");
  std::printf("co-occurrence symmetry: %s\n",
              cooccurrence_symmetric ? "OK" : "FAILED");
  if (!exact || !lookups_ok || !cooccurrence_symmetric) return 1;
  std::printf("OK: persisted store serves the crawl's annotations exactly\n");
  return 0;
}
