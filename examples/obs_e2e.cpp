// Observability end-to-end: run the full pipeline — synthetic web with
// injected faults -> focused crawl (retries, circuit breaker, checkpoints)
// -> analysis data flow (sentences -> linguistics -> NER) — with tracing
// enabled, then export and validate the two observability artifacts:
//
//   1. a Chrome trace_event JSON (loadable in chrome://tracing or
//      https://ui.perfetto.dev), validated in-process with
//      obs::ValidateChromeTrace, and
//   2. a Prometheus text dump of the whole metrics registry.
//
// Exits non-zero if the trace fails validation or an expected metric
// family is missing. scripts/obs_check.sh drives this binary.
//
// Usage: ./build/examples/obs_e2e [trace.json] [metrics.prom] [fork_shards]
//                                 [--stitch-only]
//
// fork_shards (default 8, 0 disables) adds the distributed-observability
// leg: the analysis flow re-runs on that many forked socketpair workers,
// each worker ships its TraceRecorder ring + MetricsSnapshot back over the
// transport's obs channel, and the coordinator validates the stitched
// multi-pid Chrome trace (written to <trace.json>.stitched.json) plus the
// merged-counter and per-shard-skew invariants. --stitch-only skips the
// crawl/serve legs and runs just that leg at a reduced scale — the mode
// the sanitizer scripts drive, where the full pipeline would be too slow.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "crawler/sharded_frontier.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/remote.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "serve/admission_queue.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "store/annotation_store.h"
#include "store/store_sink.h"
#include "vec/ann_index.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

namespace {

// The single-process legs (sections 1-3d): faulty web -> crawl -> analysis
// flow -> store -> admission queue + HTTP front end -> in-process shards.
// Returns false on failure.
bool RunFullPipeline(
    const std::shared_ptr<const wsie::core::AnalysisContext>& context,
    const std::vector<wsie::corpus::Document>& docs,
    const std::string& prom_path) {
  using namespace wsie;

  // 1. Synthetic web with a fault plan: flaky hosts time out, flap their
  //    robots.txt, serve 5xx and damaged bodies.
  corpus::EntityLexicons lexicons(corpus::LexiconConfig{3000, 400, 400, 7});
  web::WebConfig web_config;
  web_config.num_hosts = 120;
  web_config.mean_pages_per_host = 12;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &lexicons);
  fault::FaultPlanConfig fault_config;
  fault_config.flaky_host_frac = 0.5;
  fault::FaultPlan faults(fault_config);
  sim.set_fault_plan(&faults);

  // 2. Focused crawl with retries, a per-host breaker, and checkpoints
  //    every few batches (so the checkpoint-latency histogram fills).
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&lexicons, &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{60, 120, 100, 120});
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 200;
  crawler::RelevanceClassifier classifier(&lexicons, classifier_config);
  crawler::CrawlerConfig crawl_config;
  crawl_config.max_pages = 1200;
  crawl_config.num_fetch_threads = 8;
  crawl_config.breaker.failure_threshold = 3;
  crawl_config.checkpoint_every_batches = 4;
  crawl_config.checkpoint_path = prom_path + ".ckpt";
  crawler::FocusedCrawler crawler(&sim, &classifier, crawl_config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  std::printf("crawl: %llu pages fetched, %llu errors, %llu faults "
              "injected\n",
              static_cast<unsigned long long>(crawler.stats().fetched),
              static_cast<unsigned long long>(crawler.stats().fetch_errors),
              static_cast<unsigned long long>(faults.faults_injected()));

  // 3. Analysis data flow over the generated Medline corpus (fills the
  //    wsie.dataflow.operator.* and wsie.nlp/ie.* families).
  dataflow::Plan plan = core::BuildAnalysisFlow(context, core::FlowOptions{});
  auto sink = std::make_shared<store::StoreSink>();
  if (store::AttachStoreSink(&plan, sink) == dataflow::Plan::kInvalidNode)
    return false;
  dataflow::ExecutorConfig executor_config;
  executor_config.dop = 4;
  auto result = core::RunFlow(plan, docs, executor_config);
  if (!result.ok()) {
    std::printf("flow failed: %s\n", result.status().ToString().c_str());
    return false;
  }
  std::printf("analysis flow: %zu operators over %zu docs\n",
              plan.num_operators(), docs.size());

  // 3b. Persist annotations through the store and serve a few queries so
  //     the wsie.store.* and wsie.serve.* families fill.
  const std::string store_dir = prom_path + ".store";
  std::filesystem::remove_all(store_dir);
  auto store = store::AnnotationStore::Open(store_dir);
  if (!store.ok()) {
    std::printf("store open failed: %s\n", store.status().ToString().c_str());
    return false;
  }
  if (!sink->FlushTo(store->get()).ok() || !(*store)->Compact().ok()) {
    std::printf("store flush/compact failed\n");
    return false;
  }
  auto engine = std::make_shared<const serve::QueryEngine>(*store);
  const int medline = static_cast<int>(corpus::CorpusKind::kMedline);
  auto genes = engine->TopK(5, serve::QueryFilter{medline, 0, serve::kAny});
  uint64_t lookup_hits = 0;
  for (const auto& gene : genes) {
    if (engine->Lookup(gene.name).found) ++lookup_hits;
    engine->PrefixScan(gene.name.substr(0, 2), 8);
  }
  auto frequency = engine->CorpusFrequency(medline, 0);
  if (genes.size() >= 2) engine->CoOccurrence(genes[0].name, genes[1].name);
  std::printf("store: %zu segments served, top-%zu gene lookups %llu hits, "
              "%.1f gene mentions per 1000 sentences\n",
              (*store)->num_segments(), genes.size(),
              static_cast<unsigned long long>(lookup_hits),
              frequency.per_1000_sentences);

  // 3b'. Build the semantic vector index and run similarity queries so the
  //      wsie.vec.* families (index gauges, build histogram, query
  //      counters/latency/hops) fill.
  {
    vec::VecIndexConfig vec_config;
    vec_config.embedder.dim = 64;
    vec_config.max_degree = 16;
    vec_config.build_beam = 32;
    Status vec_built = (*store)->BuildVectorIndex(vec_config);
    if (!vec_built.ok()) {
      std::printf("vector index build failed: %s\n",
                  vec_built.ToString().c_str());
      return false;
    }
    uint64_t similar_hits = 0;
    for (const auto& gene : genes) {
      const auto similar = engine->Similar(gene.name, 3);
      if (similar.index_available) ++similar_hits;
    }
    const auto text_query = engine->Similar("kinase inhibitor", 3);
    std::printf("vec: index over %zu entities, %llu entity similarity "
                "queries answered, text query available=%d\n",
                (*store)->snapshot().vectors->size(),
                static_cast<unsigned long long>(similar_hits),
                text_query.index_available ? 1 : 0);
    if (similar_hits != genes.size() || !text_query.index_available) {
      std::printf("FAILED: similarity path served nothing\n");
      return false;
    }
  }

  // 3c. Same queries through the batched admission queue and the HTTP
  //     front end — with 1-in-N request sampling forced to every request
  //     and a slow-query log attached — so the wsie.serve.admission.* /
  //     wsie.serve.server.* / wsie.serve.request.* / wsie.serve.sampled /
  //     wsie.serve.slowlog.* families fill too.
  {
    serve::AdmissionQueue::Options queue_options;
    queue_options.trace_sample_every = 1;
    queue_options.slow_log = std::make_shared<serve::SlowQueryLog>();
    auto queue =
        std::make_shared<serve::AdmissionQueue>(engine, queue_options);
    serve::QueryEngine::Request request;
    request.kind = serve::QueryEngine::Request::Kind::kTopK;
    request.limit = 5;
    serve::QueryEngine::Response response;
    uint64_t admitted = 0;
    if (queue->Submit(request, &response)) ++admitted;
    for (const auto& gene : genes) {
      request.kind = serve::QueryEngine::Request::Kind::kLookup;
      request.name = gene.name;
      if (queue->Submit(request, &response)) ++admitted;
    }
    serve::Server server(queue, serve::Server::Options{});
    uint64_t served = 0;
    if (server.Start().ok()) {
      for (const char* target :
           {"/healthz", "/topk?k=3", "/similar?q=kinase&k=3",
            "/debug/slowlog", "/debug/trace"}) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          std::string get = std::string("GET ") + target + " HTTP/1.1\r\n\r\n";
          if (::send(fd, get.data(), get.size(), 0) ==
              static_cast<ssize_t>(get.size())) {
            char buf[4096];
            while (::recv(fd, buf, sizeof(buf), 0) > 0) {
            }
            ++served;
          }
        }
        ::close(fd);
      }
      server.Stop();
    }
    queue->Stop();
    const auto slow_top = queue_options.slow_log->TopByLatency();
    std::printf("admission: %llu batched queries (all sampled under trace "
                "spans), %llu HTTP requests over loopback port %u, "
                "slow-query log holds %zu entries\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(served),
                static_cast<unsigned>(server.port()), slow_top.size());
    if (admitted == 0 || served == 0 || slow_top.empty()) {
      std::printf("FAILED: admission/server/slowlog path served nothing\n");
      return false;
    }
  }

  // 3d. The same flow on two in-process shards, plus a small host-sharded
  //     crawl, so the wsie.shard.* and wsie.exchange.* families fill.
  {
    shard::ShardOptions shard_options;
    shard_options.num_shards = 2;
    auto sharded = core::RunFlowSharded(context, core::FlowOptions{}, docs,
                                        shard_options);
    if (!sharded.ok()) {
      std::printf("sharded flow failed: %s\n",
                  sharded.status().ToString().c_str());
      return false;
    }
    crawler::ShardedCrawlOptions crawl_options;
    crawl_options.num_shards = 2;
    crawl_options.config.max_pages = 60;
    crawler::ShardedCrawl sharded_crawl(&sim, &classifier, crawl_options);
    sharded_crawl.InjectSeeds(seeds.seed_urls);
    sharded_crawl.Crawl();
    std::printf("sharded: flow on %zu shards moved %llu rows / %llu bytes; "
                "crawl exchanged %llu urls in %llu rounds\n",
                shard_options.num_shards,
                static_cast<unsigned long long>(sharded->rows_shuffled),
                static_cast<unsigned long long>(sharded->bytes_moved),
                static_cast<unsigned long long>(sharded_crawl.urls_exchanged()),
                static_cast<unsigned long long>(sharded_crawl.rounds()));
  }
  return true;
}

// Section 3e: the distributed-observability leg. Re-runs the analysis flow
// on `fork_shards` forked socketpair workers with obs collection on, then
// checks the three invariants the CollectRemote design promises: the
// stitched multi-pid Chrome trace validates, the coordinator-side merged
// counters equal the per-shard sums exactly, and the skew report covers
// every shard. Writes the stitched trace next to `trace_path`.
bool RunMultiProcessStitch(
    const std::shared_ptr<const wsie::core::AnalysisContext>& context,
    const std::vector<wsie::corpus::Document>& docs, size_t fork_shards,
    const std::string& trace_path) {
  using namespace wsie;
  shard::ShardOptions options;
  options.num_shards = fork_shards;
  options.multiprocess = true;
  auto result = core::RunFlowSharded(context, core::FlowOptions{}, docs,
                                     options);
  if (!result.ok()) {
    std::printf("multiprocess flow failed: %s\n",
                result.status().ToString().c_str());
    return false;
  }
  const shard::ShardObsReport& report = result->obs;
  if (!report.collected || report.per_shard.size() != fork_shards) {
    std::printf("FAILED: expected %zu worker obs bundles, got %zu\n",
                fork_shards, report.per_shard.size());
    return false;
  }
  Status stitched_ok = obs::ValidateChromeTrace(report.stitched_trace_json);
  if (!stitched_ok.ok()) {
    std::printf("STITCHED TRACE INVALID: %s\n",
                stitched_ok.ToString().c_str());
    return false;
  }
  // Merged counters must equal the per-shard sums exactly.
  for (const obs::CounterSnapshot& counter : report.merged.counters) {
    uint64_t sum = 0;
    for (const obs::ObsBundle& bundle : report.per_shard) {
      sum += bundle.metrics.CounterValue(counter.name);
    }
    if (counter.value != sum) {
      std::printf("FAILED: merged %s = %llu but per-shard sum = %llu\n",
                  counter.name.c_str(),
                  static_cast<unsigned long long>(counter.value),
                  static_cast<unsigned long long>(sum));
      return false;
    }
  }
  const std::string stitched_path = trace_path + ".stitched.json";
  std::FILE* file = std::fopen(stitched_path.c_str(), "w");
  if (file == nullptr) {
    std::printf("cannot write %s\n", stitched_path.c_str());
    return false;
  }
  std::fwrite(report.stitched_trace_json.data(), 1,
              report.stitched_trace_json.size(), file);
  std::fclose(file);
  std::printf("stitched: %zu forked workers -> %zu processes, %zu threads, "
              "%zu events (%llu ring drops) in one trace -> %s\n",
              fork_shards, report.stitch.processes, report.stitch.threads,
              report.stitch.events,
              static_cast<unsigned long long>(report.stitch.dropped),
              stitched_path.c_str());
  std::printf("  per-shard skew (share of records):");
  for (const shard::ShardSkewRow& row : report.skew) {
    std::printf(" s%d=%.1f%%", row.shard, 100 * row.share);
  }
  std::printf("  bundle bytes: %llu\n",
              static_cast<unsigned long long>(report.bundle_bytes));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsie;
  const std::string trace_path =
      argc > 1 ? argv[1] : "/tmp/wsie_obs_trace.json";
  const std::string prom_path =
      argc > 2 ? argv[2] : "/tmp/wsie_obs_metrics.prom";
  size_t fork_shards = 8;
  bool stitch_only = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stitch-only") {
      stitch_only = true;
    } else {
      fork_shards = std::strtoul(arg.c_str(), nullptr, 10);
    }
  }

  obs::TraceRecorder::Global().SetEnabled(true);
  std::printf("observability: metrics %s, tracing on (WSIE_OBS=%d)%s\n",
              obs::MetricsEnabled() ? "on" : "off", WSIE_OBS,
              stitch_only ? ", stitch-only mode" : "");

  // Shared analysis context + corpus (scaled down in stitch-only mode,
  // where the sanitizer overhead makes tagger training the bottleneck).
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = stitch_only ? 120 : 400;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);
  corpus::TextGenerator generator(
      &context->lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline),
      /*seed=*/1);
  std::vector<corpus::Document> docs =
      generator.GenerateCorpus(1, stitch_only ? 12 : 30);

  if (!stitch_only && !RunFullPipeline(context, docs, prom_path)) return 1;
  if (fork_shards > 0 &&
      !RunMultiProcessStitch(context, docs, fork_shards, trace_path)) {
    return 1;
  }

  // A short profiler blip so the wsie.obs.profiler.* families export with
  // real values (the continuous profiler itself is exercised by bench
  // binaries via --profile).
  {
    obs::Profiler& profiler = obs::Profiler::Global();
    if (profiler.Start().ok()) {
      // Burn CPU until at least one SIGPROF tick lands (bounded at ~2s of
      // wall time so a loaded machine can't hang the example).
      volatile double sink = 1.0;
      const std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (profiler.samples() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 2000000; ++i) sink = sink * 1.0000001 + 0.5;
      }
      profiler.Stop();
      std::printf("profiler blip: %llu samples captured\n",
                  static_cast<unsigned long long>(profiler.samples()));
    }
  }

  // 4. Export + validate the trace.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(false);
  const std::string trace_json = recorder.ToChromeTraceJson();
  obs::TraceCheckReport report;
  Status trace_ok = obs::ValidateChromeTrace(trace_json, &report);
  if (!trace_ok.ok()) {
    std::printf("TRACE INVALID: %s\n", trace_ok.ToString().c_str());
    return 1;
  }
  Status written = recorder.WriteChromeTrace(trace_path);
  if (!written.ok()) {
    std::printf("trace write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trace: %zu events, %zu spans across %zu threads -> %s "
              "(%llu dropped; load in chrome://tracing or ui.perfetto.dev)\n",
              report.num_events, report.num_spans, report.num_threads,
              trace_path.c_str(),
              static_cast<unsigned long long>(recorder.dropped()));

  // 5. Export the metrics registry and sanity-check the key families.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  {
    std::FILE* file = std::fopen(prom_path.c_str(), "w");
    if (file == nullptr) {
      std::printf("cannot write %s\n", prom_path.c_str());
      return 1;
    }
    const std::string prom = registry.DumpPrometheusText();
    std::fwrite(prom.data(), 1, prom.size(), file);
    std::fclose(file);
  }
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  struct Family {
    const char* prefix;
    uint64_t total;
  };
  Family families[] = {
      {"wsie.dataflow.operator.", snapshot.CounterPrefixSum("wsie.dataflow.operator.")},
      {"wsie.crawler.fetch.", snapshot.CounterPrefixSum("wsie.crawler.fetch.")},
      {"wsie.fault.", snapshot.CounterPrefixSum("wsie.fault.")},
      {"wsie.nlp.", snapshot.CounterPrefixSum("wsie.nlp.")},
      {"wsie.ie.", snapshot.CounterPrefixSum("wsie.ie.")},
      {"wsie.store.", snapshot.CounterPrefixSum("wsie.store.")},
      {"wsie.serve.", snapshot.CounterPrefixSum("wsie.serve.")},
      {"wsie.shard.", snapshot.CounterPrefixSum("wsie.shard.")},
      {"wsie.exchange.", snapshot.CounterPrefixSum("wsie.exchange.")},
  };
  bool all_present = true;
  std::printf("metrics: %zu registered -> %s\n", registry.num_metrics(),
              prom_path.c_str());
  // In stitch-only mode the crawl/serve legs did not run, so only the
  // stitched-run invariants (checked above) gate; the family sums are
  // informational.
  for (const Family& family : families) {
    std::printf("  %-26s sum %llu %s\n", family.prefix,
                static_cast<unsigned long long>(family.total),
                family.total > 0 || stitch_only ? "" : "(MISSING)");
    if (family.total == 0 && !stitch_only) all_present = false;
  }
  double harvest = snapshot.GaugeValue("wsie.crawler.harvest_rate");
  std::printf("  harvest-rate gauge: %.3f\n", harvest);
  if (!all_present) {
    std::printf("FAILED: expected metric families missing\n");
    return 1;
  }
  std::printf("OK: trace valid, all metric families populated\n");
  return 0;
}
