// Observability end-to-end: run the full pipeline — synthetic web with
// injected faults -> focused crawl (retries, circuit breaker, checkpoints)
// -> analysis data flow (sentences -> linguistics -> NER) — with tracing
// enabled, then export and validate the two observability artifacts:
//
//   1. a Chrome trace_event JSON (loadable in chrome://tracing or
//      https://ui.perfetto.dev), validated in-process with
//      obs::ValidateChromeTrace, and
//   2. a Prometheus text dump of the whole metrics registry.
//
// Exits non-zero if the trace fails validation or an expected metric
// family is missing. scripts/obs_check.sh drives this binary.
//
// Usage: ./build/examples/obs_e2e [trace.json] [metrics.prom]

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "crawler/sharded_frontier.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "serve/admission_queue.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "store/annotation_store.h"
#include "store/store_sink.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main(int argc, char** argv) {
  using namespace wsie;
  const std::string trace_path =
      argc > 1 ? argv[1] : "/tmp/wsie_obs_trace.json";
  const std::string prom_path =
      argc > 2 ? argv[2] : "/tmp/wsie_obs_metrics.prom";

  obs::TraceRecorder::Global().SetEnabled(true);
  std::printf("observability: metrics %s, tracing on (WSIE_OBS=%d)\n",
              obs::MetricsEnabled() ? "on" : "off", WSIE_OBS);

  // 1. Synthetic web with a fault plan: flaky hosts time out, flap their
  //    robots.txt, serve 5xx and damaged bodies.
  corpus::EntityLexicons lexicons(corpus::LexiconConfig{3000, 400, 400, 7});
  web::WebConfig web_config;
  web_config.num_hosts = 120;
  web_config.mean_pages_per_host = 12;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &lexicons);
  fault::FaultPlanConfig fault_config;
  fault_config.flaky_host_frac = 0.5;
  fault::FaultPlan faults(fault_config);
  sim.set_fault_plan(&faults);

  // 2. Focused crawl with retries, a per-host breaker, and checkpoints
  //    every few batches (so the checkpoint-latency histogram fills).
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&lexicons, &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{60, 120, 100, 120});
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 200;
  crawler::RelevanceClassifier classifier(&lexicons, classifier_config);
  crawler::CrawlerConfig crawl_config;
  crawl_config.max_pages = 1200;
  crawl_config.num_fetch_threads = 8;
  crawl_config.breaker.failure_threshold = 3;
  crawl_config.checkpoint_every_batches = 4;
  crawl_config.checkpoint_path = prom_path + ".ckpt";
  crawler::FocusedCrawler crawler(&sim, &classifier, crawl_config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  std::printf("crawl: %llu pages fetched, %llu errors, %llu faults "
              "injected\n",
              static_cast<unsigned long long>(crawler.stats().fetched),
              static_cast<unsigned long long>(crawler.stats().fetch_errors),
              static_cast<unsigned long long>(faults.faults_injected()));

  // 3. Analysis data flow over a generated Medline corpus (fills the
  //    wsie.dataflow.operator.* and wsie.nlp/ie.* families).
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 400;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);
  corpus::TextGenerator generator(
      &context->lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline),
      /*seed=*/1);
  std::vector<corpus::Document> docs = generator.GenerateCorpus(1, 30);
  dataflow::Plan plan = core::BuildAnalysisFlow(context, core::FlowOptions{});
  auto sink = std::make_shared<store::StoreSink>();
  if (store::AttachStoreSink(&plan, sink) == dataflow::Plan::kInvalidNode)
    return 1;
  dataflow::ExecutorConfig executor_config;
  executor_config.dop = 4;
  auto result = core::RunFlow(plan, docs, executor_config);
  if (!result.ok()) {
    std::printf("flow failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("analysis flow: %zu operators over %zu docs\n",
              plan.num_operators(), docs.size());

  // 3b. Persist annotations through the store and serve a few queries so
  //     the wsie.store.* and wsie.serve.* families fill.
  const std::string store_dir = prom_path + ".store";
  std::filesystem::remove_all(store_dir);
  auto store = store::AnnotationStore::Open(store_dir);
  if (!store.ok()) {
    std::printf("store open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }
  if (!sink->FlushTo(store->get()).ok() || !(*store)->Compact().ok()) {
    std::printf("store flush/compact failed\n");
    return 1;
  }
  auto engine = std::make_shared<const serve::QueryEngine>(*store);
  const int medline = static_cast<int>(corpus::CorpusKind::kMedline);
  auto genes = engine->TopK(5, serve::QueryFilter{medline, 0, serve::kAny});
  uint64_t lookup_hits = 0;
  for (const auto& gene : genes) {
    if (engine->Lookup(gene.name).found) ++lookup_hits;
    engine->PrefixScan(gene.name.substr(0, 2), 8);
  }
  auto frequency = engine->CorpusFrequency(medline, 0);
  if (genes.size() >= 2) engine->CoOccurrence(genes[0].name, genes[1].name);
  std::printf("store: %zu segments served, top-%zu gene lookups %llu hits, "
              "%.1f gene mentions per 1000 sentences\n",
              (*store)->num_segments(), genes.size(),
              static_cast<unsigned long long>(lookup_hits),
              frequency.per_1000_sentences);

  // 3c. Same queries through the batched admission queue and the HTTP
  //     front end, so the wsie.serve.admission.* / wsie.serve.server.* /
  //     wsie.serve.request.* families fill too.
  {
    auto queue = std::make_shared<serve::AdmissionQueue>(
        engine, serve::AdmissionQueue::Options{});
    serve::QueryEngine::Request request;
    request.kind = serve::QueryEngine::Request::Kind::kTopK;
    request.limit = 5;
    serve::QueryEngine::Response response;
    uint64_t admitted = 0;
    if (queue->Submit(request, &response)) ++admitted;
    for (const auto& gene : genes) {
      request.kind = serve::QueryEngine::Request::Kind::kLookup;
      request.name = gene.name;
      if (queue->Submit(request, &response)) ++admitted;
    }
    serve::Server server(queue, serve::Server::Options{});
    uint64_t served = 0;
    if (server.Start().ok()) {
      for (const char* target : {"/healthz", "/topk?k=3"}) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          std::string get = std::string("GET ") + target + " HTTP/1.1\r\n\r\n";
          if (::send(fd, get.data(), get.size(), 0) ==
              static_cast<ssize_t>(get.size())) {
            char buf[4096];
            while (::recv(fd, buf, sizeof(buf), 0) > 0) {
            }
            ++served;
          }
        }
        ::close(fd);
      }
      server.Stop();
    }
    queue->Stop();
    std::printf("admission: %llu batched queries, %llu HTTP requests over "
                "loopback port %u\n",
                static_cast<unsigned long long>(admitted),
                static_cast<unsigned long long>(served),
                static_cast<unsigned>(server.port()));
    if (admitted == 0 || served == 0) {
      std::printf("FAILED: admission/server path served nothing\n");
      return 1;
    }
  }

  // 3d. The same flow on two in-process shards, plus a small host-sharded
  //     crawl, so the wsie.shard.* and wsie.exchange.* families fill.
  {
    shard::ShardOptions shard_options;
    shard_options.num_shards = 2;
    auto sharded = core::RunFlowSharded(context, core::FlowOptions{}, docs,
                                        shard_options);
    if (!sharded.ok()) {
      std::printf("sharded flow failed: %s\n",
                  sharded.status().ToString().c_str());
      return 1;
    }
    crawler::ShardedCrawlOptions crawl_options;
    crawl_options.num_shards = 2;
    crawl_options.config.max_pages = 60;
    crawler::ShardedCrawl sharded_crawl(&sim, &classifier, crawl_options);
    sharded_crawl.InjectSeeds(seeds.seed_urls);
    sharded_crawl.Crawl();
    std::printf("sharded: flow on %zu shards moved %llu rows / %llu bytes; "
                "crawl exchanged %llu urls in %llu rounds\n",
                shard_options.num_shards,
                static_cast<unsigned long long>(sharded->rows_shuffled),
                static_cast<unsigned long long>(sharded->bytes_moved),
                static_cast<unsigned long long>(sharded_crawl.urls_exchanged()),
                static_cast<unsigned long long>(sharded_crawl.rounds()));
  }

  // 4. Export + validate the trace.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.SetEnabled(false);
  const std::string trace_json = recorder.ToChromeTraceJson();
  obs::TraceCheckReport report;
  Status trace_ok = obs::ValidateChromeTrace(trace_json, &report);
  if (!trace_ok.ok()) {
    std::printf("TRACE INVALID: %s\n", trace_ok.ToString().c_str());
    return 1;
  }
  Status written = recorder.WriteChromeTrace(trace_path);
  if (!written.ok()) {
    std::printf("trace write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trace: %zu events, %zu spans across %zu threads -> %s "
              "(%llu dropped; load in chrome://tracing or ui.perfetto.dev)\n",
              report.num_events, report.num_spans, report.num_threads,
              trace_path.c_str(),
              static_cast<unsigned long long>(recorder.dropped()));

  // 5. Export the metrics registry and sanity-check the key families.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  {
    std::FILE* file = std::fopen(prom_path.c_str(), "w");
    if (file == nullptr) {
      std::printf("cannot write %s\n", prom_path.c_str());
      return 1;
    }
    const std::string prom = registry.DumpPrometheusText();
    std::fwrite(prom.data(), 1, prom.size(), file);
    std::fclose(file);
  }
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  struct Family {
    const char* prefix;
    uint64_t total;
  };
  Family families[] = {
      {"wsie.dataflow.operator.", snapshot.CounterPrefixSum("wsie.dataflow.operator.")},
      {"wsie.crawler.fetch.", snapshot.CounterPrefixSum("wsie.crawler.fetch.")},
      {"wsie.fault.", snapshot.CounterPrefixSum("wsie.fault.")},
      {"wsie.nlp.", snapshot.CounterPrefixSum("wsie.nlp.")},
      {"wsie.ie.", snapshot.CounterPrefixSum("wsie.ie.")},
      {"wsie.store.", snapshot.CounterPrefixSum("wsie.store.")},
      {"wsie.serve.", snapshot.CounterPrefixSum("wsie.serve.")},
      {"wsie.shard.", snapshot.CounterPrefixSum("wsie.shard.")},
      {"wsie.exchange.", snapshot.CounterPrefixSum("wsie.exchange.")},
  };
  bool all_present = true;
  std::printf("metrics: %zu registered -> %s\n", registry.num_metrics(),
              prom_path.c_str());
  for (const Family& family : families) {
    std::printf("  %-26s sum %llu %s\n", family.prefix,
                static_cast<unsigned long long>(family.total),
                family.total > 0 ? "" : "(MISSING)");
    if (family.total == 0) all_present = false;
  }
  double harvest = snapshot.GaugeValue("wsie.crawler.harvest_rate");
  std::printf("  harvest-rate gauge: %.3f\n", harvest);
  if (!all_present) {
    std::printf("FAILED: expected metric families missing\n");
    return 1;
  }
  std::printf("OK: trace valid, all metric families populated\n");
  return 0;
}
