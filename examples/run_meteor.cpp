// wsie's Meteor runner: execute a declarative analysis script against a
// JSONL document file — the "almost effortless end-to-end task" the paper's
// introduction envisions, as a command-line tool.
//
// Usage:
//   ./build/examples/run_meteor <script.mtr> <source>=<input.jsonl>...
//       [--dop N] [--out DIR] [--no-optimize]
//
// Each sink named in the script is written to <DIR>/<sink>.jsonl.
// With no arguments, runs a built-in demo script on generated documents.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "dataflow/executor.h"
#include "dataflow/json.h"
#include "dataflow/meteor.h"
#include "dataflow/optimizer.h"

namespace {

constexpr const char* kDemoScript = R"(
  # demo: entity + relation extraction over the 'docs' source
  $docs = read 'docs';
  $sent = annotate_sentences $docs;
  $drug = annotate_entities $sent type 'drug' method 'dict';
  $dis  = annotate_entities $drug type 'disease' method 'dict';
  $rels = extract_relations $dis min_confidence '0.4';
  write $rels 'analyzed';
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace wsie;

  std::string script = kDemoScript;
  std::map<std::string, std::string> source_files;
  std::string out_dir = ".";
  size_t dop = 4;
  bool optimize = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--dop" && i + 1 < argc) {
      dop = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--no-optimize") {
      optimize = false;
    } else if (arg.find('=') != std::string::npos) {
      size_t eq = arg.find('=');
      source_files[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open script '%s'\n", arg.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      script = buffer.str();
    }
  }

  std::printf("Training taggers...\n");
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 300;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);

  dataflow::OperatorRegistry registry;
  core::RegisterPipelineOperators(context, &registry);
  dataflow::MeteorParser parser(&registry);
  auto plan = parser.Parse(script);
  if (!plan.ok()) {
    std::fprintf(stderr, "script error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %zu operators\n", plan->num_operators());
  if (optimize) {
    dataflow::Optimizer optimizer;
    auto report = optimizer.Optimize(&plan.value());
    std::printf("optimizer: %zu reorderings (est. cost %.0f -> %.0f)\n",
                report.steps.size(), report.estimated_cost_before,
                report.estimated_cost_after);
  }

  // Bind sources: from JSONL files, or generated demo documents.
  std::map<std::string, dataflow::Dataset> sources;
  for (const auto& node : plan->nodes()) {
    if (!node.is_source()) continue;
    const std::string& name = node.source_name;
    auto it = source_files.find(name);
    if (it != source_files.end()) {
      auto loaded = dataflow::ReadJsonl(it->second);
      if (!loaded.ok()) {
        std::fprintf(stderr, "source '%s': %s\n", name.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      std::printf("source '%s': %zu records from %s\n", name.c_str(),
                  loaded->size(), it->second.c_str());
      sources[name] = std::move(loaded).value();
    } else {
      corpus::TextGenerator generator(
          &context->lexicons(),
          corpus::ProfileFor(corpus::CorpusKind::kMedline), 1);
      sources[name] =
          core::DocumentsToRecords(generator.GenerateCorpus(1, 25));
      std::printf("source '%s': %zu generated demo documents\n", name.c_str(),
                  sources[name].size());
    }
  }

  dataflow::Executor executor(dataflow::ExecutorConfig{dop, 0, 8});
  auto result = executor.Run(plan.value(), sources);
  if (!result.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  for (const auto& [sink, records] : result->sink_outputs) {
    std::string path = out_dir + "/" + sink + ".jsonl";
    Status st = dataflow::WriteJsonl(path, records);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("sink '%s': %zu records -> %s\n", sink.c_str(),
                records.size(), path.c_str());
  }
  std::printf("done in %.2fs\n", result->total_seconds);
  return 0;
}
