// Declarative data-flow example: specify the analysis as a Meteor-like
// script (Sect. 3.1), compile it against the registered IE/WA operator
// packages, logically optimize it SOFA-style, and execute it in parallel.
//
// Usage: ./build/examples/meteor_flow

#include <cstdio>
#include <memory>

#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "dataflow/executor.h"
#include "dataflow/meteor.h"
#include "dataflow/optimizer.h"

int main() {
  using namespace wsie;

  std::printf("Training taggers...\n");
  core::AnalysisContextConfig context_config;
  context_config.crf_training_sentences = 300;
  auto context = std::make_shared<const core::AnalysisContext>(context_config);

  // The declarative script: the Fig. 2 flow for one entity class.
  const char* script = R"(
    # analyze crawled biomedical pages
    $pages = read 'crawl';
    $short = filter_long_documents $pages max '100000';
    $clean = repair_markup $short;
    $net   = remove_boilerplate $clean;
    $sent  = annotate_sentences $net;

    # linguistic branch
    $neg   = find_negation $sent;
    $pro   = find_pronouns $neg;
    $par   = find_parentheses $pro;

    # entity branch
    $pos   = annotate_pos $sent;
    $dict  = annotate_entities $pos type 'drug' method 'dict';
    $ml    = annotate_entities $dict type 'drug' method 'ml';

    $all   = union $par $ml;
    write $all 'analyzed';
  )";
  std::printf("script:\n%s\n", script);

  dataflow::OperatorRegistry registry;
  core::RegisterPipelineOperators(context, &registry);
  std::printf("operator registry: %zu operators across the BASE/IE/WA/DC "
              "packages\n", registry.size());

  dataflow::MeteorParser parser(&registry);
  auto plan = parser.Parse(script);
  if (!plan.ok()) {
    std::printf("parse error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed plan: %zu operators\n", plan->num_operators());

  // Logical optimization.
  dataflow::Optimizer optimizer;
  auto report = optimizer.Optimize(&plan.value());
  std::printf("optimizer: %zu reorderings, estimated cost %.0f -> %.0f\n",
              report.steps.size(), report.estimated_cost_before,
              report.estimated_cost_after);

  // Generate web-like input wrapped in HTML for the WA operators.
  corpus::TextGenerator generator(
      &context->lexicons(),
      corpus::ProfileFor(corpus::CorpusKind::kRelevantWeb), 3);
  auto docs = generator.GenerateCorpus(1, 20);
  for (auto& doc : docs) {
    doc.text = "<html><head><title>page</title></head><body><div><p>" +
               doc.text + "</p></div></body></html>";
  }

  dataflow::Executor executor(dataflow::ExecutorConfig{4, 0, 8});
  std::map<std::string, dataflow::Dataset> sources;
  sources["crawl"] = core::DocumentsToRecords(docs);
  auto result = executor.Run(plan.value(), sources);
  if (!result.ok()) {
    std::printf("execution error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  auto analysis = core::AnalyzeRecords(corpus::CorpusKind::kRelevantWeb,
                                       result->sink_outputs.at("analyzed"));
  std::printf("\nanalyzed %zu documents, %llu sentences\n",
              analysis.num_docs(),
              static_cast<unsigned long long>(analysis.total_sentences));
  std::printf("distinct drug names: dict %zu, ml %zu\n",
              analysis.DistinctNames(1, 0), analysis.DistinctNames(1, 1));
  std::printf("\nper-operator profile:\n");
  for (const auto& s : result->operator_stats) {
    std::printf("  %-26s in %5llu out %5llu  %7.3fs\n", s.name.c_str(),
                static_cast<unsigned long long>(s.records_in),
                static_cast<unsigned long long>(s.records_out),
                s.open_seconds + s.process_seconds);
  }
  return 0;
}
