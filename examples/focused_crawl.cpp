// Focused-crawl example: build a synthetic web, generate seed URLs via
// keyword queries against the simulated search engines, run the focused
// crawler with its in-loop MIME/language/length filters and Naive-Bayes
// relevance classifier, and report the crawl-quality numbers of Sect. 4.1
// plus the Table-2-style top domains.
//
// Usage: ./build/examples/focused_crawl [max_pages]

#include <cstdio>
#include <cstdlib>

#include "corpus/lexicon.h"
#include "crawler/focused_crawler.h"
#include "crawler/pagerank.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main(int argc, char** argv) {
  using namespace wsie;
  size_t max_pages = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  // 1. The simulated web: hosts, pages, links, robots.txt, spider traps.
  corpus::EntityLexicons lexicons(corpus::LexiconConfig{3000, 400, 400, 7});
  web::WebConfig web_config;
  web_config.num_hosts = 150;
  web_config.mean_pages_per_host = 15;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &lexicons);
  std::printf("synthetic web: %zu hosts, %zu pages (%zu ground-truth "
              "relevant)\n",
              graph.hosts().size(), graph.pages().size(),
              graph.num_relevant_pages());

  // 2. Seed generation via five simulated search engines (Sect. 2.2).
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&lexicons, &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{80, 150, 120, 150});
  std::printf("seed generation: %zu unique seed URLs from %zu engines\n",
              seeds.seed_urls.size(), engines.num_engines());

  // 3. Train the relevance classifier on Medline-vs-generic-web text.
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 250;
  classifier_config.relevance_threshold = 0.8;
  crawler::RelevanceClassifier classifier(&lexicons, classifier_config);
  auto cv = classifier.CrossValidate(10);
  std::printf("classifier 10-fold CV: precision %.1f%%, recall %.1f%%\n",
              100 * cv.mean_precision, 100 * cv.mean_recall);

  // 4. Crawl.
  crawler::CrawlerConfig config;
  config.max_pages = max_pages;
  config.num_fetch_threads = 8;
  crawler::FocusedCrawler crawler(&sim, &classifier, config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();

  const crawler::CrawlStats& stats = crawler.stats();
  std::printf("\ncrawl finished: %llu pages fetched\n",
              static_cast<unsigned long long>(stats.fetched));
  std::printf("  harvest rate:         %.1f%% (paper: 38%%)\n",
              100 * stats.HarvestRate());
  std::printf("  relevant corpus:      %zu docs, %llu KB\n",
              crawler.relevant_corpus().size(),
              static_cast<unsigned long long>(stats.relevant_bytes / 1024));
  std::printf("  irrelevant corpus:    %zu docs, %llu KB\n",
              crawler.irrelevant_corpus().size(),
              static_cast<unsigned long long>(stats.irrelevant_bytes / 1024));
  const auto& pf = crawler.prefilter();
  std::printf("  filtered: mime %llu, language %llu, length %llu\n",
              static_cast<unsigned long long>(pf.mime_rejected()),
              static_cast<unsigned long long>(pf.language_rejected()),
              static_cast<unsigned long long>(pf.length_rejected()));
  std::printf("  robots blocked: %llu, trap pages: %llu, transcode "
              "failures: %llu\n",
              static_cast<unsigned long long>(stats.robots_blocked),
              static_cast<unsigned long long>(stats.trap_pages),
              static_cast<unsigned long long>(stats.transcode_failures));
  std::printf("  classifier vs ground truth: precision %.1f%%, recall "
              "%.1f%%\n",
              100 * stats.classification_vs_truth.Precision(),
              100 * stats.classification_vs_truth.Recall());
  std::printf("  intra-host link fraction: %.1f%% (biomedical sites are "
              "weakly cross-linked, Sect. 2.2)\n",
              100 * crawler.link_db().IntraHostEdgeFraction());

  // 5. Table-2-style top domains by PageRank.
  std::printf("\ntop 10 domains by PageRank:\n");
  for (const auto& item :
       crawler::TopDomains(crawler.link_db().TakeSnapshot(), 10)) {
    std::printf("  %-34s %.5f\n", item.name.c_str(), item.score);
  }
  return 0;
}
