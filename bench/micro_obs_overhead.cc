// Observability overhead gate: the metrics layer must cost < 2% wall time
// on the fig4 workload (entity flow, fused morsel engine), and full span
// tracing < 10%. Three modes over the identical run:
//
//   off      — SetMetricsEnabled(false): every Add/Observe returns at the
//              enabled check (one relaxed load + branch),
//   metrics  — the shipping default: relaxed sharded-atomic counting,
//   tracing  — metrics plus per-morsel/stage spans into the ring buffers.
//
// Measurement discipline: the budget (2%) sits below this box's run-to-run
// noise, so three layers of control are applied. (1) PROCESS CPU time, not
// wall — the instrumentation cost is pure compute (relaxed atomic adds)
// and CPU time is immune to scheduler gaps. (2) The three modes run
// back-to-back inside each repetition and each repetition yields PAIRED
// ratios (on/off, tracing/off measured seconds apart), so slow drift
// (frequency scaling, heap growth) cancels instead of accumulating across
// the run. The mode order alternates per repetition to cancel order bias.
// (3) The gate takes the MEDIAN ratio across repetitions, robust to the
// odd disturbed run. Exits 1 when a gate fails.

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

// Process CPU seconds (user + system, all threads).
double CpuSeconds() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

}  // namespace

int main() {
  using namespace wsie;
  bench::PrintHeader("Observability overhead: metrics off / on / tracing on",
                     "the < 2% overhead budget of DESIGN.md, Observability");
  bench::BenchScale scale;
  scale.relevant_docs = 40;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 1;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& all_docs = env.corpora.at(corpus::CorpusKind::kRelevantWeb);
  std::vector<corpus::Document> docs(all_docs.begin(), all_docs.end());

  core::FlowOptions options;
  options.linguistic_analysis = false;  // fig4's entity flow
  dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
  dataflow::ExecutorConfig config;
  config.dop = 8;

  struct RunCost {
    double cpu_s;
    double wall_s;
  };
  auto run_once = [&]() {
    double cpu_before = CpuSeconds();
    Stopwatch timer;
    auto result = core::RunFlow(plan, docs, config);
    if (!result.ok()) {
      std::fprintf(stderr, "flow failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return RunCost{CpuSeconds() - cpu_before, timer.ElapsedSeconds()};
  };

  // Warm up trained-model lazy state and the executor's Open() cache.
  run_once();
  run_once();

  constexpr int kReps = 9;
  const char* kModeNames[3] = {"metrics off", "metrics on ",
                               "tracing on "};
  double best_cpu[3] = {1e30, 1e30, 1e30};
  double best_wall[3] = {1e30, 1e30, 1e30};
  std::vector<double> metrics_ratios, tracing_ratios;
  obs::TraceRecorder& tracer = obs::TraceRecorder::Global();
  for (int rep = 0; rep < kReps; ++rep) {
    double cpu[3];
    for (int step = 0; step < 3; ++step) {
      int mode = rep % 2 == 0 ? step : 2 - step;  // alternate order
      obs::SetMetricsEnabled(mode >= 1);
      tracer.SetEnabled(mode == 2);
      RunCost cost = run_once();
      tracer.SetEnabled(false);
      if (mode == 2) tracer.Clear();
      cpu[mode] = cost.cpu_s;
      best_cpu[mode] = std::min(best_cpu[mode], cost.cpu_s);
      best_wall[mode] = std::min(best_wall[mode], cost.wall_s);
    }
    metrics_ratios.push_back(cpu[1] / cpu[0]);
    tracing_ratios.push_back(cpu[2] / cpu[0]);
  }
  obs::SetMetricsEnabled(true);

  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double metrics_overhead = median(metrics_ratios) - 1.0;
  double tracing_overhead = median(tracing_ratios) - 1.0;
  std::printf("\n%-14s %12s %16s %12s\n", "mode", "best cpu (s)",
              "median overhead", "best wall(s)");
  std::printf("%-14s %12.4f %16s %12.4f\n", kModeNames[0], best_cpu[0], "-",
              best_wall[0]);
  std::printf("%-14s %12.4f %15.2f%% %12.4f\n", kModeNames[1], best_cpu[1],
              100 * metrics_overhead, best_wall[1]);
  std::printf("%-14s %12.4f %15.2f%% %12.4f\n", kModeNames[2], best_cpu[2],
              100 * tracing_overhead, best_wall[2]);

  bool metrics_ok = metrics_overhead < 0.02;
  bool tracing_ok = tracing_overhead < 0.10;
  std::printf("\nmetrics-on CPU overhead < 2%%: %s\n",
              metrics_ok ? "HOLDS" : "VIOLATED");
  std::printf("tracing-on CPU overhead < 10%%: %s\n",
              tracing_ok ? "HOLDS" : "VIOLATED");
  return metrics_ok && tracing_ok ? 0 : 1;
}
