// Closed-loop load generator for the serving stack: N client threads
// drive a Zipfian query mix (point lookup / prefix / top-k /
// co-occurrence) through the batched AdmissionQueue into the
// QueryEngine, each waiting for its response before issuing the next
// request. Throughput is counted at the clients; latency p50/p99 are
// read from the wsie.serve.request.latency_ns histogram — the same
// numbers the obs exporters ship — and optionally gated.
//
// Two modes:
//   time-based (default)  --seconds=N wall-clock window
//   fixed-ops ("smoke")   --ops=N per client: the request streams are
//                         deterministic (per-client seeded Rng over a
//                         frozen store), so the printed response digest
//                         is byte-stable across runs — scripts/
//                         serve_check.sh runs it twice and diffs.
//
// Flags: --clients=N --seconds=N --ops=N --terms=N --zipf=S --batch=N
//        --queue=N --workers=N --json=PATH --gate-p50-us=N --gate-p99-us=N
//        (gates default to 20ms/200ms; 0 disables)
//        --sample=N  deterministic 1-in-N per-request tracing + slow-query
//        log (default 1024; 0 disables) — sampled requests execute
//        individually under a trace span, and the latency gates run with
//        sampling ON, so the gate certifies the sampled configuration.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "serve/admission_queue.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"

namespace {

using namespace wsie;

struct Flags {
  size_t clients = 0;  // 0 = hardware_concurrency
  size_t seconds = 2;
  size_t ops = 0;  // 0 = time-based
  size_t terms = 2000;
  double zipf = 1.1;
  size_t batch = 32;
  size_t queue = 2048;
  size_t workers = 1;
  std::string json;
  double gate_p50_us = 20000.0;
  double gate_p99_us = 200000.0;
  size_t sample = 1024;  ///< 1-in-N trace sampling (0 = off)
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  auto value_of = [&](const char* arg, const char* name) -> const char* {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      return arg + len + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = value_of(argv[i], "--clients")) {
      flags.clients = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--seconds")) {
      flags.seconds = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--ops")) {
      flags.ops = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--terms")) {
      flags.terms = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--zipf")) {
      flags.zipf = std::strtod(v, nullptr);
    } else if (const char* v = value_of(argv[i], "--batch")) {
      flags.batch = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--queue")) {
      flags.queue = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--workers")) {
      flags.workers = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of(argv[i], "--json")) {
      flags.json = v;
    } else if (const char* v = value_of(argv[i], "--gate-p50-us")) {
      flags.gate_p50_us = std::strtod(v, nullptr);
    } else if (const char* v = value_of(argv[i], "--gate-p99-us")) {
      flags.gate_p99_us = std::strtod(v, nullptr);
    } else if (const char* v = value_of(argv[i], "--sample")) {
      flags.sample = std::strtoull(v, nullptr, 10);
    }
  }
  if (flags.clients == 0) {
    const size_t hw = std::thread::hardware_concurrency();
    flags.clients = hw > 0 ? hw : 1;
  }
  if (flags.terms < 10) flags.terms = 10;
  return flags;
}

std::string TermName(size_t rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "e%05zu", rank);
  return buf;
}

/// Seeds a deterministic multi-segment store: every term appears with a
/// rank-skewed posting count spread over corpora/types/methods, built as
/// four segments so cross-segment merge paths are exercised.
std::shared_ptr<store::AnnotationStore> SeedStore(const std::string& dir,
                                                  size_t terms) {
  std::filesystem::remove_all(dir);
  auto store_or = store::AnnotationStore::Open(dir);
  if (!store_or.ok()) return nullptr;
  auto annotations = *store_or;
  for (uint64_t seg = 0; seg < 4; ++seg) {
    store::SegmentBuilder builder;
    for (uint64_t t = seg; t < terms; t += 4) {
      const uint64_t reps = 1 + (t < 16 ? 16 - t : t % 3);
      for (uint64_t r = 0; r < reps; ++r) {
        store::Posting posting{t * 31 + r * 7,
                               static_cast<uint32_t>((t + r) % 11),
                               static_cast<uint32_t>(r * 5),
                               static_cast<uint32_t>(r * 5 + 4)};
        builder.Add(TermName(t), static_cast<uint8_t>(t % 3),
                    static_cast<uint8_t>(r % 3),
                    static_cast<uint8_t>((t + r) % 2), posting);
      }
    }
    builder.AddCorpusStats(static_cast<uint8_t>(seg % 3), 40, 1000, 38000);
    if (!annotations->Append(std::move(builder)).ok()) return nullptr;
  }
  return annotations;
}

uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t FnvString(uint64_t hash, std::string_view s) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t DigestResponse(uint64_t hash,
                        const serve::QueryEngine::Response& response) {
  using Kind = serve::QueryEngine::Request::Kind;
  switch (response.kind) {
    case Kind::kLookup: {
      const auto& r = response.lookup;
      hash = Fnv1a(hash, r.found ? 1 : 0);
      hash = Fnv1a(hash, r.count);
      hash = Fnv1a(hash, r.docs);
      for (const uint64_t n : r.per_corpus) hash = Fnv1a(hash, n);
      break;
    }
    case Kind::kPrefix:
      for (const std::string& name : response.names) {
        hash = FnvString(hash, name);
      }
      break;
    case Kind::kFrequency: {
      const auto& r = response.frequency;
      hash = Fnv1a(hash, r.distinct_names);
      hash = Fnv1a(hash, r.annotations);
      hash = Fnv1a(hash, r.sentences);
      uint64_t bits;
      std::memcpy(&bits, &r.per_1000_sentences, sizeof(bits));
      hash = Fnv1a(hash, bits);
      break;
    }
    case Kind::kTopK:
      for (const auto& entry : response.topk) {
        hash = FnvString(hash, entry.name);
        hash = Fnv1a(hash, entry.count);
      }
      break;
    case Kind::kCoOccurrence:
      hash = Fnv1a(hash, response.cooccurrence.docs);
      hash = Fnv1a(hash, response.cooccurrence.sentences);
      break;
    case Kind::kSimilar:
      hash = Fnv1a(hash, response.similar.index_available ? 1 : 0);
      hash = Fnv1a(hash, response.similar.found ? 1 : 0);
      for (const auto& hit : response.similar.neighbors) {
        hash = FnvString(hash, hit.name);
      }
      break;
  }
  return hash;
}

serve::QueryEngine::Request MakeRequest(Rng& rng, size_t terms, double s) {
  using Kind = serve::QueryEngine::Request::Kind;
  serve::QueryEngine::Request request;
  const uint64_t roll = rng.Uniform(100);
  const size_t rank = rng.Zipf(terms, s);
  if (roll < 60) {
    request.kind = Kind::kLookup;
    request.name = TermName(rank);
    if (roll < 10) request.filter.corpus = static_cast<int>(rng.Uniform(3));
  } else if (roll < 75) {
    request.kind = Kind::kPrefix;
    request.name = TermName(rank).substr(0, 3);
    request.limit = 20;
  } else if (roll < 85) {
    request.kind = Kind::kTopK;
    request.limit = 10;
    if (roll < 80) {
      request.filter.type = static_cast<int>(rng.Uniform(3));
    }
  } else {
    request.kind = Kind::kCoOccurrence;
    request.name = TermName(rank);
    request.name_b = TermName(rng.Zipf(terms, s));
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  bench::PrintHeader("Closed-loop serving load generator",
                     "batched admission + epoch-pinned reads");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "wsie_serve_loadgen").string();
  auto annotations = SeedStore(dir, flags.terms);
  if (annotations == nullptr) {
    std::fprintf(stderr, "store seed failed\n");
    return 1;
  }

  obs::MetricsRegistry::Global().Reset();
  auto engine = std::make_shared<const serve::QueryEngine>(annotations);
  serve::AdmissionQueue::Options queue_options;
  queue_options.capacity = flags.queue;
  queue_options.batch_size = flags.batch;
  queue_options.workers = flags.workers;
  queue_options.trace_sample_every = flags.sample;
  queue_options.slow_log = std::make_shared<serve::SlowQueryLog>();
  serve::AdmissionQueue queue(engine, queue_options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_ops{0};
  std::atomic<uint64_t> failures{0};
  std::vector<uint64_t> digests(flags.clients, 0);
  std::vector<uint64_t> ops_per_client(flags.clients, 0);

  std::vector<std::thread> clients;
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x5eed + c * 0x9e3779b9ULL);
      uint64_t digest = 0xcbf29ce484222325ULL;
      uint64_t ops = 0;
      while (flags.ops > 0 ? ops < flags.ops
                           : !stop.load(std::memory_order_relaxed)) {
        const serve::QueryEngine::Request request =
            MakeRequest(rng, flags.terms, flags.zipf);
        serve::QueryEngine::Response response;
        if (!queue.Submit(request, &response)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        digest = DigestResponse(digest, response);
        ++ops;
      }
      digests[c] = digest;
      ops_per_client[c] = ops;
      total_ops.fetch_add(ops, std::memory_order_relaxed);
    });
  }

  if (flags.ops == 0) {
    std::this_thread::sleep_for(std::chrono::seconds(flags.seconds));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& client : clients) client.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  queue.Stop();

  uint64_t combined_digest = 0xcbf29ce484222325ULL;
  for (const uint64_t d : digests) combined_digest = Fnv1a(combined_digest, d);

  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* latency =
      snapshot.FindHistogram("wsie.serve.request.latency_ns");
  const double p50_us =
      latency != nullptr && latency->count > 0 ? latency->Quantile(0.5) / 1e3
                                               : 0.0;
  const double p99_us =
      latency != nullptr && latency->count > 0 ? latency->Quantile(0.99) / 1e3
                                               : 0.0;
  const double qps = static_cast<double>(total_ops.load()) / elapsed;

  std::printf("clients: %zu  batch: %zu  workers: %zu  terms: %zu  "
              "zipf: %.2f\n",
              flags.clients, flags.batch, flags.workers, flags.terms,
              flags.zipf);
  std::printf("ops: %llu in %.2f s  (%.0f QPS closed-loop)\n",
              static_cast<unsigned long long>(total_ops.load()), elapsed, qps);
  std::printf("request latency p50: %.1f us  p99: %.1f us  "
              "(wsie.serve.request.latency_ns)\n",
              p50_us, p99_us);
  std::printf("batches: %llu  mean batch: %.2f\n",
              static_cast<unsigned long long>(
                  snapshot.CounterValue("wsie.serve.admission.batches")),
              snapshot.CounterValue("wsie.serve.admission.batches") > 0
                  ? static_cast<double>(snapshot.CounterValue(
                        "wsie.serve.admission.enqueued")) /
                        static_cast<double>(snapshot.CounterValue(
                            "wsie.serve.admission.batches"))
                  : 0.0);
  std::printf("digest: %016llx\n",
              static_cast<unsigned long long>(combined_digest));
  if (flags.sample > 0) {
    const auto top = queue_options.slow_log->TopByLatency();
    std::printf("sampling 1-in-%zu: %llu sampled requests; slowlog top-%zu "
                "(floor %.1f us)",
                flags.sample,
                static_cast<unsigned long long>(
                    snapshot.CounterValue("wsie.serve.sampled")),
                top.size(),
                static_cast<double>(queue_options.slow_log->floor_ns()) / 1e3);
    if (!top.empty()) {
      std::printf("; worst: %s \"%s\" %.1f us",
                  serve::RequestKindName(top.front().kind),
                  top.front().name.c_str(),
                  static_cast<double>(top.front().latency_ns) / 1e3);
    }
    std::printf("\n");
  }

  bool ok = failures.load() == 0 && total_ops.load() > 0;
  if (flags.gate_p50_us > 0 && p50_us > flags.gate_p50_us) {
    std::printf("GATE VIOLATED: p50 %.1f us > %.1f us\n", p50_us,
                flags.gate_p50_us);
    ok = false;
  }
  if (flags.gate_p99_us > 0 && p99_us > flags.gate_p99_us) {
    std::printf("GATE VIOLATED: p99 %.1f us > %.1f us\n", p99_us,
                flags.gate_p99_us);
    ok = false;
  }

  if (!flags.json.empty()) {
    std::ofstream out(flags.json);
    out << "{\"bench\":\"serve_loadgen\",\"clients\":" << flags.clients
        << ",\"ops\":" << total_ops.load() << ",\"qps\":" << qps
        << ",\"p50_us\":" << p50_us << ",\"p99_us\":" << p99_us
        << ",\"gates_ok\":" << (ok ? "true" : "false") << "}\n";
  }

  std::printf("\nClosed-loop load generation, gates: %s\n",
              ok ? "HOLD" : "VIOLATED");
  return ok ? 0 : 1;
}
