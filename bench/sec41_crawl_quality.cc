// Reproduces the Sect. 4.1 crawl-quality evaluation:
//  - harvest rate (paper: 38%; typical systems 25-45%);
//  - pre-selection filter effectiveness (paper: MIME -9.5%, language -14%,
//    document length -17%);
//  - classifier quality: 10-fold CV on the training corpus (paper: 98% P /
//    83% R) and on a 200-page crawled sample (94% P / 90% R);
//  - boilerplate detection quality against generator ground truth (paper:
//    90% P / 82% R on its gold set; 98% P / 72% R on the crawled sample,
//    losing tables and lists);
//  - download rate (paper: 3-4 docs/s due to the heavy in-loop filtering).

#include "bench_util.h"
#include "common/string_util.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "html/boilerplate.h"
#include "text/bag_of_words.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Sect. 4.1: Quality of the focused crawler",
                     "Sect. 4.1 (harvest rate, filters, classifier, "
                     "boilerplate)");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 150;
  web_config.mean_pages_per_host = 15;
  web_config.seed = 7;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &env.context->lexicons());
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&env.context->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{80, 150, 120, 150});

  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 250;
  classifier_config.relevance_threshold = 0.8;  // high-precision model
  crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                          classifier_config);

  crawler::CrawlerConfig config;
  config.max_pages = 3000;
  crawler::FocusedCrawler crawler(&sim, &classifier, config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  const crawler::CrawlStats& stats = crawler.stats();

  std::printf("pages fetched: %llu (%zu seeds)\n",
              static_cast<unsigned long long>(stats.fetched),
              seeds.seed_urls.size());
  bench::PrintCompare("harvest rate",
                      "38% (typical 25-45%)",
                      FormatDouble(100 * stats.HarvestRate(), 1) + "%");
  bench::PrintCompare(
      "relevant / irrelevant net text",
      "373 GB / 607 GB",
      std::to_string(stats.relevant_bytes / 1024) + " KB / " +
          std::to_string(stats.irrelevant_bytes / 1024) + " KB");

  const auto& prefilter = crawler.prefilter();
  double total = static_cast<double>(prefilter.total());
  bench::PrintCompare(
      "MIME filter reduction", "9.5%",
      FormatDouble(100 * prefilter.mime_rejected() / total, 1) + "%");
  bench::PrintCompare(
      "language filter reduction", "14%",
      FormatDouble(100 * prefilter.language_rejected() / total, 1) + "%");
  bench::PrintCompare(
      "length filter reduction", "17%",
      FormatDouble(100 * prefilter.length_rejected() / total, 1) + "%");
  bench::PrintCompare(
      "non-transcodable pages ([19]: ~13%)", "13%",
      FormatDouble(100 * static_cast<double>(stats.transcode_failures) /
                       static_cast<double>(stats.fetched),
                   1) +
          "%");
  bench::PrintCompare("download rate", "3-4 docs/s",
                      FormatDouble(stats.DocsPerVirtualSecond(), 1) +
                          " docs/s (virtual)");

  // Classifier quality: 10-fold CV and the crawled-sample estimate.
  auto cv = classifier.CrossValidate(10);
  std::printf("\nclassifier quality:\n");
  bench::PrintCompare("  10-fold CV precision", "98%",
                      FormatDouble(100 * cv.mean_precision, 1) + "%");
  bench::PrintCompare("  10-fold CV recall", "83%",
                      FormatDouble(100 * cv.mean_recall, 1) + "%");
  const auto& sample = stats.classification_vs_truth;
  bench::PrintCompare("  crawled-sample precision", "94%",
                      FormatDouble(100 * sample.Precision(), 1) + "%");
  bench::PrintCompare("  crawled-sample recall", "90%",
                      FormatDouble(100 * sample.Recall(), 1) + "%");

  // Boilerplate quality on clean renders: word-level precision/recall of
  // detector net text against generator ground truth.
  web::RendererConfig clean;
  clean.markup_error_page_frac = 0.0;
  web::PageRenderer renderer(&graph, &env.context->lexicons(), clean);
  html::BoilerplateDetector detector;
  uint64_t true_positive_words = 0, detected_words = 0, gold_words = 0;
  size_t evaluated = 0;
  for (const auto& page : graph.pages()) {
    if (evaluated >= 200) break;  // the paper's 200-page manual sample
    if (page.mime != lang::MimeClass::kHtml) continue;
    if (graph.HostOf(page).language != "en") continue;
    web::RenderedPage rendered = renderer.Render(page);
    std::string net = detector.NetText(rendered.html);
    text::TermCounts gold = text::BagOfWords().Featurize(rendered.net_text);
    text::TermCounts found = text::BagOfWords().Featurize(net);
    for (const auto& [term, count] : found) {
      detected_words += count;
      auto it = gold.find(term);
      if (it != gold.end()) {
        true_positive_words += std::min(count, it->second);
      }
    }
    for (const auto& [term, count] : gold) gold_words += count;
    ++evaluated;
  }
  double bp_precision = detected_words
                            ? static_cast<double>(true_positive_words) /
                                  static_cast<double>(detected_words)
                            : 0;
  double bp_recall = gold_words ? static_cast<double>(true_positive_words) /
                                      static_cast<double>(gold_words)
                                : 0;
  std::printf("\nboilerplate detection on %zu clean pages:\n", evaluated);
  bench::PrintCompare("  precision", "98% (sample) / 90% (gold)",
                      FormatDouble(100 * bp_precision, 1) + "%");
  bench::PrintCompare("  recall (lists/tables lost)", "72% (sample) / 82%",
                      FormatDouble(100 * bp_recall, 1) + "%");

  bool ok = stats.HarvestRate() > 0.15 && stats.HarvestRate() < 0.75 &&
            cv.mean_precision > 0.9 && sample.Precision() > 0.7 &&
            bp_precision > 0.85 && bp_recall > 0.5 && bp_recall < 0.98 &&
            prefilter.language_rejected() > 0 &&
            prefilter.mime_rejected() > 0 && stats.transcode_failures > 0;
  std::printf("\nSect. 4.1 shape (harvest in-range, high-precision "
              "classifier, boilerplate precision >> recall): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
