// Reproduces Fig. 8: overlap of distinct (dictionary-annotated) entity
// names across the four corpora, as the 15 regions of a 4-set Venn diagram.
// Paper shapes to hold: the relevant/irrelevant overlap is notable but
// small; the relevant/Medline and relevant/PMC overlaps are considerably
// larger; and thousands of names appear ONLY in relevant web documents
// (the "new knowledge on the web" finding).

#include <cctype>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Fig. 8: Annotation overlap of distinct entity names",
                     "Figure 8");
  bench::BenchEnv env = bench::MakeBenchEnv();

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  const char* set_names[] = {"Rel", "Irr", "Med", "PMC"};
  const char* type_names[] = {"Gene", "Drug", "Disease"};

  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) analyses.emplace(kind, bench::AnalyzeCorpus(env, kind));

  bool ok = true;
  bench::JsonSummary summary("fig8", flags);
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    std::array<std::set<std::string>, 4> sets;
    for (size_t k = 0; k < 4; ++k) {
      sets[k] = core::DistinctNameSet(analyses.at(kinds[k]), type, 0);
    }
    auto regions = core::ComputeOverlap(sets);
    std::printf("\n--- %s (dictionary annotations) ---\n", type_names[type]);
    std::printf("%-20s %8s %8s\n", "region", "count", "share");
    for (const auto& region : regions) {
      std::string label;
      for (size_t k = 0; k < 4; ++k) {
        if (region.membership & (1u << k)) {
          if (!label.empty()) label += "+";
          label += set_names[k];
        }
      }
      std::printf("%-20s %8llu %7.2f%%\n", label.c_str(),
                  static_cast<unsigned long long>(region.count),
                  100.0 * region.share);
    }

    // Pairwise overlap rates relative to the relevant set.
    auto overlap_with_rel = [&](size_t other) {
      size_t shared = 0;
      for (const auto& name : sets[0]) {
        if (sets[other].count(name)) ++shared;
      }
      return sets[0].empty() ? 0.0
                             : static_cast<double>(shared) /
                                   static_cast<double>(sets[0].size());
    };
    double rel_irrel = overlap_with_rel(1);
    double rel_medl = overlap_with_rel(2);
    double rel_pmc = overlap_with_rel(3);
    std::printf("overlap with relevant: irrel %.0f%%, medline %.0f%%, "
                "pmc %.0f%% (paper: irrel 15-30%%, literature up to 60%%)\n",
                100 * rel_irrel, 100 * rel_medl, 100 * rel_pmc);
    size_t rel_only = 0;
    for (const auto& region : regions) {
      if (region.membership == 0x1) rel_only = region.count;
    }
    std::printf("names only in relevant web documents: %zu (paper: several "
                "thousand per type)\n", rel_only);
    if (rel_irrel >= rel_medl || rel_irrel >= rel_pmc || rel_only == 0) {
      ok = false;
    }
    std::string prefix = type_names[type];
    for (char& c : prefix) c = static_cast<char>(std::tolower(c));
    summary.Set(prefix + "_overlap_rel_irrel", rel_irrel);
    summary.Set(prefix + "_overlap_rel_medline", rel_medl);
    summary.Set(prefix + "_overlap_rel_pmc", rel_pmc);
    summary.Set(prefix + "_rel_only_names", static_cast<uint64_t>(rel_only));
  }
  std::printf("\nFig. 8 shape (rel-irrel overlap < rel-literature overlap; "
              "web-only names exist): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  summary.Set("gates_pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
