// Reproduces Fig. 6 (+ the Sect. 4.3.1 pronoun/parenthesis findings):
// distributions of document length (a), mean sentence length (b), and
// negation incidence (c) in the four corpora, with Mann-Whitney-Wilcoxon
// significance tests. Paper findings to hold:
//  - mean doc length rel > pmc, rel > irrel, rel > medline; all P < 0.01
//  - negation incidence pmc > irrel > rel > medline; P < 0.01
//  - parentheses: pmc > rel > medline > irrel
//  - demonstrative/relative/object pronouns lower in web corpora than PMC.

#include "bench_util.h"
#include "ml/stats.h"

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader(
      "Fig. 6: Linguistic properties per document across corpora",
      "Figure 6 and Sect. 4.3.1");
  bench::BenchEnv env = bench::MakeBenchEnv();

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) analyses.emplace(kind, bench::AnalyzeCorpus(env, kind));

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };

  // (a) Document lengths.
  std::printf("\n(a) Document length (chars):\n");
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "corpus", "mean", "p25",
              "median", "p75", "max");
  for (auto kind : kinds) {
    auto d = ml::Describe(analyses.at(kind).DocLengths());
    std::printf("%-18s %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                corpus::CorpusKindName(kind), d.mean, d.p25, d.median, d.p75,
                d.max);
  }

  // (b) Mean sentence lengths.
  std::printf("\n(b) Mean sentence length (chars):\n");
  for (auto kind : kinds) {
    auto d = ml::Describe(analyses.at(kind).MeanSentenceLengths());
    std::printf("%-18s mean %7.1f  median %7.1f\n",
                corpus::CorpusKindName(kind), d.mean, d.median);
  }

  // (c) Negation incidence per 100 sentences.
  std::printf("\n(c) Negation incidence (per 100 sentences):\n");
  for (auto kind : kinds) {
    std::printf("%-18s %7.2f\n", corpus::CorpusKindName(kind),
                mean(analyses.at(kind).NegationsPer100Sentences()));
  }

  // Pronouns (co-reference classes) and parentheses per 100 sentences.
  std::printf("\nPronoun incidence per 100 sentences (dem/rel/obj):\n");
  for (auto kind : kinds) {
    const auto& a = analyses.at(kind);
    std::printf("%-18s dem %6.2f  rel %6.2f  obj %6.2f\n",
                corpus::CorpusKindName(kind),
                mean(a.PronounsPer100Sentences(nlp::PronounClass::kDemonstrative)),
                mean(a.PronounsPer100Sentences(nlp::PronounClass::kRelative)),
                mean(a.PronounsPer100Sentences(nlp::PronounClass::kObject)));
  }
  std::printf("\nParenthesized text per 100 sentences:\n");
  for (auto kind : kinds) {
    std::printf("%-18s %7.2f\n", corpus::CorpusKindName(kind),
                mean(analyses.at(kind).ParenthesesPer100Sentences()));
  }
  std::printf("\nAbbreviation definitions (Schwartz-Hearst) per 100 "
              "sentences:\n");
  for (auto kind : kinds) {
    std::printf("%-18s %7.2f\n", corpus::CorpusKindName(kind),
                mean(analyses.at(kind).AbbreviationsPer100Sentences()));
  }

  // Significance tests.
  const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
  const auto& irrel = analyses.at(corpus::CorpusKind::kIrrelevantWeb);
  const auto& medl = analyses.at(corpus::CorpusKind::kMedline);
  const auto& pmc = analyses.at(corpus::CorpusKind::kPmc);
  std::printf("\nMann-Whitney-Wilcoxon P-values (doc length):\n");
  double p1 = core::MwwPValue(rel.DocLengths(), pmc.DocLengths());
  double p2 = core::MwwPValue(rel.DocLengths(), irrel.DocLengths());
  double p3 = core::MwwPValue(rel.DocLengths(), medl.DocLengths());
  std::printf("  rel vs pmc:    P = %.2e   (paper: P < 0.01)\n", p1);
  std::printf("  rel vs irrel:  P = %.2e   (paper: P < 0.01)\n", p2);
  std::printf("  rel vs medl:   P = %.2e   (paper: P < 0.01)\n", p3);
  double p4 = core::MwwPValue(pmc.NegationsPer100Sentences(),
                              medl.NegationsPer100Sentences());
  std::printf("MWW P-value negation pmc vs medline: P = %.2e (paper: <0.01)\n",
              p4);

  // Abbreviation usage: scientific corpora define far more abbreviations
  // than the web corpora (abstract: "the use of negation or abbreviations").
  bool abbrev_ok =
      mean(medl.AbbreviationsPer100Sentences()) >
          mean(irrel.AbbreviationsPer100Sentences()) &&
      mean(pmc.AbbreviationsPer100Sentences()) >
          mean(irrel.AbbreviationsPer100Sentences());
  bool ok = abbrev_ok && p2 < 0.01 && p3 < 0.01 && p4 < 0.01 &&
            mean(pmc.NegationsPer100Sentences()) >
                mean(rel.NegationsPer100Sentences()) &&
            mean(rel.NegationsPer100Sentences()) >
                mean(medl.NegationsPer100Sentences()) &&
            mean(pmc.ParenthesesPer100Sentences()) >
                mean(rel.ParenthesesPer100Sentences()) &&
            mean(rel.ParenthesesPer100Sentences()) >
                mean(irrel.ParenthesesPer100Sentences());
  std::printf("\nFig. 6 orderings + significance: %s\n",
              ok ? "HOLD" : "VIOLATED");

  bench::JsonSummary summary("fig6", flags);
  summary.Set("p_doclen_rel_vs_pmc", p1);
  summary.Set("p_doclen_rel_vs_irrel", p2);
  summary.Set("p_doclen_rel_vs_medl", p3);
  summary.Set("p_negation_pmc_vs_medl", p4);
  summary.Set("negation_pmc_per100", mean(pmc.NegationsPer100Sentences()));
  summary.Set("negation_rel_per100", mean(rel.NegationsPer100Sentences()));
  summary.Set("negation_medl_per100", mean(medl.NegationsPer100Sentences()));
  summary.Set("abbrev_ordering_ok", abbrev_ok);
  summary.Set("gates_pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
