// Semantic retrieval over the annotation store: feature-hashed embeddings
// + a Vamana-style ANN graph, built from the store's term union and served
// at snapshot isolation through the admission queue.
//
// Gates (exit 1 on violation):
//   - recall@10 >= 0.95 against exact brute-force over the float matrix
//   - the index is byte-deterministic: rebuilding from the same names and
//     config reproduces the published container bit for bit
//   - /similar-equivalent requests through the admission queue all succeed
//     with the index available
// Reports QPS and p50/p99 latency from wsie.vec.query.latency_ns — the
// same histogram the /metrics exporter ships — plus the int8-quantization
// memory footprint against the float matrix.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/admission_queue.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"
#include "vec/ann_index.h"
#include "vec/distance.h"

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Semantic retrieval: ANN index over the entity store",
                     "web-scale IE serving extension");
  bench::JsonSummary summary("fig7_semantic", flags);

  bench::BenchEnv env = bench::MakeBenchEnv();
  std::string store_dir =
      (std::filesystem::temp_directory_path() / "wsie_fig7_semantic_store")
          .string();
  std::filesystem::remove_all(store_dir);
  auto store_or = store::AnnotationStore::Open(store_dir);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  auto store = *store_or;

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  for (auto kind : kinds) {
    bench::AnalyzeCorpusIntoStore(env, kind, store.get());
  }
  if (!store->Compact().ok()) return 1;

  auto build_start = std::chrono::steady_clock::now();
  Status built = store->BuildVectorIndex();
  if (!built.ok()) {
    std::fprintf(stderr, "vector index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_start)
          .count();

  auto snapshot = store->snapshot();
  if (snapshot.vectors == nullptr) {
    std::fprintf(stderr, "no vector index published\n");
    return 1;
  }
  const vec::VecIndex& index = *snapshot.vectors;
  const size_t n = index.size();
  std::printf("\nindexed entities: %zu   dim: %u   degree<=%u   "
              "build: %.2f s   SIMD distance kernels: %s\n",
              n, index.dim(), index.config().max_degree, build_seconds,
              vec::VecSimdActive() ? "active" : "scalar");

  // ----------------------------------------------------------- recall@10
  // Every indexed entity queries with its own stored embedding; the ANN
  // pool must reproduce the brute-force float top-10 (both rank on exact
  // float distance with id tie-breaks, so intersection is well-defined).
  const size_t k = 10;
  const size_t query_count = std::min<size_t>(n, 2000);
  uint64_t hits = 0, possible = 0, total_hops = 0;
  for (size_t q = 0; q < query_count; ++q) {
    vec::VecIndex::SearchStats stats;
    const auto ann = index.Search(index.vector(q), k, 0, &stats);
    const auto exact = index.SearchExact(index.vector(q), k);
    total_hops += stats.hops;
    possible += exact.size();
    for (const auto& truth : exact) {
      for (const auto& candidate : ann) {
        if (candidate.id == truth.id) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall =
      possible == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(possible);
  std::printf("recall@10 over %zu queries: %.4f   (mean hops %.1f)\n",
              query_count, recall,
              query_count == 0 ? 0.0
                               : static_cast<double>(total_hops) /
                                     static_cast<double>(query_count));

  // -------------------------------------------------------- determinism
  // Rebuilding from the same (names, config, id) must reproduce the
  // published container byte for byte — the invariant the compactor's
  // rebuild-on-merge relies on.
  bool deterministic = false;
  {
    auto rebuilt_or =
        vec::VecIndex::Build(index.names(), index.config(), index.id());
    if (rebuilt_or.ok()) {
      deterministic = rebuilt_or->Encode() == index.Encode();
    }
  }
  std::printf("rebuild byte-identical to published index: %s\n",
              deterministic ? "EXACT" : "MISMATCH");

  // ------------------------------------------- serve-path QPS / latency
  obs::MetricsRegistry::Global().Reset();
  auto engine = std::make_shared<serve::QueryEngine>(store);
  serve::AdmissionQueue::Options queue_options;
  queue_options.workers = 2;
  auto queue = std::make_shared<serve::AdmissionQueue>(engine, queue_options);

  const size_t client_threads = std::max<size_t>(2, flags.dop / 2);
  const size_t requests_per_thread = 2000;
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> unavailable{0};
  auto serve_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (size_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < requests_per_thread; ++i) {
        serve::QueryEngine::Request request;
        request.kind = serve::QueryEngine::Request::Kind::kSimilar;
        request.name = index.name((t * requests_per_thread + i) % n);
        request.limit = k;
        serve::QueryEngine::Response response;
        if (!queue->Submit(request, &response)) {
          ++failures;
          continue;
        }
        if (!response.similar.index_available) ++unavailable;
        if (response.similar.neighbors.empty()) ++failures;
      }
    });
  }
  for (auto& client : clients) client.join();
  double serve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  queue->Stop();

  const uint64_t total_requests = client_threads * requests_per_thread;
  const double qps = static_cast<double>(total_requests) / serve_seconds;
  auto metrics = obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* latency =
      metrics.FindHistogram("wsie.vec.query.latency_ns");
  double p50_us = 0.0, p99_us = 0.0;
  if (latency != nullptr && latency->count > 0) {
    p50_us = latency->Quantile(0.5) / 1e3;
    p99_us = latency->Quantile(0.99) / 1e3;
  }
  std::printf("\nserve path (admission queue, %zu clients): %llu similar "
              "queries in %.2f s = %.0f QPS\n",
              client_threads, static_cast<unsigned long long>(total_requests),
              serve_seconds, qps);
  std::printf("latency p50: %.1f us   p99: %.1f us   "
              "(wsie.vec.query.latency_ns, n=%llu)\n",
              p50_us, p99_us,
              latency == nullptr
                  ? 0ull
                  : static_cast<unsigned long long>(latency->count));

  // -------------------------------------------------- memory accounting
  const double quant_share =
      index.float_bytes() == 0
          ? 0.0
          : static_cast<double>(index.quantized_bytes()) /
                static_cast<double>(index.float_bytes());
  std::printf("\nmemory: float matrix %.1f KiB, int8 codes %.1f KiB "
              "(%.0f%% of float), graph %.1f KiB, file %.1f KiB\n",
              index.float_bytes() / 1024.0, index.quantized_bytes() / 1024.0,
              100.0 * quant_share, index.graph_bytes() / 1024.0,
              index.encoded_bytes() / 1024.0);

  const bool recall_ok = recall >= 0.95;
  const bool serve_ok = failures.load() == 0 && unavailable.load() == 0;
  std::printf("\nrecall@10 >= 0.95: %s\n", recall_ok ? "HOLDS" : "VIOLATED");
  std::printf("all admission-queue similar queries served: %s\n",
              serve_ok ? "HOLDS" : "VIOLATED");

  summary.Set("indexed_entities", static_cast<uint64_t>(n));
  summary.Set("dim", static_cast<uint64_t>(index.dim()));
  summary.Set("build_seconds", build_seconds);
  summary.Set("recall_at_10", recall);
  summary.Set("recall_queries", static_cast<uint64_t>(query_count));
  summary.Set("deterministic_rebuild", deterministic);
  summary.Set("qps", qps);
  summary.Set("latency_p50_us", p50_us);
  summary.Set("latency_p99_us", p99_us);
  summary.Set("float_bytes", static_cast<uint64_t>(index.float_bytes()));
  summary.Set("quantized_bytes",
              static_cast<uint64_t>(index.quantized_bytes()));
  summary.Set("graph_bytes", static_cast<uint64_t>(index.graph_bytes()));
  summary.Set("encoded_bytes", static_cast<uint64_t>(index.encoded_bytes()));
  summary.Set("simd", vec::VecSimdActive());
  summary.Set("gates_pass", recall_ok && deterministic && serve_ok);
  if (!summary.Write()) return 1;

  return (recall_ok && deterministic && serve_ok) ? 0 : 1;
}
