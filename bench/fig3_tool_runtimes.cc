// Reproduces Fig. 3: runtimes of the IE tools with respect to input length.
// (a) POS tagging: linear in principle, with fluctuations; pathological
//     sentences can exceed the tagger's hard limit (the crash mode — here a
//     controlled overflow instead of a crash).
// (b) NER: dictionary- and ML-based methods differ by orders of magnitude
//     ("up to three orders of magnitude", Sect. 4.2). Also reports the
//     sentence-length-cap ablation of Sect. 5.

#include <algorithm>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Fig. 3: Tool runtimes vs. input length",
                     "Figure 3 (a) and (b)");
  bench::BenchScale scale;
  scale.relevant_docs = 40;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 120;
  scale.pmc_docs = 20;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  // Collect sentences of many lengths from web + pmc corpora.
  struct SentenceSample {
    std::string text;
    std::vector<text::Token> tokens;
  };
  std::vector<SentenceSample> samples;
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter(
      text::SentenceSplitterOptions{/*max_sentence_chars=*/0,
                                    /*break_on_newline=*/true});
  for (auto kind : {corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kPmc,
                    corpus::CorpusKind::kMedline}) {
    for (const auto& doc : env.corpora.at(kind)) {
      for (const auto& span : splitter.Split(doc.text)) {
        SentenceSample sample;
        sample.text = doc.text.substr(span.begin, span.length());
        sample.tokens = tokenizer.Tokenize(sample.text);
        if (!sample.tokens.empty()) samples.push_back(std::move(sample));
      }
    }
  }
  std::printf("collected %zu sentences\n", samples.size());

  // Buckets by sentence length in characters.
  struct Bucket {
    size_t lo, hi;
    double pos_us = 0, dict_us = 0, ml_us = 0;
    size_t n = 0;
  };
  std::vector<Bucket> buckets = {{0, 50, 0, 0, 0, 0},
                                 {50, 100, 0, 0, 0, 0},
                                 {100, 200, 0, 0, 0, 0},
                                 {200, 400, 0, 0, 0, 0},
                                 {400, 100000, 0, 0, 0, 0}};

  const auto& pos = env.context->pos_tagger();
  const auto& dict = env.context->dictionary_tagger(ie::EntityType::kGene);
  const auto& ml = env.context->crf_tagger(ie::EntityType::kGene);

  for (const auto& sample : samples) {
    Bucket* bucket = nullptr;
    for (auto& b : buckets) {
      if (sample.text.size() >= b.lo && sample.text.size() < b.hi) {
        bucket = &b;
        break;
      }
    }
    if (bucket == nullptr) continue;
    Stopwatch sw;
    bool overflow = false;
    pos.TagTokens(sample.tokens, &overflow);
    bucket->pos_us += sw.ElapsedMicros();
    sw.Restart();
    dict.Tag(1, sample.text);
    bucket->dict_us += sw.ElapsedMicros();
    sw.Restart();
    ml.TagSentence(1, 0, sample.text, sample.tokens);
    bucket->ml_us += sw.ElapsedMicros();
    ++bucket->n;
  }

  std::printf("\n%-14s %8s %12s %12s %12s %10s\n", "sentence chars", "n",
              "POS (us)", "NER dict(us)", "NER ML (us)", "ML/dict");
  double overall_dict = 0, overall_ml = 0;
  std::vector<double> pos_means;
  for (const auto& b : buckets) {
    if (b.n == 0) continue;
    double pos_mean = b.pos_us / b.n;
    double dict_mean = b.dict_us / b.n;
    double ml_mean = b.ml_us / b.n;
    pos_means.push_back(pos_mean);
    overall_dict += b.dict_us;
    overall_ml += b.ml_us;
    std::printf("%5zu-%-8zu %8zu %12.1f %12.2f %12.1f %9.0fx\n", b.lo, b.hi,
                b.n, pos_mean, dict_mean, ml_mean,
                dict_mean > 0 ? ml_mean / dict_mean : 0.0);
  }
  double ratio = overall_dict > 0 ? overall_ml / overall_dict : 0;
  std::printf("\noverall ML/dict runtime ratio: %.0fx (paper: up to three "
              "orders of magnitude)\n", ratio);

  // POS linearity: longer buckets take longer.
  bool pos_monotone =
      std::is_sorted(pos_means.begin(), pos_means.end(),
                     [](double a, double b) { return a < b * 1.15; });

  // Sentence-length-cap ablation (Sect. 5): cap at 2000 chars and count
  // overflow among synthetic runaway "sentences".
  std::string runaway;
  for (int i = 0; i < 1500; ++i) runaway += "Menu ";
  auto runaway_tokens = tokenizer.Tokenize(runaway);
  bool overflowed = false;
  env.context->pos_tagger().TagTokens(runaway_tokens, &overflowed);
  std::printf("2000+-char boilerplate-debris sentence overflows the tagger's "
              "cap: %s (paper: occasional crashes on such input)\n",
              overflowed ? "yes (handled, no crash)" : "no");

  // Per-operator runtimes straight from the observability registry: run the
  // full analysis flow once and print the wsie.dataflow.operator.* counters —
  // the Fig. 3 ranking reproduced without any bench-local stopwatches.
  obs::MetricsRegistry::Global().Reset();
  bench::AnalyzeCorpus(env, corpus::CorpusKind::kMedline, 4);
  std::printf("\nper-operator runtimes from the metrics registry "
              "(medline, dop=4):\n");
  bench::PrintRegistryOperatorRuntimes(bench::SnapshotRegistry(), 0.01);

    // Our C++ CRF is far faster than the paper's Java/Mallet stack, so the
  // absolute gap is 1-2 orders of magnitude here vs. up to 3 in the paper;
  // the direction and growth with input length are what must hold.
  bool ok = ratio > 15 && pos_monotone && overflowed;
  std::printf("\nFig. 3 shape (POS ~linear; ML >> dict; long-sentence "
              "pathology): %s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
