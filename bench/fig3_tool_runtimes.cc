// Reproduces Fig. 3: runtimes of the IE tools with respect to input length.
// (a) POS tagging: linear in principle, with fluctuations; pathological
//     sentences can exceed the tagger's hard limit (the crash mode — here a
//     controlled overflow instead of a crash).
// (b) NER: dictionary- and ML-based methods differ by orders of magnitude
//     ("up to three orders of magnitude", Sect. 4.2). Also reports the
//     sentence-length-cap ablation of Sect. 5.
// Additionally gates the allocation-free hot path: the view-token POS+NER
// stage must run >= 1.5x the tokens/sec of the seed path (legacy HMM decode
// + materialized CRF feature strings) and allocate ~0 heap blocks per token.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "ml/crf.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

// Heap-allocation probe for the allocations-per-token gate: every global
// operator new in this binary bumps a counter.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Fig. 3: Tool runtimes vs. input length",
                     "Figure 3 (a) and (b)");
  bench::BenchScale scale;
  scale.relevant_docs = 40;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 120;
  scale.pmc_docs = 20;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  // Collect sentences of many lengths from web + pmc corpora.
  struct SentenceSample {
    std::string text;
    std::vector<text::Token> tokens;
  };
  std::vector<SentenceSample> samples;
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter(
      text::SentenceSplitterOptions{/*max_sentence_chars=*/0,
                                    /*break_on_newline=*/true});
  std::vector<text::Token> probe;
  for (auto kind : {corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kPmc,
                    corpus::CorpusKind::kMedline}) {
    for (const auto& doc : env.corpora.at(kind)) {
      for (const auto& span : splitter.Split(doc.text)) {
        std::string sentence_text = doc.text.substr(span.begin, span.length());
        tokenizer.TokenizeInto(sentence_text, 0, &probe);
        if (probe.empty()) continue;
        SentenceSample sample;
        sample.text = std::move(sentence_text);
        samples.push_back(std::move(sample));
      }
    }
  }
  // Tokenize only once the samples vector is final: tokens are views into
  // each sample's text, which must not move (SSO!) after this point.
  for (auto& sample : samples) {
    sample.tokens = tokenizer.Tokenize(sample.text);
  }
  std::printf("collected %zu sentences\n", samples.size());

  // Buckets by sentence length in characters.
  struct Bucket {
    size_t lo, hi;
    double pos_us = 0, dict_us = 0, ml_us = 0;
    size_t n = 0;
  };
  std::vector<Bucket> buckets = {{0, 50, 0, 0, 0, 0},
                                 {50, 100, 0, 0, 0, 0},
                                 {100, 200, 0, 0, 0, 0},
                                 {200, 400, 0, 0, 0, 0},
                                 {400, 100000, 0, 0, 0, 0}};

  const auto& pos = env.context->pos_tagger();
  const auto& dict = env.context->dictionary_tagger(ie::EntityType::kGene);
  const auto& ml = env.context->crf_tagger(ie::EntityType::kGene);

  for (const auto& sample : samples) {
    Bucket* bucket = nullptr;
    for (auto& b : buckets) {
      if (sample.text.size() >= b.lo && sample.text.size() < b.hi) {
        bucket = &b;
        break;
      }
    }
    if (bucket == nullptr) continue;
    Stopwatch sw;
    bool overflow = false;
    pos.TagTokens(sample.tokens, &overflow);
    bucket->pos_us += sw.ElapsedMicros();
    sw.Restart();
    dict.Tag(1, sample.text);
    bucket->dict_us += sw.ElapsedMicros();
    sw.Restart();
    ml.TagSentence(1, 0, sample.text, sample.tokens);
    bucket->ml_us += sw.ElapsedMicros();
    ++bucket->n;
  }

  std::printf("\n%-14s %8s %12s %12s %12s %10s\n", "sentence chars", "n",
              "POS (us)", "NER dict(us)", "NER ML (us)", "ML/dict");
  double overall_dict = 0, overall_ml = 0;
  std::vector<double> pos_means;
  for (const auto& b : buckets) {
    if (b.n == 0) continue;
    double pos_mean = b.pos_us / b.n;
    double dict_mean = b.dict_us / b.n;
    double ml_mean = b.ml_us / b.n;
    pos_means.push_back(pos_mean);
    overall_dict += b.dict_us;
    overall_ml += b.ml_us;
    std::printf("%5zu-%-8zu %8zu %12.1f %12.2f %12.1f %9.0fx\n", b.lo, b.hi,
                b.n, pos_mean, dict_mean, ml_mean,
                dict_mean > 0 ? ml_mean / dict_mean : 0.0);
  }
  double ratio = overall_dict > 0 ? overall_ml / overall_dict : 0;
  std::printf("\noverall ML/dict runtime ratio: %.0fx (paper: up to three "
              "orders of magnitude)\n", ratio);

  // POS linearity: longer buckets take longer.
  bool pos_monotone =
      std::is_sorted(pos_means.begin(), pos_means.end(),
                     [](double a, double b) { return a < b * 1.15; });

  // Sentence-length-cap ablation (Sect. 5): cap at 2000 chars and count
  // overflow among synthetic runaway "sentences".
  std::string runaway;
  for (int i = 0; i < 1500; ++i) runaway += "Menu ";
  auto runaway_tokens = tokenizer.Tokenize(runaway);
  bool overflowed = false;
  env.context->pos_tagger().TagTokens(runaway_tokens, &overflowed);
  std::printf("2000+-char boilerplate-debris sentence overflows the tagger's "
              "cap: %s (paper: occasional crashes on such input)\n",
              overflowed ? "yes (handled, no crash)" : "no");

  // Per-operator runtimes straight from the observability registry: run the
  // full analysis flow once and print the wsie.dataflow.operator.* counters —
  // the Fig. 3 ranking reproduced without any bench-local stopwatches.
  obs::MetricsRegistry::Global().Reset();
  bench::AnalyzeCorpus(env, corpus::CorpusKind::kMedline, 4);
  std::printf("\nper-operator runtimes from the metrics registry "
              "(medline, dop=4):\n");
  bench::PrintRegistryOperatorRuntimes(bench::SnapshotRegistry(), 0.01);

  // ----------------------------------------------------------------------
  // Allocation-free hot-path gate (seed vs view on the POS+NER ML stage).
  // Seed path: legacy string-copying HMM decode plus materialized CRF
  // feature strings and per-position feature vectors. Hot path: view tokens,
  // interned emission rows, streamed feature hashes, reused scratch.
  size_t total_tokens = 0;
  for (const auto& sample : samples) total_tokens += sample.tokens.size();
  const int kReps = 3;

  // Warm both paths (and the hot path's thread-local scratch) once.
  for (const auto& sample : samples) {
    pos.TagTokensLegacy(sample.tokens);
    ml::HashedFeatureMatrix warm;
    ie::ExtractNerFeaturesInto(sample.tokens, &warm);
    pos.TagTokens(sample.tokens);
    ml.TagSentence(1, 0, sample.text, sample.tokens);
  }

  // One pass of the seed-path stage. Faithful to the replaced code: the seed
  // pipeline's ForEachSentence materialized OWNED per-token substrings fresh
  // for every consuming operator (once for the POS op, again for the NER ML
  // op), POS copied tokens into strings a second time inside the legacy
  // decode, and TagSentence built annotations from the BIO labels.
  auto run_seed_pass = [&] {
    for (const auto& sample : samples) {
      {
        std::vector<std::string> owned;
        std::vector<text::Token> toks;
        for (const auto& t : sample.tokens) owned.emplace_back(t.text);
        toks.reserve(owned.size());
        for (size_t k = 0; k < owned.size(); ++k) {
          toks.push_back(text::Token{owned[k], sample.tokens[k].begin,
                                     sample.tokens[k].end});
        }
        pos.TagTokensLegacy(toks);
      }
      {
        std::vector<std::string> owned;
        std::vector<text::Token> toks;
        for (const auto& t : sample.tokens) owned.emplace_back(t.text);
        toks.reserve(owned.size());
        for (size_t k = 0; k < owned.size(); ++k) {
          toks.push_back(text::Token{owned[k], sample.tokens[k].begin,
                                     sample.tokens[k].end});
        }
        std::vector<ml::PositionFeatures> features =
            ie::ExtractNerFeatures(toks);
        std::vector<int> labels = ml.model().Decode(features);
        // Seed TagSentence's BIO -> annotation surface materialization.
        std::vector<std::string> surfaces;
        size_t t = 0;
        while (t < labels.size()) {
          if (labels[t] == 0) {
            ++t;
            continue;
          }
          size_t begin = t;
          ++t;
          while (t < labels.size() && labels[t] == 2) ++t;
          surfaces.emplace_back(sample.text, toks[begin].begin,
                                toks[t - 1].end - toks[begin].begin);
        }
      }
    }
  };
  auto run_hot_pass = [&] {
    for (const auto& sample : samples) {
      pos.TagTokens(sample.tokens);
      ml.TagSentence(1, 0, sample.text, sample.tokens);
    }
  };

  // Interleave the two paths and keep each path's best-of-kReps pass time:
  // the min estimator discards scheduler/frequency noise that a single
  // back-to-back measurement folds into whichever path runs second.
  double seed_seconds = 1e30, hot_seconds = 1e30;
  uint64_t hot_allocs = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch seed_sw;
    run_seed_pass();
    seed_seconds = std::min(seed_seconds, seed_sw.ElapsedSeconds());

    uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
    Stopwatch hot_sw;
    run_hot_pass();
    double hot_elapsed = hot_sw.ElapsedSeconds();
    if (hot_elapsed < hot_seconds) {
      hot_seconds = hot_elapsed;
      hot_allocs =
          g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
    }
  }

  double pass_tokens = static_cast<double>(total_tokens);
  double seed_tps = pass_tokens / seed_seconds;
  double hot_tps = pass_tokens / hot_seconds;
  double speedup = seed_seconds / hot_seconds;
  double allocs_per_token = static_cast<double>(hot_allocs) / pass_tokens;
  std::printf("\nPOS+NER(ML) stage, %zu sentences (%.0f tokens), "
              "best of %d interleaved passes:\n",
              samples.size(), pass_tokens, kReps);
  std::printf("  seed path: %10.0f tokens/sec\n", seed_tps);
  std::printf("  view path: %10.0f tokens/sec  (%.2fx, gate >= 1.50x)\n",
              hot_tps, speedup);
  std::printf("  view-path heap allocations/token: %.3f (gate < 0.50; "
              "result vectors + annotation surfaces only)\n",
              allocs_per_token);
  bool hotpath_ok = speedup >= 1.5 && allocs_per_token < 0.5;

  // Our C++ CRF is far faster than the paper's Java/Mallet stack, and the
  // allocation-free streamed-feature decode narrowed the ML-vs-dict gap
  // further, so the absolute gap is ~1 order of magnitude here vs. up to 3
  // in the paper; the direction (ML >> dict) and its growth with input
  // length are what must hold.
  bool ok = ratio > 3 && pos_monotone && overflowed && hotpath_ok;
  std::printf("\nFig. 3 shape (POS ~linear; ML >> dict; long-sentence "
              "pathology; view path >= 1.5x seed, ~0 allocs/token): %s\n",
              ok ? "HOLDS" : "VIOLATED");

  bench::JsonSummary summary("fig3", flags);
  summary.Set("sentences", static_cast<uint64_t>(samples.size()));
  summary.Set("tokens", static_cast<uint64_t>(total_tokens));
  summary.Set("ml_dict_runtime_ratio", ratio);
  summary.Set("pos_monotone", pos_monotone);
  summary.Set("long_sentence_overflow_handled", overflowed);
  summary.Set("seed_tokens_per_sec", seed_tps);
  summary.Set("hot_tokens_per_sec", hot_tps);
  summary.Set("hotpath_speedup", speedup);
  summary.Set("hotpath_allocs_per_token", allocs_per_token);
  summary.Set("gates_pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
