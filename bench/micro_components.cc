// google-benchmark micro-benchmarks for the core components: automaton
// dictionary matching, CRF decoding, HMM POS tagging, tokenization,
// sentence splitting, boilerplate detection, Naive Bayes, and JSD.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "corpus/lexicon.h"
#include "corpus/text_generator.h"
#include "html/boilerplate.h"
#include "ie/crf_tagger.h"
#include "ie/dictionary_tagger.h"
#include "ml/naive_bayes.h"
#include "ml/stats.h"
#include "nlp/pos_tagger.h"
#include "text/bag_of_words.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

// Heap-allocation probe: every global operator new in this binary bumps a
// counter, so benchmarks can report allocations-per-token for the seed vs
// view tagger paths.
static std::atomic<uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace wsie;

const corpus::EntityLexicons& Lexicons() {
  static const corpus::EntityLexicons* kLexicons =
      new corpus::EntityLexicons(corpus::LexiconConfig{3000, 400, 400, 5});
  return *kLexicons;
}

std::string SampleText(size_t approx_chars) {
  static std::string* kText = [] {
    corpus::TextGenerator generator(
        &Lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline), 9);
    auto* text = new std::string();
    while (text->size() < 1 << 20) {
      *text += generator.GenerateDocument(text->size()).text;
      *text += "\n";
    }
    return text;
  }();
  return kText->substr(0, approx_chars);
}

void BM_Tokenizer(benchmark::State& state) {
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_Tokenizer)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_SentenceSplitter(benchmark::State& state) {
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::SentenceSplitter splitter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_SentenceSplitter)->Arg(1 << 14)->Arg(1 << 17);

void BM_DictionaryBuild(benchmark::State& state) {
  std::vector<std::string> dict(
      Lexicons().genes().begin(),
      Lexicons().genes().begin() + state.range(0));
  for (auto _ : state) {
    ie::DictionaryTagger tagger(ie::EntityType::kGene, dict);
    benchmark::DoNotOptimize(tagger.build_stats().automaton_nodes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DictionaryBuild)->Arg(500)->Arg(1500)->Arg(3000);

void BM_DictionaryTag(benchmark::State& state) {
  static const ie::DictionaryTagger* kTagger =
      new ie::DictionaryTagger(ie::EntityType::kGene, Lexicons().genes());
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kTagger->Tag(1, text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_DictionaryTag)->Arg(1 << 12)->Arg(1 << 16);

const ie::CrfTagger& CrfBenchTagger() {
  static const ie::CrfTagger* kTagger = [] {
    auto* tagger = new ie::CrfTagger(ie::EntityType::kGene, 1 << 16);
    corpus::TextGenerator generator(
        &Lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline), 10);
    // Quick training on tokenized sentences without gold (labels all O) is
    // useless; reuse a tiny shape-based gold instead.
    std::vector<ie::TaggedSentence> gold;
    for (int i = 0; i < 50; ++i) {
      auto doc = generator.GenerateDocument(i);
      // MakeTaggedSentence pins the text: tokens are views, and a temporary
      // substr would dangle the moment it was destroyed.
      gold.push_back(ie::MakeTaggedSentence(
          std::string_view(doc.text).substr(0, 200)));
    }
    ml::CrfTrainOptions options;
    options.epochs = 2;
    tagger->Train(gold, options);
    return tagger;
  }();
  return *kTagger;
}

const nlp::PosTagger& PosBenchTagger() {
  static const nlp::PosTagger* kTagger = [] {
    auto* tagger = new nlp::PosTagger();
    tagger->TrainDefault(3, 2000);
    return tagger;
  }();
  return *kTagger;
}

/// tokens/sec + allocations-per-token counters for the tagger benchmarks.
/// `allocs` is the heap-probe delta over the whole timed loop.
void SetTokenCounters(benchmark::State& state, size_t tokens_per_iter,
                      uint64_t allocs) {
  double tokens_done = static_cast<double>(state.iterations()) *
                       static_cast<double>(tokens_per_iter);
  state.SetItemsProcessed(static_cast<int64_t>(tokens_done));
  state.counters["tokens_per_sec"] =
      benchmark::Counter(tokens_done, benchmark::Counter::kIsRate);
  state.counters["allocs_per_token"] =
      benchmark::Counter(static_cast<double>(allocs) / tokens_done);
}

void BM_CrfTag(benchmark::State& state) {
  const ie::CrfTagger& tagger = CrfBenchTagger();
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  tagger.TagSentence(1, 0, text, tokens);  // warm thread-local scratch
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagger.TagSentence(1, 0, text, tokens));
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_CrfTag)->Arg(256)->Arg(1024);

// Seed CRF path: materialized feature strings, one heap block per position,
// allocating Viterbi. The baseline for the hot-path speedup.
void BM_CrfTagSeed(benchmark::State& state) {
  const ie::CrfTagger& tagger = CrfBenchTagger();
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    std::vector<ml::PositionFeatures> features =
        ie::ExtractNerFeatures(tokens);
    benchmark::DoNotOptimize(tagger.model().Decode(features));
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_CrfTagSeed)->Arg(256)->Arg(1024);

void BM_PosTag(benchmark::State& state) {
  const nlp::PosTagger& tagger = PosBenchTagger();
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  tagger.TagTokens(tokens);  // warm thread-local scratch
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagger.TagTokens(tokens));
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_PosTag)->Arg(256)->Arg(1024)->Arg(4096);

// Seed POS path: per-token string copies into the HMM's string-keyed
// emission lookups plus per-position Viterbi allocations.
void BM_PosTagSeed(benchmark::State& state) {
  const nlp::PosTagger& tagger = PosBenchTagger();
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagger.TagTokensLegacy(tokens));
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_PosTagSeed)->Arg(256)->Arg(1024)->Arg(4096);

// CRF feature extraction in isolation: streamed component hashes vs the
// seed's concatenated feature strings (identical hash output, golden-tested
// in tests/hotpath_test.cc).
void BM_NerFeaturesStreamed(benchmark::State& state) {
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  ml::HashedFeatureMatrix features;
  ie::ExtractNerFeaturesInto(tokens, &features);  // warm scratch
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    ie::ExtractNerFeaturesInto(tokens, &features);
    benchmark::DoNotOptimize(features.num_positions());
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_NerFeaturesStreamed)->Arg(256)->Arg(1024);

void BM_NerFeaturesSeed(benchmark::State& state) {
  std::string text = SampleText(static_cast<size_t>(state.range(0)));
  text::Tokenizer tokenizer;
  auto tokens = tokenizer.Tokenize(text);
  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ie::ExtractNerFeatures(tokens));
  }
  SetTokenCounters(state, tokens.size(),
                   g_heap_allocs.load(std::memory_order_relaxed) - before);
}
BENCHMARK(BM_NerFeaturesSeed)->Arg(256)->Arg(1024);

void BM_Boilerplate(benchmark::State& state) {
  std::string content = SampleText(static_cast<size_t>(state.range(0)));
  std::string html = "<html><body><div class='nav'><ul>";
  for (int i = 0; i < 20; ++i) {
    html += "<li><a href='/p" + std::to_string(i) + "'>Link</a></li>";
  }
  html += "</ul></div><div><p>" + content + "</p></div></body></html>";
  html::BoilerplateDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.NetText(html));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(html.size()));
}
BENCHMARK(BM_Boilerplate)->Arg(1 << 12)->Arg(1 << 16);

void BM_NaiveBayesPredict(benchmark::State& state) {
  static const ml::NaiveBayesClassifier* kModel = [] {
    auto* model = new ml::NaiveBayesClassifier({"rel", "irrel"});
    text::BagOfWords bow;
    corpus::TextGenerator rel(
        &Lexicons(), corpus::ProfileFor(corpus::CorpusKind::kMedline), 11);
    corpus::TextGenerator irrel(
        &Lexicons(), corpus::ProfileFor(corpus::CorpusKind::kIrrelevantWeb),
        12);
    for (int i = 0; i < 100; ++i) {
      model->Update(0, bow.Featurize(rel.GenerateDocument(i).text));
      model->Update(1, bow.Featurize(irrel.GenerateDocument(i).text));
    }
    return model;
  }();
  text::BagOfWords bow;
  text::TermCounts features =
      bow.Featurize(SampleText(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kModel->PredictProbabilities(features));
  }
}
BENCHMARK(BM_NaiveBayesPredict)->Arg(1 << 12)->Arg(1 << 15);

void BM_JensenShannon(benchmark::State& state) {
  std::map<std::string, uint64_t> a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a["name" + std::to_string(i)] = static_cast<uint64_t>(i % 17 + 1);
    b["name" + std::to_string(i + state.range(0) / 2)] =
        static_cast<uint64_t>(i % 13 + 1);
  }
  ml::Distribution pa = ml::NormalizeCounts(a);
  ml::Distribution pb = ml::NormalizeCounts(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::JensenShannonDivergence(pa, pb));
  }
}
BENCHMARK(BM_JensenShannon)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
