// Reproduces the Sect. 4.3.2 Jensen-Shannon divergence analysis between
// the entity-name distributions of the four corpora. Paper ranges:
//   rel vs irrel:   0.4463 <= JSD <= 0.6548  (most dissimilar)
//   rel vs medline: 0.2864 <= JSD <= 0.3596
//   rel vs pmc:     0.1673 <= JSD <= 0.3354  (most similar)
//   irrel vs medline: 0.4528 <= JSD <= 0.6850
//   irrel vs pmc:     0.3941 <= JSD <= 0.6633
// Shape to hold: every rel-irrel divergence exceeds the corresponding
// rel-medline and rel-pmc divergence.

#include "bench_util.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Sect. 4.3.2: Jensen-Shannon divergence between corpora",
                     "Sect. 4.3.2 (JSD analysis)");
  bench::BenchEnv env = bench::MakeBenchEnv();

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  const char* type_names[] = {"gene", "drug", "disease"};

  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) analyses.emplace(kind, bench::AnalyzeCorpus(env, kind));

  const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
  const auto& irrel = analyses.at(corpus::CorpusKind::kIrrelevantWeb);
  const auto& medl = analyses.at(corpus::CorpusKind::kMedline);
  const auto& pmc = analyses.at(corpus::CorpusKind::kPmc);

  std::printf("%-10s %12s %12s %12s %14s %12s\n", "type", "rel-irrel",
              "rel-medl", "rel-pmc", "irrel-medl", "irrel-pmc");
  bool ok = true;
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    double ri = core::EntityDistributionJsd(rel, irrel, type, 0);
    double rm = core::EntityDistributionJsd(rel, medl, type, 0);
    double rp = core::EntityDistributionJsd(rel, pmc, type, 0);
    double im = core::EntityDistributionJsd(irrel, medl, type, 0);
    double ip = core::EntityDistributionJsd(irrel, pmc, type, 0);
    std::printf("%-10s %12.4f %12.4f %12.4f %14.4f %12.4f\n",
                type_names[type], ri, rm, rp, im, ip);
    if (ri <= rm || ri <= rp) ok = false;
    if (im <= rm) ok = false;
  }
  std::printf("\npaper: rel-irrel in [0.4463,0.6548] > rel-medl in "
              "[0.2864,0.3596] and rel-pmc in [0.1673,0.3354]\n");
  std::printf("JSD ordering (rel-irrel largest; relevant closer to the "
              "literature): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
