// Reproduces the Sect. 4.2 "war story": why the complete Fig. 2 flow could
// not run on the paper's cluster, and how splitting it fixed that.
//  1. The complete flow needs ~60 GB per worker; nodes have 24 GB -> the
//     executor's admission control rejects it.
//  2. Splitting into one linguistic flow + one flow per entity class makes
//     every part fit (except the gene flow, which must further split
//     dictionary and ML runs / move to the 1 TB server).
//  3. The OpenNLP 1.4 / 1.5 version conflict blocks the disease-ML flow
//     from co-running with the 1.5-based preprocessing operators.
//  4. Annotations inflate data volume: 1 TB of text produced 1.6 TB of
//     annotations; we verify annotations exceed the raw input here too.

#include <string_view>

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Sect. 4.2: Processing the entire crawl - a war story",
                     "Sect. 4.2 (memory, versioning, data volume)");
  bench::BenchScale scale;
  scale.relevant_docs = 30;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 1;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& docs = env.corpora.at(corpus::CorpusKind::kRelevantWeb);
  const size_t kNodeBudget = 24ull << 30;  // 24 GB nodes

  // 1. Complete flow at paper-scale memory.
  core::FlowOptions full;
  full.paper_scale_memory = true;
  dataflow::Plan full_plan = core::BuildAnalysisFlow(env.context, full);
  size_t flow_bytes = 0;
  for (const auto& node : full_plan.nodes()) {
    if (!node.is_source()) flow_bytes += node.op->MemoryBytesPerWorker();
  }
  std::printf("complete flow: %zu operators, %.0f GB per worker (paper: "
              "~60 GB; nodes have 24 GB)\n",
              full_plan.num_operators(),
              static_cast<double>(flow_bytes) / (1ull << 30));
  auto full_result =
      core::RunFlow(full_plan, docs,
                    dataflow::ExecutorConfig{2, kNodeBudget, 8});
  std::printf("running it on a 24 GB node: %s\n",
              full_result.ok() ? "UNEXPECTEDLY SUCCEEDED"
                               : full_result.status().ToString().c_str());
  bool rejected = !full_result.ok() &&
                  full_result.status().code() == StatusCode::kResourceExhausted;

  // 2. Split per the paper's remedy.
  auto parts = core::SplitFlowByMemory(full, kNodeBudget);
  std::printf("\nsplit into %zu parts (paper: one linguistic flow + one flow "
              "per entity class; gene split further):\n", parts.size());
  bool all_parts_fit = true;
  for (const auto& part : parts) {
    dataflow::Plan plan = core::BuildAnalysisFlow(env.context, part);
    size_t bytes = 0;
    for (const auto& node : plan.nodes()) {
      if (!node.is_source()) bytes += node.op->MemoryBytesPerWorker();
    }
    std::string label = part.linguistic_analysis ? "linguistic" : "";
    if (part.entity_annotation) {
      for (auto type : part.entity_types) {
        label += std::string(ie::EntityTypeName(type)) +
                 (part.dictionary_methods && part.ml_methods ? "(dict+ml)"
                  : part.dictionary_methods                  ? "(dict)"
                                                             : "(ml)");
      }
    }
    bool fits = bytes <= kNodeBudget;
    if (!fits) all_parts_fit = false;
    std::printf("  %-22s %5.0f GB/worker -> %s\n", label.c_str(),
                static_cast<double>(bytes) / (1ull << 30),
                fits ? "fits" : "does NOT fit");
  }

  // 3. Library version conflict.
  core::FlowOptions disease;
  disease.linguistic_analysis = false;
  disease.entity_types = {ie::EntityType::kDisease};
  dataflow::Plan disease_plan = core::BuildAnalysisFlow(env.context, disease);
  Status conflict = core::CheckLibraryConflicts(disease_plan);
  std::printf("\ndisease-ML flow library check: %s\n",
              conflict.ToString().c_str());
  bool conflict_found = !conflict.ok();

  // 4. Annotation volume inflation (run the real flow without the memory
  // model).
  core::FlowOptions real;
  dataflow::Plan real_plan = core::BuildAnalysisFlow(env.context, real);
  auto result = core::RunFlow(real_plan, docs, dataflow::ExecutorConfig{2, 0, 8});
  if (!result.ok()) return 1;
  size_t input_bytes = 0;
  for (const auto& d : docs) input_bytes += d.text.size();
  // Annotation volume produced by the pipeline: bytes the executor had to
  // materialize at stage boundaries plus bytes that streamed through fused
  // operators without ever becoming a Dataset.
  uint64_t produced_bytes =
      result->total_bytes_materialized + result->total_bytes_streamed;
  double inflation =
      static_cast<double>(produced_bytes) / static_cast<double>(input_bytes);
  std::printf("\nraw input: %s bytes; produced through the pipeline: %s "
              "bytes (%.1fx)\n",
              FormatWithCommas(static_cast<long long>(input_bytes)).c_str(),
              FormatWithCommas(static_cast<long long>(produced_bytes)).c_str(),
              inflation);
  std::printf("of which materialized at stage boundaries: %s bytes; streamed "
              "through fused stages without materialization: %s bytes\n",
              FormatWithCommas(
                  static_cast<long long>(result->total_bytes_materialized))
                  .c_str(),
              FormatWithCommas(
                  static_cast<long long>(result->total_bytes_streamed))
                  .c_str());
  std::printf("paper: 1 TB raw text grew to 1.6 TB of annotations on top — "
              "the opposite of the usual aggregate-as-you-go Big Data "
              "pattern\n");
  bool inflated = inflation > 1.5;

  // 5. Distinct-name table memory: the analysis keeps [type][method] name
  // tables; compare the arena-backed flat map it uses now against what the
  // same contents would cost in the node-based std::map it replaced. Each
  // map entry is one red-black node (3 pointers + color word, the
  // pair<const string, uint64_t>, and the malloc chunk header that every
  // node allocation pays) plus a second allocation for any name too long
  // for SSO.
  constexpr size_t kChunkOverhead = 16;  // glibc malloc header + alignment
  constexpr size_t kSsoCapacity = 15;
  core::CorpusAnalysis analysis = core::AnalyzeRecords(
      corpus::CorpusKind::kRelevantWeb, result->sink_outputs.at("analyzed"));
  size_t flat_bytes = analysis.NameTableMemoryBytes();
  size_t map_bytes = 0, names = 0;
  for (const auto& by_type : analysis.names) {
    for (const auto& table : by_type) {
      table.ForEach([&](std::string_view name, uint64_t) {
        map_bytes += 4 * sizeof(void*) +
                     sizeof(std::pair<const std::string, uint64_t>) +
                     kChunkOverhead;
        if (name.size() > kSsoCapacity) {
          map_bytes += name.size() + 1 + kChunkOverhead;
        }
        ++names;
      });
    }
  }
  std::printf("\ndistinct-name tables (%zu names): flat map %zu bytes vs "
              "std::map %zu bytes (%.0f%% of the node-based cost)\n",
              names, flat_bytes, map_bytes,
              map_bytes == 0 ? 0.0
                             : 100.0 * static_cast<double>(flat_bytes) /
                                   static_cast<double>(map_bytes));
  bool flat_smaller = flat_bytes < map_bytes;

  bool ok = rejected && all_parts_fit && conflict_found && inflated &&
            flat_smaller;
  std::printf("\nSect. 4.2 war story (admission rejects full flow; split "
              "fits; version conflict; volume inflation; flat name tables "
              "beat std::map): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
