// Write-path throughput: partitioned parallel compaction merge (MB/s) and
// batched morsel-parallel Vamana build (wall seconds), serial schedule vs
// parallel at 1..8 worker threads over the same inputs.
//
// Two gates, both asserted (non-zero exit on failure):
//   - byte identity: at EVERY thread count the parallel merge's encoded
//     segment and the parallel build's encoded index equal the serial
//     outputs bit for bit — the determinism contract behind the speedups;
//   - speedup: >= 3x at 8 workers for both stages, enforced only when the
//     host has >= 8 hardware threads (the same single-core fallback fig5
//     documents: on smaller hosts the parallel schedule degenerates to the
//     serial one plus morsel bookkeeping, so the gate would measure the
//     machine, not the code).
//
// Emits BENCH_micro_ingest.json with per-thread-count wall times, MB/s,
// and the gate verdicts. --json=PATH / --json=none as everywhere else.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "store/parallel_merge.h"
#include "store/segment.h"
#include "vec/ann_index.h"

namespace {

using wsie::Rng;
using wsie::Stopwatch;
using wsie::ThreadPool;

std::shared_ptr<const wsie::store::Segment> RandomSegment(Rng* rng,
                                                          uint64_t id,
                                                          size_t vocabulary,
                                                          size_t num_terms) {
  wsie::store::SegmentBuilder builder;
  for (size_t t = 0; t < num_terms; ++t) {
    const std::string name =
        "entity-" + std::to_string(rng->Uniform(vocabulary));
    const size_t postings = 1 + rng->Uniform(6);
    for (size_t p = 0; p < postings; ++p) {
      const auto begin = static_cast<uint32_t>(rng->Uniform(4000));
      builder.Add(name, static_cast<uint8_t>(rng->Uniform(4)),
                  static_cast<uint8_t>(rng->Uniform(3)),
                  static_cast<uint8_t>(rng->Uniform(2)),
                  wsie::store::Posting{rng->Uniform(2000),
                                       static_cast<uint32_t>(rng->Uniform(40)),
                                       begin, begin + 6});
    }
  }
  builder.AddCorpusStats(0, num_terms, 2 * num_terms, 120 * num_terms);
  auto segment_or = builder.Finish(id);
  if (!segment_or.ok()) {
    std::fprintf(stderr, "segment build failed: %s\n",
                 segment_or.status().ToString().c_str());
    std::exit(1);
  }
  return std::make_shared<const wsie::store::Segment>(std::move(*segment_or));
}

double Mb(size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

}  // namespace

int main(int argc, char** argv) {
  using namespace wsie;
  const bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Parallel write path: compaction merge + Vamana build",
                     "ingest microbench");
  bench::JsonSummary summary("micro_ingest", flags);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool enforce_speedup = cores >= 8;
  std::printf("host: %u core(s) -> 3x@8 speedup gate %s\n\n", cores,
              enforce_speedup ? "ENFORCED" : "documented only (fallback)");
  summary.Set("cores", static_cast<uint64_t>(cores));
  summary.Set("speedup_gate_enforced", enforce_speedup);

  // ---------------------------------------------------- compaction merge
  Rng rng(20260808);
  std::vector<std::shared_ptr<const store::Segment>> segments;
  size_t input_bytes = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    segments.push_back(RandomSegment(&rng, i + 1, 6000, 4000));
    input_bytes += segments.back()->encoded_bytes();
  }
  std::printf("compaction inputs: %zu segments, %.1f MB encoded\n",
              segments.size(), Mb(input_bytes));

  Stopwatch serial_watch;
  store::SegmentBuilder serial_builder;
  for (const auto& segment : segments) serial_builder.MergeSegment(*segment);
  auto serial_or = serial_builder.Finish(100);
  if (!serial_or.ok()) return 1;
  const double serial_merge_s = serial_watch.ElapsedNs() * 1e-9;
  const std::string serial_bytes = serial_or->Encode();
  std::printf("  serial merge: %7.3f s  %7.1f MB/s\n", serial_merge_s,
              Mb(input_bytes) / serial_merge_s);
  summary.Set("merge_serial_seconds", serial_merge_s);
  summary.Set("merge_input_mb", Mb(input_bytes));

  bool bytes_identical = true;
  double merge_8_s = serial_merge_s;
  for (const size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    Stopwatch watch;
    auto merged_or =
        store::MergeSegmentsParallel(segments, 100, &pool, threads);
    const double wall_s = watch.ElapsedNs() * 1e-9;
    if (!merged_or.ok()) return 1;
    const bool same = merged_or->Encode() == serial_bytes;
    bytes_identical = bytes_identical && same;
    if (threads == 8) merge_8_s = wall_s;
    std::printf("  parallel x%zu: %7.3f s  %7.1f MB/s  speedup %4.2fx  %s\n",
                threads, wall_s, Mb(input_bytes) / wall_s,
                serial_merge_s / wall_s, same ? "bytes==serial" : "MISMATCH");
    summary.Set("merge_parallel_" + std::to_string(threads) + "_seconds",
                wall_s);
  }
  const double merge_speedup = serial_merge_s / merge_8_s;
  summary.Set("merge_speedup_8", merge_speedup);

  // ------------------------------------------------------- Vamana build
  std::vector<std::string> names;
  names.reserve(4000);
  for (size_t i = 0; i < 4000; ++i) {
    names.push_back("term-" + std::to_string(rng.Uniform(1u << 30)));
  }
  vec::VecIndexConfig config;
  config.embedder.dim = 64;
  config.max_degree = 24;
  config.build_beam = 48;
  std::printf("\nANN build inputs: %zu names, dim %u, R %u, batch %u\n",
              names.size(), config.embedder.dim, config.max_degree,
              config.build_batch);

  ThreadPool one(1);
  vec::VecBuildOptions serial_options;
  serial_options.pool = &one;
  serial_options.workers = 1;
  Stopwatch ann_serial_watch;
  auto serial_index_or = vec::VecIndex::Build(names, config, 1, serial_options);
  if (!serial_index_or.ok()) return 1;
  const double ann_serial_s = ann_serial_watch.ElapsedNs() * 1e-9;
  const std::string serial_index_bytes = serial_index_or->Encode();
  std::printf("  serial build (1 worker): %7.3f s\n", ann_serial_s);
  summary.Set("ann_serial_seconds", ann_serial_s);

  double ann_8_s = ann_serial_s;
  for (const size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    vec::VecBuildOptions options;
    options.pool = &pool;
    options.workers = threads;
    Stopwatch watch;
    auto index_or = vec::VecIndex::Build(names, config, 1, options);
    const double wall_s = watch.ElapsedNs() * 1e-9;
    if (!index_or.ok()) return 1;
    const bool same = index_or->Encode() == serial_index_bytes;
    bytes_identical = bytes_identical && same;
    if (threads == 8) ann_8_s = wall_s;
    std::printf("  parallel x%zu: %7.3f s  speedup %4.2fx  %s\n", threads,
                wall_s, ann_serial_s / wall_s,
                same ? "bytes==serial" : "MISMATCH");
    summary.Set("ann_parallel_" + std::to_string(threads) + "_seconds",
                wall_s);
  }
  const double ann_speedup = ann_serial_s / ann_8_s;
  summary.Set("ann_speedup_8", ann_speedup);
  summary.Set("bytes_identical", bytes_identical);

  // ----------------------------------------------------------- verdicts
  bool ok = bytes_identical;
  if (!bytes_identical) {
    std::fprintf(stderr, "FAIL: parallel output differs from serial\n");
  }
  if (enforce_speedup) {
    if (merge_speedup < 3.0) {
      std::fprintf(stderr, "FAIL: merge speedup %.2fx < 3x at 8 workers\n",
                   merge_speedup);
      ok = false;
    }
    if (ann_speedup < 3.0) {
      std::fprintf(stderr, "FAIL: ANN build speedup %.2fx < 3x at 8 workers\n",
                   ann_speedup);
      ok = false;
    }
  }
  std::printf("\nresult: %s (merge %.2fx, ann %.2fx, bytes %s)\n",
              ok ? "PASS" : "FAIL", merge_speedup, ann_speedup,
              bytes_identical ? "identical" : "DIFFER");
  summary.Set("pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
