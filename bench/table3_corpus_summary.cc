// Reproduces Table 3: summary of the four data sets (size, number of
// documents, mean characters per document). Paper: relevant 373 GB /
// 4,233,523 docs / 88,384 chars; irrelevant 607 GB / 17,704,365 / 37,625;
// Medline 21 GB / 21,686,397 / 865; PMC 19 GB / 250,440 / 55,704.

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Table 3: Summary of data sets", "Table 3");
  bench::BenchEnv env = bench::MakeBenchEnv();

  struct PaperRow {
    corpus::CorpusKind kind;
    double paper_mean_chars;
  };
  const PaperRow rows[] = {
      {corpus::CorpusKind::kRelevantWeb, 88384},
      {corpus::CorpusKind::kIrrelevantWeb, 37625},
      {corpus::CorpusKind::kMedline, 865},
      {corpus::CorpusKind::kPmc, 55704},
  };

  std::printf("%-18s %12s %14s %16s %16s\n", "Data set", "Size (MB)",
              "No. of docs", "Mean chars", "paper mean chars");
  double prev_mean = 1e18;
  bool ordering_holds = true;
  for (const PaperRow& row : rows) {
    const auto& docs = env.corpora.at(row.kind);
    uint64_t chars = 0;
    for (const auto& d : docs) chars += d.text.size();
    double mean = docs.empty() ? 0 : static_cast<double>(chars) / docs.size();
    std::printf("%-18s %12.2f %14s %16.0f %16.0f\n",
                corpus::CorpusKindName(row.kind),
                static_cast<double>(chars) / (1 << 20),
                FormatWithCommas(static_cast<long long>(docs.size())).c_str(),
                mean, row.paper_mean_chars);
    (void)prev_mean;
    prev_mean = mean;
  }
  // Ordering check: rel > pmc > irrel > medline (web/PMC generated at 1:10
  // character scale; Medline at natural scale).
  auto mean_of = [&](corpus::CorpusKind kind) {
    const auto& docs = env.corpora.at(kind);
    uint64_t chars = 0;
    for (const auto& d : docs) chars += d.text.size();
    return docs.empty() ? 0.0 : static_cast<double>(chars) / docs.size();
  };
  ordering_holds =
      mean_of(corpus::CorpusKind::kRelevantWeb) >
          mean_of(corpus::CorpusKind::kPmc) &&
      mean_of(corpus::CorpusKind::kPmc) >
          mean_of(corpus::CorpusKind::kIrrelevantWeb) &&
      mean_of(corpus::CorpusKind::kIrrelevantWeb) >
          mean_of(corpus::CorpusKind::kMedline);
  std::printf("\nOrdering rel > pmc > irrel > medline: %s\n",
              ordering_holds ? "HOLDS (as in the paper)" : "VIOLATED");
  return ordering_holds ? 0 : 1;
}
