// Reproduces Table 2: the domains of the 30 top-ranked sites according to
// PageRank over the crawled link graph. Paper observation to hold: the top
// domains are dominated by biomedical hosts (plus the search-API hosts the
// seeds came from), confirming the crawl points at the target domain.

#include "bench_util.h"
#include "crawler/focused_crawler.h"
#include "crawler/pagerank.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Table 2: Top-ranked domains by PageRank", "Table 2");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 120;
  web_config.mean_pages_per_host = 15;
  web_config.seed = 6;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &env.context->lexicons());
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&env.context->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{60, 120, 100, 120});

  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 120;
  classifier_config.relevance_threshold = 0.5;
  crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                          classifier_config);
  crawler::CrawlerConfig config;
  config.max_pages = 2500;
  crawler::FocusedCrawler crawler(&sim, &classifier, config);
  crawler.InjectSeeds(seeds.seed_urls);
  crawler.Crawl();
  std::printf("crawled %llu pages, link graph: %zu nodes / %zu edges\n\n",
              static_cast<unsigned long long>(crawler.stats().fetched),
              crawler.link_db().num_nodes(), crawler.link_db().num_edges());

  auto top = crawler::TopDomains(crawler.link_db().TakeSnapshot(), 30);
  std::printf("%-34s %12s %s\n", "domain", "pagerank", "host topic");
  size_t biomed_like = 0;
  for (const auto& item : top) {
    // Classify the domain by looking up any host with that domain.
    const char* topic = "unknown";
    for (const auto& host : graph.hosts()) {
      if (web::DomainOf(host.name) == item.name) {
        topic = web::HostTopicName(host.topic);
        break;
      }
    }
    std::printf("%-34s %12.5f %s\n", item.name.c_str(), item.score, topic);
    if (std::string(topic) == "biomed-research" ||
        std::string(topic) == "biomed-portal" ||
        std::string(topic) == "lay-health") {
      ++biomed_like;
    }
  }
  double share = top.empty() ? 0.0
                             : static_cast<double>(biomed_like) /
                                   static_cast<double>(top.size());
  std::printf("\nbiomedical/health domains among top %zu: %zu (%.0f%%)\n",
              top.size(), biomed_like, 100 * share);
  std::printf("paper: 'many of them clearly relate to biomedical content'\n");
  bool ok = share > 0.5;
  std::printf("\nTable 2 shape (top PageRank domains biomedical-dominated): "
              "%s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
