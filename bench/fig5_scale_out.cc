// Reproduces Fig. 5: scale-out of the linguistic and entity-extraction
// flows for increasing degree of parallelism. Paper findings to hold:
//  - entity flow: good scale-out until ~DoP 16 (runtime -72%), then flat —
//    the ~20-minute dictionary load is a start-up floor no DoP amortizes;
//  - linguistic flow: near-ideal until ~DoP 12 (-95%), negligible start-up;
//  - entity flow infeasible below DoP 4 (excessive ML runtimes) and above
//    DoP 28 (per-worker dictionary memory exceeds the 24 GB nodes).
//
// Method: both flows run for real on shard::ShardRuntime at every shard
// count in --shards (default 1,2,4,8). Each shard is a full virtual node —
// its own plan instance, own operator Open() calls, own morsel scheduler —
// and the gather merge makes every run's sink byte-identical to the serial
// baseline. Measured per-shard stats establish the paper's two mechanisms
// directly: (a) processing work divides across shards near-linearly, and
// (b) every shard pays the full operator start-up, so the entity flow's
// dictionary build is a floor that scale-out cannot amortize.
//
// On a single-core host the shards run in sequential_workers mode (each
// worker timed alone on the calling thread), so the speedup gate is on
// work division — the per-shard processing phase — rather than wall time;
// with 4+ cores the workers run concurrently and wall time is gated too.
// The cluster-scale curve with the paper's constants (20-minute dictionary
// load, 20 GB sample) is kept at the end as a labeled model overlay.

#include <algorithm>
#include <cmath>
#include <thread>

#include "bench_util.h"
#include "shard/runtime.h"

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags defaults;
  defaults.dop = 1;  // serial baseline
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv, defaults);
  bench::PrintHeader("Fig. 5: Scale-out of linguistic and entity flows",
                     "Figure 5");
  bench::BenchScale scale;
  scale.relevant_docs = 64;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 1;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& docs = env.corpora.at(corpus::CorpusKind::kRelevantWeb);

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool multicore = cores >= 4;
  std::printf("host: %u core(s) -> shard workers run %s; speedup gate on "
              "%s\n\n",
              cores, multicore ? "concurrently" : "sequentially (timed alone)",
              multicore ? "wall time and work division" : "work division");

  auto sink_json = [](const std::map<std::string, dataflow::Dataset>& sinks) {
    std::string json;
    auto it = sinks.find("analyzed");
    if (it == sinks.end()) return json;
    for (const auto& r : it->second) {
      json += r.ToJson();
      json += '\n';
    }
    return json;
  };

  bool identical_everywhere = true;
  double speedup_at_gate[2] = {0, 0};  // [linguistic, entity] at >=4 shards
  double wall_speedup_at_gate[2] = {0, 0};
  bool entity_floor = true;

  for (int flow = 0; flow < 2; ++flow) {
    const bool entity_flow = flow == 1;
    core::FlowOptions options;
    options.linguistic_analysis = !entity_flow;
    options.entity_annotation = entity_flow;
    dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);

    // Serial baseline at --dop (default 1): the reference bytes plus the
    // open/process split the shard runs divide.
    dataflow::ExecutorConfig serial_config;
    serial_config.dop = flags.dop;
    auto serial = core::RunFlow(plan, docs, serial_config);
    if (!serial.ok()) {
      std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
      return 1;
    }
    double serial_open = 0, serial_work = 0;
    for (const auto& s : serial->operator_stats) {
      serial_open += s.open_seconds;
      serial_work += s.process_seconds;
    }
    const std::string reference = sink_json(serial->sink_outputs);
    std::printf("%s flow, measured on real shards (%zu web docs; serial "
                "baseline dop=%zu: start-up %.3fs, processing %.3fs):\n",
                entity_flow ? "entity" : "linguistic", docs.size(), flags.dop,
                serial_open, serial_work);
    std::printf("  %-7s %10s %12s %12s %10s %9s %8s\n", "shards", "wall (s)",
                "max work(s)", "sum open(s)", "work-div", "rows-shfl",
                "identical");

    double open_first = 0, open_last = 0;
    std::vector<shard::ShardSkewRow> skew_at_max;
    for (size_t shards : flags.shards) {
      shard::ShardOptions shard_options;
      shard_options.num_shards = shards;
      shard_options.sequential_workers = !multicore;
      auto result = core::RunFlowSharded(env.context, options, docs,
                                         shard_options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      double max_work = 0, sum_open = 0;
      for (const auto& w : result->workers) {
        max_work = std::max(max_work, w.process_seconds);
        sum_open += w.open_seconds;
      }
      const bool identical = sink_json(result->sink_outputs) == reference;
      identical_everywhere &= identical;
      const double work_division = max_work > 0 ? serial_work / max_work : 0;
      const double wall_speedup =
          result->total_seconds > 0
              ? serial->total_seconds / result->total_seconds
              : 0;
      std::printf("  %-7zu %10.3f %12.3f %12.3f %9.1fx %9llu %8s\n", shards,
                  result->total_seconds, max_work, sum_open, work_division,
                  static_cast<unsigned long long>(result->rows_shuffled),
                  identical ? "yes" : "NO");
      if (shards == flags.shards.front()) open_first = sum_open;
      open_last = sum_open;
      if (shards == flags.shards.back()) skew_at_max = result->obs.skew;
      if (shards >= 4) {
        speedup_at_gate[flow] = std::max(speedup_at_gate[flow], work_division);
        wall_speedup_at_gate[flow] =
            std::max(wall_speedup_at_gate[flow], wall_speedup);
      }
      // The start-up floor: every shard pays its own Open(), so summed
      // start-up grows with the shard count instead of being amortized.
      if (entity_flow && shards > 1 && open_first > 0 &&
          sum_open < open_first) {
        entity_floor = false;
      }
    }
    if (entity_flow && open_last < 1e-3) {
      std::printf("  (per-shard start-up below measurement resolution at "
                  "bench-scale dictionaries; the floor is shown at paper "
                  "scale in the model overlay)\n");
    }
    // Per-shard skew at the largest shard count: how evenly the hash
    // partition divided the records (load balance is the mechanism behind
    // the near-linear work division above).
    if (!skew_at_max.empty()) {
      std::printf("  per-shard skew at %zu shards:\n", flags.shards.back());
      std::printf("    %-7s %12s %10s %10s\n", "shard", "records_in",
                  "proc (s)", "share");
      for (const auto& row : skew_at_max) {
        std::printf("    %-7d %12llu %10.3f %9.1f%%\n", row.shard,
                    static_cast<unsigned long long>(row.records_in),
                    row.process_seconds, 100 * row.share);
      }
    }
    std::printf("\n");
  }

  std::printf("summed per-shard start-up never shrinks with the shard count "
              "(every shard pays its own Open(); the dictionary load is a "
              "floor scale-out cannot amortize): %s\n",
              entity_floor ? "yes" : "no");

  // --- Cluster-scale curve with the paper's constants. This table is a
  // model overlay (NOT measured): the analytic law T(dop) = T_open +
  // T_work/dop + coordination evaluated at the paper's documented
  // constants, to place the measured shape on the paper's axes.
  const double kEntOpen = 1200.0;   // 20-minute gene dictionary load
  const double kEntWork = 26000.0;  // serial work, calibrated to Fig. 5's
                                    // ~8000 s at DoP 4
  const double kLingOpen = 15.0;
  const double kLingWork = 8200.0;  // ~8200 s at DoP 1 in Fig. 5

  std::printf("\nmodel overlay (not measured): 20 GB sample on the paper's "
              "cluster:\n");
  std::printf("%-6s %16s %16s\n", "DoP", "entity flow (s)", "linguistic (s)");
  const int dops[] = {1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156};
  double ent_t4 = 0, ling_t1 = 0, ent_t16 = 0, ling_t12 = 0, ent_t28 = 0;
  for (int dop : dops) {
    double coordination = 5.0 * std::log2(static_cast<double>(dop) + 1.0);
    double ent_t = kEntOpen + kEntWork / dop + coordination;
    double ling_t = kLingOpen + kLingWork / dop + coordination;
    bool ent_feasible = dop >= 4 && dop <= 28;
    if (ent_feasible) {
      std::printf("%-6d %16.0f %16.0f\n", dop, ent_t, ling_t);
    } else {
      std::printf("%-6d %16s %16.0f   (entity flow infeasible: %s)\n", dop,
                  "-", ling_t,
                  dop < 4 ? "excessive ML runtimes"
                          : "dictionary memory per worker");
    }
    if (dop == 4) ent_t4 = ent_t;
    if (dop == 1) ling_t1 = ling_t;
    if (dop == 16) ent_t16 = ent_t;
    if (dop == 12) ling_t12 = ling_t;
    if (dop == 28) ent_t28 = ent_t;
  }
  double ent_reduction = 1.0 - ent_t16 / ent_t4;
  double ling_reduction = 1.0 - ling_t12 / ling_t1;
  double marginal = 1.0 - ent_t28 / ent_t16;
  std::printf("\nentity flow reduction DoP 4 -> 16: %.0f%% (paper: up to "
              "72%%)\n", 100 * ent_reduction);
  std::printf("linguistic flow reduction DoP 1 -> 12: %.0f%% (paper: up to "
              "95%%)\n", 100 * ling_reduction);
  std::printf("further entity reduction 16 -> 28: %.0f%% (paper: 'only "
              "marginal further improvements')\n", 100 * marginal);

  bool model_ok = ent_reduction > 0.55 && ent_reduction < 0.85 &&
                  ling_reduction > 0.85 && marginal < ent_reduction / 2;

  // Gates. When no shard count >= 4 was requested the speedup gate is
  // vacuous (sweeps like --shards=1,2 still check byte-identity).
  bool any_gate = false;
  for (size_t s : flags.shards) any_gate |= s >= 4;
  bool speedup_ok = !any_gate;
  if (any_gate) {
    speedup_ok = speedup_at_gate[0] >= 3.0 && speedup_at_gate[1] >= 3.0;
    if (multicore) {
      speedup_ok = speedup_ok && wall_speedup_at_gate[0] >= 3.0 &&
                   wall_speedup_at_gate[1] >= 3.0;
    }
    std::printf("\nprocessing-phase speedup at 4+ shards: linguistic %.1fx, "
                "entity %.1fx (gate: >= 3x)\n",
                speedup_at_gate[0], speedup_at_gate[1]);
    if (multicore) {
      std::printf("wall-clock speedup at 4+ shards: linguistic %.1fx, "
                  "entity %.1fx (gate: >= 3x)\n",
                  wall_speedup_at_gate[0], wall_speedup_at_gate[1]);
    }
  }
  std::printf("sinks byte-identical to serial at every shard count: %s\n",
              identical_everywhere ? "yes" : "NO");

  bool ok = identical_everywhere && speedup_ok && entity_floor && model_ok;
  std::printf("\nFig. 5 shape (start-up floor caps entity scale-out; "
              "linguistic scales near-ideally): %s\n",
              ok ? "HOLDS" : "VIOLATED");

  bench::JsonSummary summary("fig5", flags);
  summary.Set("cores", static_cast<uint64_t>(cores));
  summary.Set("max_shards", static_cast<uint64_t>(flags.shards.back()));
  summary.Set("linguistic_work_division_x", speedup_at_gate[0]);
  summary.Set("entity_work_division_x", speedup_at_gate[1]);
  summary.Set("linguistic_wall_speedup_x", wall_speedup_at_gate[0]);
  summary.Set("entity_wall_speedup_x", wall_speedup_at_gate[1]);
  summary.Set("sinks_identical_everywhere", identical_everywhere);
  summary.Set("entity_startup_floor", entity_floor);
  summary.Set("model_entity_reduction_4_to_16", ent_reduction);
  summary.Set("model_linguistic_reduction_1_to_12", ling_reduction);
  summary.Set("gates_pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
