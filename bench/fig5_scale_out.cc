// Reproduces Fig. 5: scale-out of the linguistic and entity-extraction
// flows over a fixed 20 GB sample for increasing degree of parallelism.
// Paper findings to hold:
//  - entity flow: good scale-out until ~DoP 16 (runtime -72%), then flat —
//    the ~20-minute dictionary load is a start-up floor no DoP amortizes;
//  - linguistic flow: near-ideal until ~DoP 12 (-95%), negligible start-up;
//  - entity flow infeasible below DoP 4 (excessive ML runtimes) and above
//    DoP 28 (per-worker dictionary memory exceeds the 24 GB nodes).
//
// Method: this repo's flows run for real at bench scale and the executor
// reports per-operator start-up vs. processing seconds — establishing that
// (a) the dictionary build is a serial start-up cost and (b) processing
// parallelizes. The cluster-scale curve is then computed from the scaling
// law T(dop) = T_open + T_work/dop (+ coordination) with the paper's
// documented constants (20-minute dictionary load, 20 GB sample), because
// this machine has one core and scaled-down dictionaries (see DESIGN.md).

#include <cmath>

#include "bench_util.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Fig. 5: Scale-out of linguistic and entity flows",
                     "Figure 5");
  bench::BenchScale scale;
  scale.relevant_docs = 50;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 1;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& docs = env.corpora.at(corpus::CorpusKind::kRelevantWeb);

  // --- Real runs: split measured time into start-up vs processing.
  auto measure = [&](bool entity_flow) {
    core::FlowOptions options;
    options.linguistic_analysis = !entity_flow;
    options.entity_annotation = entity_flow;
    dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
    auto result = core::RunFlow(plan, docs, dataflow::ExecutorConfig{1, 0, 8});
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    double open = 0, process = 0;
    for (const auto& s : result->operator_stats) {
      open += s.open_seconds;
      process += s.process_seconds;
    }
    return std::pair<double, double>(open, process);
  };
  auto [ling_open, ling_work] = measure(false);
  auto [ent_open, ent_work] = measure(true);
  std::printf("measured at bench scale (%zu web docs):\n", docs.size());
  std::printf("  linguistic flow: start-up %.3fs, processing %.3fs "
              "(start-up share %.1f%%)\n",
              ling_open, ling_work, 100 * ling_open / (ling_open + ling_work));
  std::printf("  entity flow:     start-up %.3fs, processing %.3fs "
              "(start-up share %.1f%%)\n",
              ent_open, ent_work, 100 * ent_open / (ent_open + ent_work));
  bool startup_asymmetry = ent_open / (ent_open + ent_work) >
                           ling_open / (ling_open + ling_work);
  std::printf("  dictionary start-up dominates the entity flow's fixed cost:"
              " %s\n\n", startup_asymmetry ? "yes" : "no");

  // --- Cluster-scale curve with the paper's constants.
  const double kEntOpen = 1200.0;   // 20-minute gene dictionary load
  const double kEntWork = 26000.0;  // serial work, calibrated to Fig. 5's
                                    // ~8000 s at DoP 4
  const double kLingOpen = 15.0;
  const double kLingWork = 8200.0;  // ~8200 s at DoP 1 in Fig. 5

  std::printf("modeled 20 GB sample on the paper's cluster:\n");
  std::printf("%-6s %16s %16s\n", "DoP", "entity flow (s)", "linguistic (s)");
  const int dops[] = {1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156};
  double ent_t4 = 0, ling_t1 = 0, ent_t16 = 0, ling_t12 = 0, ent_t28 = 0;
  for (int dop : dops) {
    double coordination = 5.0 * std::log2(static_cast<double>(dop) + 1.0);
    double ent_t = kEntOpen + kEntWork / dop + coordination;
    double ling_t = kLingOpen + kLingWork / dop + coordination;
    bool ent_feasible = dop >= 4 && dop <= 28;
    if (ent_feasible) {
      std::printf("%-6d %16.0f %16.0f\n", dop, ent_t, ling_t);
    } else {
      std::printf("%-6d %16s %16.0f   (entity flow infeasible: %s)\n", dop,
                  "-", ling_t,
                  dop < 4 ? "excessive ML runtimes"
                          : "dictionary memory per worker");
    }
    if (dop == 4) ent_t4 = ent_t;
    if (dop == 1) ling_t1 = ling_t;
    if (dop == 16) ent_t16 = ent_t;
    if (dop == 12) ling_t12 = ling_t;
    if (dop == 28) ent_t28 = ent_t;
  }
  double ent_reduction = 1.0 - ent_t16 / ent_t4;
  double ling_reduction = 1.0 - ling_t12 / ling_t1;
  double marginal = 1.0 - ent_t28 / ent_t16;
  std::printf("\nentity flow reduction DoP 4 -> 16: %.0f%% (paper: up to "
              "72%%)\n", 100 * ent_reduction);
  std::printf("linguistic flow reduction DoP 1 -> 12: %.0f%% (paper: up to "
              "95%%)\n", 100 * ling_reduction);
  std::printf("further entity reduction 16 -> 28: %.0f%% (paper: 'only "
              "marginal further improvements')\n", 100 * marginal);

  bool ok = startup_asymmetry && ent_reduction > 0.55 &&
            ent_reduction < 0.85 && ling_reduction > 0.85 &&
            marginal < ent_reduction / 2;
  std::printf("\nFig. 5 shape (start-up floor caps entity scale-out; "
              "linguistic scales near-ideally): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
