// Sect. 4.2 war story, failure half: at web scale "some of the documents"
// always fail — tools crash, hosts time out, robots.txt flaps — and the
// paper's flows had to survive that without losing the rest of the batch.
// This benchmark demonstrates the two recovery mechanisms end to end:
//
//  1. Crawl kill-and-resume: a crawl checkpointing every batch is killed
//     after two batches, restored into a fresh process image, and finished.
//     The resumed run's CrawlDB, LinkDB, and harvest rate must be
//     byte-identical to an uninterrupted run under the same fault plan.
//
//  2. Executor task retry: a fused extraction plan whose middle operator
//     injects >= 5% transient faults must finish with zero lost records —
//     output bit-identical to the fault-free plan — by re-running only the
//     failed morsels.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "crawler/focused_crawler.h"
#include "dataflow/executor.h"
#include "dataflow/fault_injection.h"
#include "dataflow/operators_base.h"
#include "dataflow/plan.h"
#include "fault/fault_plan.h"
#include "web/simulated_web.h"

namespace {

using namespace wsie;

struct CrawlOutcome {
  std::string crawl_db;
  std::string link_db;
  crawler::CrawlStats stats;
};

CrawlOutcome RunCrawl(web::SyntheticWeb* graph,
                      const corpus::EntityLexicons* lexicons,
                      crawler::RelevanceClassifier* classifier,
                      const crawler::CrawlerConfig& config,
                      const std::vector<std::string>& seeds,
                      const std::string& resume_from) {
  fault::FaultPlanConfig plan_config;
  plan_config.seed = 20;
  plan_config.flaky_host_frac = 0.5;
  fault::FaultPlan plan(plan_config);
  web::SimulatedWeb sim(graph, lexicons);
  sim.set_fault_plan(&plan);
  crawler::FocusedCrawler crawler(&sim, classifier, config);
  if (resume_from.empty()) {
    crawler.InjectSeeds(seeds);
  } else {
    Status restored = crawler.RestoreCheckpoint(resume_from);
    if (!restored.ok()) {
      std::printf("checkpoint restore FAILED: %s\n",
                  restored.ToString().c_str());
      std::exit(1);
    }
  }
  crawler.Crawl();
  CrawlOutcome out;
  crawler.crawl_db().EncodeTo(&out.crawl_db);
  crawler.link_db().EncodeTo(&out.link_db);
  out.stats = crawler.stats();
  return out;
}

dataflow::Plan MakeExtractionPlan(
    std::shared_ptr<dataflow::FaultInjectingOperator>* fault_op,
    double transient_prob) {
  using dataflow::Dataset;
  using dataflow::Record;
  dataflow::Plan plan;
  int src = plan.AddSource("docs");
  int tokenize = plan.AddNode(
      std::make_shared<dataflow::FlatMapOperator>(
          "sentence_split",
          [](const Record& r, Dataset* out) {
            int64_t x = r.Field("x").AsInt();
            for (int64_t s = 0; s < 1 + x % 3; ++s) {
              Record copy = r;
              copy.SetField("sentence", s);
              out->push_back(std::move(copy));
            }
          }),
      {src});
  auto annotator = std::make_shared<dataflow::FaultInjectingOperator>(
      std::make_shared<dataflow::MapOperator>(
          "annotate",
          [](const Record& r) {
            Record copy = r;
            copy.SetField("entity",
                          r.Field("x").AsInt() * 31 + r.Field("sentence").AsInt());
            return copy;
          }),
      dataflow::FaultInjectionOptions{42, transient_prob, 0.0});
  if (fault_op != nullptr) *fault_op = annotator;
  int annotate = plan.AddNode(annotator, {tokenize});
  int keep = plan.AddNode(
      std::make_shared<dataflow::FilterOperator>(
          "keep_entities",
          [](const Record& r) { return r.Field("entity").AsInt() % 5 != 0; }),
      {annotate});
  plan.MarkSink(keep, "entities");
  return plan;
}

std::string RunExtraction(const dataflow::Plan& plan,
                          const std::map<std::string, dataflow::Dataset>& in,
                          int max_task_retries, uint64_t* retries_out) {
  dataflow::ExecutorConfig config;
  config.dop = 4;
  config.min_partition_records = 1;
  config.morsel_records = 16;
  config.fuse_pipelines = true;
  config.max_task_retries = max_task_retries;
  dataflow::Executor executor(config);
  auto result = executor.Run(plan, in);
  if (!result.ok()) {
    std::printf("extraction flow FAILED: %s\n",
                result.status().ToString().c_str());
    std::exit(1);
  }
  if (retries_out != nullptr) *retries_out = result->task_retries;
  std::string json;
  for (const dataflow::Record& r : result->sink_outputs.at("entities")) {
    json += r.ToJson();
    json += '\n';
  }
  return json;
}

}  // namespace

int main() {
  bench::PrintHeader("Sect. 4.2: Fault injection & recovery",
                     "Sect. 4.2 (failures at web scale; checkpointed crawls, "
                     "retried flows)");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 60;
  web_config.mean_pages_per_host = 10;
  web_config.seed = 13;
  web::SyntheticWeb graph(web_config);

  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 120;
  crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                          classifier_config);

  std::vector<std::string> seeds;
  for (const auto& page : graph.pages()) {
    if (seeds.size() >= 15) break;
    const auto& host = graph.HostOf(page);
    if ((host.topic == web::HostTopic::kBiomedPortal ||
         host.topic == web::HostTopic::kBiomedResearch) &&
        page.mime == lang::MimeClass::kHtml && page.relevant) {
      seeds.push_back(graph.UrlOf(page));
    }
  }

  // --- 1. Kill-and-resume crawl --------------------------------------
  crawler::CrawlerConfig config;
  config.num_fetch_threads = 4;
  config.max_pages = 250;

  CrawlOutcome uninterrupted = RunCrawl(&graph, &env.context->lexicons(),
                                        &classifier, config, seeds, "");

  std::string ckpt = "sec42_fault_recovery.ckpt";
  crawler::CrawlerConfig killed_config = config;
  killed_config.max_batches = 2;  // the "kill" point
  killed_config.checkpoint_every_batches = 1;
  killed_config.checkpoint_path = ckpt;
  CrawlOutcome killed = RunCrawl(&graph, &env.context->lexicons(), &classifier,
                                 killed_config, seeds, "");
  CrawlOutcome resumed = RunCrawl(&graph, &env.context->lexicons(), &classifier,
                                  config, seeds, ckpt);
  std::remove(ckpt.c_str());

  std::printf("crawl under faults: %llu pages, %llu faults injected, "
              "%llu retries, %llu fetch errors\n",
              static_cast<unsigned long long>(uninterrupted.stats.fetched),
              static_cast<unsigned long long>(uninterrupted.stats.fetch_faults),
              static_cast<unsigned long long>(
                  uninterrupted.stats.fetch_retries),
              static_cast<unsigned long long>(
                  uninterrupted.stats.fetch_errors));
  std::printf("killed after %llu batches (%llu pages), resumed to %llu\n",
              static_cast<unsigned long long>(killed.stats.batches),
              static_cast<unsigned long long>(killed.stats.fetched),
              static_cast<unsigned long long>(resumed.stats.fetched));
  bool crawl_db_identical = uninterrupted.crawl_db == resumed.crawl_db;
  bool link_db_identical = uninterrupted.link_db == resumed.link_db;
  bool harvest_identical =
      uninterrupted.stats.HarvestRate() == resumed.stats.HarvestRate();
  bench::PrintCompare("resumed CrawlDB vs uninterrupted", "byte-identical",
                      crawl_db_identical ? "byte-identical" : "DIVERGED");
  bench::PrintCompare("resumed LinkDB vs uninterrupted", "byte-identical",
                      link_db_identical ? "byte-identical" : "DIVERGED");
  bench::PrintCompare(
      "resumed harvest rate", FormatDouble(
          100 * uninterrupted.stats.HarvestRate(), 2) + "%",
      FormatDouble(100 * resumed.stats.HarvestRate(), 2) + "%");

  // --- 2. Fused flow under >= 5% transient faults --------------------
  dataflow::Dataset docs;
  for (int64_t i = 0; i < 2000; ++i) {
    dataflow::Record r;
    r.SetField("x", i);
    docs.push_back(std::move(r));
  }
  std::map<std::string, dataflow::Dataset> inputs;
  inputs.emplace("docs", std::move(docs));

  std::string clean = RunExtraction(MakeExtractionPlan(nullptr, 0.0), inputs,
                                    0, nullptr);
  std::shared_ptr<dataflow::FaultInjectingOperator> fault_op;
  dataflow::Plan faulty_plan = MakeExtractionPlan(&fault_op, 0.05);
  uint64_t task_retries = 0;
  std::string faulty = RunExtraction(faulty_plan, inputs, 3, &task_retries);

  std::printf("\nfused flow: %llu transient faults injected, "
              "%llu task retries\n",
              static_cast<unsigned long long>(fault_op->transient_failures()),
              static_cast<unsigned long long>(task_retries));
  bool zero_lost = faulty == clean;
  bench::PrintCompare("records lost to faults", "0",
                      zero_lost ? "0 (output bit-identical)" : "RECORDS LOST");

  bool ok = crawl_db_identical && link_db_identical && harvest_identical &&
            uninterrupted.stats.fetch_faults > 0 &&
            uninterrupted.stats.fetch_retries > 0 &&
            killed.stats.fetched < uninterrupted.stats.fetched &&
            fault_op->transient_failures() > 0 && task_retries > 0 &&
            zero_lost;
  std::printf("\nSect. 4.2 recovery shape (kill-resume byte-identical, "
              "fused flow loses zero records at >=5%% faults): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
