// Reproduces Fig. 7: incidence of named entity annotations per document /
// per 1000 sentences in the four corpora, plus the Sect. 4.3.2 TLA-filter
// effect on ML gene names. Paper per-1000-sentence means:
//   disease: rel 128.49, irrel 4.57, medline 204.92, pmc 117.51
//   drug:    rel  97.83, irrel 6.85, medline 293.95, pmc 275.95
//   gene(d): rel 128.23, irrel 4.39, medline 415.58, pmc  74.12
// and the TLA filter shrank distinct ML gene names 5.5M -> 2.3M (-58%).

#include <filesystem>

#include "bench_util.h"
#include "common/string_util.h"
#include "serve/query_engine.h"

int main(int argc, char** argv) {
  using namespace wsie;
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Fig. 7: Entity annotations per corpus",
                     "Figure 7 and Sect. 4.3.2");
  bench::BenchEnv env = bench::MakeBenchEnv();

  std::string store_dir =
      (std::filesystem::temp_directory_path() / "wsie_fig7_store").string();
  std::filesystem::remove_all(store_dir);
  auto store_or = store::AnnotationStore::Open(store_dir);
  if (!store_or.ok()) return 1;
  auto store = *store_or;

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) {
    analyses.emplace(kind,
                     bench::AnalyzeCorpusIntoStore(env, kind, store.get()));
  }
  if (!store->Compact().ok()) return 1;
  serve::QueryEngine engine(store);

  // The persisted store must reproduce the Fig. 7 incidence numbers with
  // bit-for-bit equality (same counts, same float evaluation order).
  bool store_exact = true;
  for (auto kind : kinds) {
    const auto& analysis = analyses.at(kind);
    int corpus_index = static_cast<int>(kind);
    for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
      for (size_t method = 0; method < core::kNumMethods; ++method) {
        double served = engine
                            .CorpusFrequency(corpus_index,
                                             static_cast<int>(type),
                                             static_cast<int>(method))
                            .per_1000_sentences;
        if (served != analysis.EntitiesPer1000Sentences(type, method))
          store_exact = false;
      }
      double served_all =
          engine.CorpusFrequency(corpus_index, static_cast<int>(type))
              .per_1000_sentences;
      if (served_all != analysis.EntitiesPer1000SentencesAllMethods(type))
        store_exact = false;
    }
  }

  // Per-1000-sentence means: dict+ML combined for disease/drug (as the
  // paper reports), dictionary-only for genes.
  struct PaperMeans {
    double rel, irrel, medl, pmc;
  };
  const PaperMeans paper_disease = {128.49, 4.57, 204.92, 117.51};
  const PaperMeans paper_drug = {97.83, 6.85, 293.95, 275.95};
  const PaperMeans paper_gene_dict = {128.23, 4.39, 415.58, 74.12};

  auto print_type = [&](const char* label, size_t type, bool dict_only,
                        const PaperMeans& paper) {
    std::printf("\n%s annotations per 1000 sentences:\n", label);
    std::printf("%-18s %12s %12s\n", "corpus", "measured", "paper");
    const double paper_values[] = {paper.rel, paper.irrel, paper.medl,
                                   paper.pmc};
    int i = 0;
    for (auto kind : kinds) {
      const auto& a = analyses.at(kind);
      double value = dict_only ? a.EntitiesPer1000Sentences(type, 0)
                               : a.EntitiesPer1000SentencesAllMethods(type) / 2;
      std::printf("%-18s %12.2f %12.2f\n", corpus::CorpusKindName(kind), value,
                  paper_values[i++]);
    }
  };
  // The paper's combined means average both methods; dividing the dict+ML
  // sum by 2 gives the comparable per-method mean.
  print_type("Disease", 2, false, paper_disease);
  print_type("Drug", 1, false, paper_drug);
  print_type("Gene (dictionary)", 0, true, paper_gene_dict);

  // TLA filter ablation on the relevant web corpus.
  core::FlowOptions unfiltered;
  unfiltered.linguistic_analysis = false;
  unfiltered.entity_types = {ie::EntityType::kGene};
  core::FlowOptions filtered = unfiltered;
  filtered.tla_filter = true;
  auto run = [&](const core::FlowOptions& options) {
    dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
    auto result =
        core::RunFlow(plan, env.corpora.at(corpus::CorpusKind::kRelevantWeb),
                      dataflow::ExecutorConfig{2, 0, 8});
    return core::AnalyzeRecords(corpus::CorpusKind::kRelevantWeb,
                                result->sink_outputs.at("analyzed"));
  };
  auto before = run(unfiltered);
  auto after = run(filtered);
  std::printf("\nTLA filter on ML gene names (relevant crawl):\n");
  std::printf("  distinct ML gene names before filter: %zu\n",
              before.DistinctNames(0, 1));
  std::printf("  distinct ML gene names after filter:  %zu\n",
              after.DistinctNames(0, 1));
  std::printf("  paper: 5.5M -> 2.3M distinct names (-58%%)\n");

  // Shape checks.
  bool ok = true;
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
    const auto& irrel = analyses.at(corpus::CorpusKind::kIrrelevantWeb);
    if (rel.EntitiesPer1000Sentences(type, 0) <=
        4 * irrel.EntitiesPer1000Sentences(type, 0)) {
      ok = false;
    }
  }
  if (after.DistinctNames(0, 1) >= before.DistinctNames(0, 1)) ok = false;
  std::printf("\nStore-served per-1000-sentence incidence bit-identical to "
              "in-memory analysis: %s\n",
              store_exact ? "EXACT" : "MISMATCH");
  std::printf("Fig. 7 shape (rel >> irrel; TLA filter shrinks ML genes): %s\n",
              ok ? "HOLDS" : "VIOLATED");

  bench::JsonSummary summary("fig7", flags);
  summary.Set("gene_dict_rel_per1000",
              analyses.at(corpus::CorpusKind::kRelevantWeb)
                  .EntitiesPer1000Sentences(0, 0));
  summary.Set("gene_dict_irrel_per1000",
              analyses.at(corpus::CorpusKind::kIrrelevantWeb)
                  .EntitiesPer1000Sentences(0, 0));
  summary.Set("gene_dict_medline_per1000",
              analyses.at(corpus::CorpusKind::kMedline)
                  .EntitiesPer1000Sentences(0, 0));
  summary.Set("gene_dict_pmc_per1000",
              analyses.at(corpus::CorpusKind::kPmc)
                  .EntitiesPer1000Sentences(0, 0));
  summary.Set("tla_distinct_before",
              static_cast<uint64_t>(before.DistinctNames(0, 1)));
  summary.Set("tla_distinct_after",
              static_cast<uint64_t>(after.DistinctNames(0, 1)));
  summary.Set("store_exact", store_exact);
  summary.Set("gates_pass", ok && store_exact);
  summary.Write();
  return (ok && store_exact) ? 0 : 1;
}
