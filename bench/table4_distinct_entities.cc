// Reproduces Table 4: number of distinct entity names by corpus and method.
// Paper shapes to hold: (a) ML-based annotation produces substantially more
// distinct names than dictionary-based annotation for every corpus/type;
// (b) the relevant crawl yields far more distinct names than the irrelevant
// crawl for every type.
//
// This harness also runs the persistence path: every analysis flow streams
// its annotations into an on-disk AnnotationStore (via StoreSink), the
// store is compacted, and the table is re-derived from the store through
// the query engine — every count must match the in-memory analysis
// exactly. The "All" rows use the combined-distinct union (a name found by
// both dict and ML counts once), not the dict+ML sum.

#include <filesystem>

#include "bench_util.h"
#include "serve/query_engine.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Table 4: Number of distinct entity names by corpus",
                     "Table 4");
  bench::BenchEnv env = bench::MakeBenchEnv();

  std::string store_dir =
      (std::filesystem::temp_directory_path() / "wsie_table4_store").string();
  std::filesystem::remove_all(store_dir);
  auto store_or = store::AnnotationStore::Open(store_dir);
  if (!store_or.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  auto store = *store_or;

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) {
    analyses.emplace(kind,
                     bench::AnalyzeCorpusIntoStore(env, kind, store.get()));
  }
  // Fold the four per-corpus segments into one and serve from the result.
  if (!store->Compact().ok()) return 1;
  serve::QueryEngine engine(store);

  std::printf("%-18s %-6s %10s %10s %10s\n", "Data set", "Method", "Disease",
              "Drug", "Gene");
  for (auto kind : kinds) {
    const auto& analysis = analyses.at(kind);
    std::printf("%-18s %-6s %10zu %10zu %10zu\n",
                corpus::CorpusKindName(kind), "Dict.",
                analysis.DistinctNames(2, 0), analysis.DistinctNames(1, 0),
                analysis.DistinctNames(0, 0));
    std::printf("%-18s %-6s %10zu %10zu %10zu\n", "", "ML",
                analysis.DistinctNames(2, 1), analysis.DistinctNames(1, 1),
                analysis.DistinctNames(0, 1));
    std::printf("%-18s %-6s %10zu %10zu %10zu\n", "", "All",
                analysis.DistinctNamesAllMethods(2),
                analysis.DistinctNamesAllMethods(1),
                analysis.DistinctNamesAllMethods(0));
  }

  // The persisted store must reproduce every cell exactly.
  bool store_exact = true;
  for (auto kind : kinds) {
    const auto& analysis = analyses.at(kind);
    int corpus_index = static_cast<int>(kind);
    for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
      for (size_t method = 0; method < core::kNumMethods; ++method) {
        auto frequency = engine.CorpusFrequency(
            corpus_index, static_cast<int>(type), static_cast<int>(method));
        if (frequency.distinct_names != analysis.DistinctNames(type, method))
          store_exact = false;
      }
      auto all = engine.CorpusFrequency(corpus_index, static_cast<int>(type));
      if (all.distinct_names != analysis.DistinctNamesAllMethods(type))
        store_exact = false;
    }
  }
  std::printf("\nStore-served distinct counts match in-memory analysis: %s\n",
              store_exact ? "EXACT" : "MISMATCH");

  bool ml_exceeds_dict = true, rel_exceeds_irrel = true;
  const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
  const auto& irrel = analyses.at(corpus::CorpusKind::kIrrelevantWeb);
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    for (auto kind : kinds) {
      const auto& a = analyses.at(kind);
      if (a.DistinctNames(type, 1) < a.DistinctNames(type, 0))
        ml_exceeds_dict = false;
    }
    if (rel.DistinctNames(type, 0) <= irrel.DistinctNames(type, 0))
      rel_exceeds_irrel = false;
    if (rel.DistinctNames(type, 1) <= irrel.DistinctNames(type, 1))
      rel_exceeds_irrel = false;
  }
  std::printf("ML >= dictionary distinct names everywhere: %s\n",
              ml_exceeds_dict ? "HOLDS" : "VIOLATED");
  std::printf("Relevant > irrelevant distinct names everywhere: %s\n",
              rel_exceeds_irrel ? "HOLDS" : "VIOLATED");
  return (ml_exceeds_dict && rel_exceeds_irrel && store_exact) ? 0 : 1;
}
