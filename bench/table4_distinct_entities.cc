// Reproduces Table 4: number of distinct entity names by corpus and method.
// Paper shapes to hold: (a) ML-based annotation produces substantially more
// distinct names than dictionary-based annotation for every corpus/type;
// (b) the relevant crawl yields far more distinct names than the irrelevant
// crawl for every type.

#include "bench_util.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Table 4: Number of distinct entity names by corpus",
                     "Table 4");
  bench::BenchEnv env = bench::MakeBenchEnv();

  const corpus::CorpusKind kinds[] = {
      corpus::CorpusKind::kRelevantWeb, corpus::CorpusKind::kIrrelevantWeb,
      corpus::CorpusKind::kMedline, corpus::CorpusKind::kPmc};
  std::map<corpus::CorpusKind, core::CorpusAnalysis> analyses;
  for (auto kind : kinds) analyses.emplace(kind, bench::AnalyzeCorpus(env, kind));

  std::printf("%-18s %-6s %10s %10s %10s\n", "Data set", "Method", "Disease",
              "Drug", "Gene");
  for (auto kind : kinds) {
    const auto& analysis = analyses.at(kind);
    std::printf("%-18s %-6s %10zu %10zu %10zu\n",
                corpus::CorpusKindName(kind), "Dict.",
                analysis.DistinctNames(2, 0), analysis.DistinctNames(1, 0),
                analysis.DistinctNames(0, 0));
    std::printf("%-18s %-6s %10zu %10zu %10zu\n", "", "ML",
                analysis.DistinctNames(2, 1), analysis.DistinctNames(1, 1),
                analysis.DistinctNames(0, 1));
  }

  bool ml_exceeds_dict = true, rel_exceeds_irrel = true;
  const auto& rel = analyses.at(corpus::CorpusKind::kRelevantWeb);
  const auto& irrel = analyses.at(corpus::CorpusKind::kIrrelevantWeb);
  for (size_t type = 0; type < core::kNumEntityTypes; ++type) {
    for (auto kind : kinds) {
      const auto& a = analyses.at(kind);
      if (a.DistinctNames(type, 1) < a.DistinctNames(type, 0))
        ml_exceeds_dict = false;
    }
    if (rel.DistinctNames(type, 0) <= irrel.DistinctNames(type, 0))
      rel_exceeds_irrel = false;
    if (rel.DistinctNames(type, 1) <= irrel.DistinctNames(type, 1))
      rel_exceeds_irrel = false;
  }
  std::printf("\nML >= dictionary distinct names everywhere: %s\n",
              ml_exceeds_dict ? "HOLDS" : "VIOLATED");
  std::printf("Relevant > irrelevant distinct names everywhere: %s\n",
              rel_exceeds_irrel ? "HOLDS" : "VIOLATED");
  return (ml_exceeds_dict && rel_exceeds_irrel) ? 0 : 1;
}
