// Reproduces Table 1 and the Sect. 2.2 seed-generation experience:
// keyword-category budgets, multi-engine querying, and the two seed runs —
// the small first run (166/468/325/246 terms -> 45,227 seeds) whose crawl
// frontier emptied quickly, and the full run (500/5000/4000/6500 terms ->
// 485,462 seeds). Shape to hold: the full budget yields a several-fold
// larger seed list, and a crawl from the small list dies far earlier.

#include "bench_util.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Table 1: Seed generation by keyword category",
                     "Table 1 and Sect. 2.2");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 300;
  web_config.mean_pages_per_host = 18;
  web_config.seed = 5;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &env.context->lexicons());

  auto run = [&](const crawler::SeedQueryBudget& budget, const char* label) {
    web::SearchEngineFederation engines(&sim);
    crawler::SeedGenerator generator(&env.context->lexicons(), &engines);
    auto report = generator.Generate(budget);
    std::printf("\n%s\n", label);
    std::printf("%-18s %10s %10s %10s %10s\n", "Category", "requested",
                "used", "queries", "urls");
    for (const auto& cat : report.categories) {
      std::printf("%-18s %10zu %10zu %10zu %10zu\n", cat.category.c_str(),
                  cat.terms_requested, cat.terms_used, cat.queries_issued,
                  cat.urls_found);
    }
    std::printf("unique seed URLs: %zu (queries rejected over budget: %zu)\n",
                report.seed_urls.size(), report.queries_rejected);
    return report.seed_urls;
  };

  // Budgets are scaled 1:10 to match the scaled-down lexicons (the paper's
  // term pools come from full-size public resources).
  auto small_seeds = run(crawler::SeedQueryBudget{17, 47, 33, 25},
                         "First crawl (bracketed subset of Table 1, scaled "
                         "1:10; paper: 45,227 seeds):");
  auto full_seeds = run(crawler::SeedQueryBudget{50, 500, 400, 650},
                        "Full run (Table 1 budgets, scaled 1:10; paper: "
                        "485,462 seeds):");

  // Crawl both seed lists and compare how far the frontier carries.
  crawler::ClassifierTrainConfig classifier_config;
  classifier_config.docs_per_class = 120;
  classifier_config.relevance_threshold = 0.5;
  crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                          classifier_config);
  auto crawl = [&](const std::vector<std::string>& seeds) {
    crawler::CrawlerConfig config;
    config.max_pages = 3000;
    crawler::FocusedCrawler crawler(&sim, &classifier, config);
    crawler.InjectSeeds(seeds);
    crawler.Crawl();
    return crawler.stats().fetched;
  };
  uint64_t small_crawl = crawl(small_seeds);
  uint64_t full_crawl = crawl(full_seeds);
  std::printf("\ncrawl size from first-run seeds: %llu pages (frontier "
              "emptied)\n", static_cast<unsigned long long>(small_crawl));
  std::printf("crawl size from full seeds:      %llu pages\n",
              static_cast<unsigned long long>(full_crawl));

  bool ok = full_seeds.size() > 2 * small_seeds.size() &&
            full_crawl >= small_crawl;
  std::printf("\nTable 1 / Sect. 2.2 shape (bigger seed budget -> several-"
              "fold more seeds -> larger crawl): %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
