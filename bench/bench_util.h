#ifndef WSIE_BENCH_BENCH_UTIL_H_
#define WSIE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis_context.h"
#include "core/analytics.h"
#include "core/pipeline.h"
#include "corpus/text_generator.h"
#include "obs/metrics.h"
#include "store/annotation_store.h"

namespace wsie::bench {

/// Default per-corpus document counts for the table/figure harnesses.
/// Paper scale is ~4.2M / 17.7M / 21.7M / 0.25M documents; these defaults
/// keep every bench binary in the seconds range while preserving the
/// relative corpus sizes' orderings. Override via the WSIE_BENCH_SCALE
/// environment variable (a multiplier).
struct BenchScale {
  size_t relevant_docs = 50;
  size_t irrelevant_docs = 90;
  size_t medline_docs = 250;
  size_t pmc_docs = 35;
  size_t crf_training_sentences = 700;
  size_t pos_training_sentences = 1000;
};

/// Reads WSIE_BENCH_SCALE (default 1.0) and scales the defaults.
BenchScale ReadBenchScale();

/// Command-line knobs for the scale benches, so fig4/fig5 sweep without
/// recompiling: --dop=N sets the executor degree of parallelism and
/// --shards=1,2,4,8 the shard counts fig5 runs. --profile[=path] arms the
/// SIGPROF sampling profiler for the whole run and writes folded stacks
/// (flamegraph.pl input) at exit, default ./profile.folded. Unknown
/// arguments are rejected with usage on stderr (exit 2), so a typo cannot
/// silently run the defaults.
struct BenchFlags {
  size_t dop = 8;
  std::vector<size_t> shards = {1, 2, 4, 8};
  bool profile = false;
  std::string profile_path = "profile.folded";
  /// --json=PATH overrides the default BENCH_<name>.json summary path;
  /// --json=none suppresses the file.
  std::string json_path;
};

/// Parses --dop / --shards over `defaults`.
BenchFlags ParseBenchFlags(int argc, char** argv, BenchFlags defaults = {});

/// Shared state for the analysis benches: one trained context plus the four
/// generated corpora.
struct BenchEnv {
  std::shared_ptr<const core::AnalysisContext> context;
  std::map<corpus::CorpusKind, std::vector<corpus::Document>> corpora;
  BenchScale scale;
};

/// Builds the context (training the taggers) and generates all four corpora.
BenchEnv MakeBenchEnv(BenchScale scale = ReadBenchScale());

/// Runs the full analysis flow over one corpus and returns its analysis.
core::CorpusAnalysis AnalyzeCorpus(const BenchEnv& env,
                                   corpus::CorpusKind kind,
                                   size_t dop = 2);

/// AnalyzeCorpus with a StoreSink attached: the same flow run also streams
/// its annotations into `annotations` as one new segment, so benches can
/// verify the persisted store reproduces the in-memory analysis exactly.
core::CorpusAnalysis AnalyzeCorpusIntoStore(const BenchEnv& env,
                                            corpus::CorpusKind kind,
                                            store::AnnotationStore* annotations,
                                            size_t dop = 2);

/// One flat JSON summary per bench run, written to BENCH_<name>.json in
/// the working directory (the path every fig bench shares with CI scripts)
/// unless --json=PATH redirects it or --json=none suppresses it. Keys keep
/// insertion order; values are numbers, booleans, or escaped strings.
class JsonSummary {
 public:
  /// `name` is the bench's short name ("fig7_semantic" -> file
  /// BENCH_fig7_semantic.json); `flags` supplies the --json override.
  JsonSummary(std::string name, const BenchFlags& flags);

  void Set(const std::string& key, double value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, bool value);
  void Set(const std::string& key, const std::string& value);

  /// Writes the file (no-op under --json=none) and reports the path on
  /// stdout. Returns false (after printing to stderr) when the write fails.
  bool Write() const;

 private:
  void SetRaw(const std::string& key, std::string encoded);

  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Prints a rule line and a centered title.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Prints "  paper: <a>   measured: <b>" comparison lines.
void PrintCompare(const std::string& what, const std::string& paper,
                  const std::string& measured);

// --- Registry-backed timing. Benches read executor timings from the
// observability registry where a metric exists, instead of wrapping every
// run in a local Stopwatch.

/// Snapshot of the process-wide registry (shorthand).
obs::MetricsSnapshot SnapshotRegistry();

/// Wall seconds spent in dataflow Run() calls since `before`, read from the
/// wsie.dataflow.run.wall_ns histogram sum. Returns 0 when metrics are
/// compiled out or disabled — callers fall back to a local Stopwatch then.
double RunWallSecondsSince(const obs::MetricsSnapshot& before);

/// Prints a Fig. 3-style per-operator runtime table straight from the
/// registry's wsie.dataflow.operator.* counters (share of total process
/// time, records in/out). `min_share` drops sub-threshold operators.
void PrintRegistryOperatorRuntimes(const obs::MetricsSnapshot& snapshot,
                                   double min_share = 0.0);

}  // namespace wsie::bench

#endif  // WSIE_BENCH_BENCH_UTIL_H_
