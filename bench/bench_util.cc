#include "bench_util.h"

#include <cstdlib>

namespace wsie::bench {

BenchScale ReadBenchScale() {
  BenchScale scale;
  const char* env = std::getenv("WSIE_BENCH_SCALE");
  if (env != nullptr) {
    double factor = std::strtod(env, nullptr);
    if (factor > 0) {
      scale.relevant_docs = static_cast<size_t>(scale.relevant_docs * factor);
      scale.irrelevant_docs =
          static_cast<size_t>(scale.irrelevant_docs * factor);
      scale.medline_docs = static_cast<size_t>(scale.medline_docs * factor);
      scale.pmc_docs = static_cast<size_t>(scale.pmc_docs * factor);
    }
  }
  return scale;
}

BenchEnv MakeBenchEnv(BenchScale scale) {
  BenchEnv env;
  env.scale = scale;
  core::AnalysisContextConfig config;
  config.crf_training_sentences = scale.crf_training_sentences;
  config.pos_training_sentences = scale.pos_training_sentences;
  env.context = std::make_shared<const core::AnalysisContext>(config);

  auto generate = [&](corpus::CorpusKind kind, size_t n, uint64_t seed) {
    corpus::TextGenerator generator(&env.context->lexicons(),
                                    corpus::ProfileFor(kind), seed);
    env.corpora[kind] = generator.GenerateCorpus(seed * 100000, n);
  };
  generate(corpus::CorpusKind::kRelevantWeb, scale.relevant_docs, 1);
  generate(corpus::CorpusKind::kIrrelevantWeb, scale.irrelevant_docs, 2);
  generate(corpus::CorpusKind::kMedline, scale.medline_docs, 3);
  generate(corpus::CorpusKind::kPmc, scale.pmc_docs, 4);
  return env;
}

core::CorpusAnalysis AnalyzeCorpus(const BenchEnv& env,
                                   corpus::CorpusKind kind, size_t dop) {
  core::FlowOptions options;
  dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
  auto result = core::RunFlow(plan, env.corpora.at(kind),
                              dataflow::ExecutorConfig{dop, 0, 8});
  if (!result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return core::AnalyzeRecords(kind, result->sink_outputs.at("analyzed"));
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("============================================================\n");
}

void PrintCompare(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::printf("%-46s paper: %-18s here: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace wsie::bench
