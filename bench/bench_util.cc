#include "bench_util.h"

#include <algorithm>
#include <cstdlib>

#include "obs/profiler.h"
#include "store/store_sink.h"

namespace wsie::bench {
namespace {

// --profile state: the atexit hook needs the output path after main ends.
std::string* ProfilePath() {
  static std::string* path = new std::string();
  return path;
}

void StopProfilerAtExit() {
  auto& profiler = obs::Profiler::Global();
  profiler.Stop();
  const std::string& path = *ProfilePath();
  Status written = profiler.WriteFolded(path);
  if (!written.ok()) {
    std::fprintf(stderr, "profile write failed: %s\n",
                 written.ToString().c_str());
    return;
  }
  std::fprintf(stderr,
               "profile: %llu samples (%llu dropped) -> %s "
               "(feed to flamegraph.pl)\n",
               static_cast<unsigned long long>(profiler.samples()),
               static_cast<unsigned long long>(profiler.dropped()),
               path.c_str());
}

}  // namespace

BenchScale ReadBenchScale() {
  BenchScale scale;
  const char* env = std::getenv("WSIE_BENCH_SCALE");
  if (env != nullptr) {
    double factor = std::strtod(env, nullptr);
    if (factor > 0) {
      scale.relevant_docs = static_cast<size_t>(scale.relevant_docs * factor);
      scale.irrelevant_docs =
          static_cast<size_t>(scale.irrelevant_docs * factor);
      scale.medline_docs = static_cast<size_t>(scale.medline_docs * factor);
      scale.pmc_docs = static_cast<size_t>(scale.pmc_docs * factor);
    }
  }
  return scale;
}

BenchFlags ParseBenchFlags(int argc, char** argv, BenchFlags defaults) {
  BenchFlags flags = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dop=", 0) == 0) {
      const long value = std::strtol(arg.c_str() + 6, nullptr, 10);
      if (value > 0) flags.dop = static_cast<size_t>(value);
      continue;
    }
    if (arg.rfind("--shards=", 0) == 0) {
      std::vector<size_t> shards;
      const char* p = arg.c_str() + 9;
      while (*p != '\0') {
        char* end = nullptr;
        const long value = std::strtol(p, &end, 10);
        if (end == p) break;
        if (value > 0) shards.push_back(static_cast<size_t>(value));
        p = (*end == ',') ? end + 1 : end;
      }
      if (!shards.empty()) flags.shards = std::move(shards);
      continue;
    }
    if (arg == "--profile" || arg.rfind("--profile=", 0) == 0) {
      flags.profile = true;
      if (arg.size() > 10 && arg[9] == '=') {
        flags.profile_path = arg.substr(10);
      }
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
      continue;
    }
    std::fprintf(stderr,
                 "unknown argument '%s'\nusage: %s [--dop=N] "
                 "[--shards=N1,N2,...] [--profile[=path]] [--json=PATH|none]\n",
                 arg.c_str(), argv[0]);
    std::exit(2);
  }
  if (flags.profile) {
    *ProfilePath() = flags.profile_path;
    Status started = obs::Profiler::Global().Start();
    if (!started.ok()) {
      std::fprintf(stderr, "profiler start failed: %s\n",
                   started.ToString().c_str());
      std::exit(2);
    }
    std::atexit(StopProfilerAtExit);
  }
  return flags;
}

BenchEnv MakeBenchEnv(BenchScale scale) {
  BenchEnv env;
  env.scale = scale;
  core::AnalysisContextConfig config;
  config.crf_training_sentences = scale.crf_training_sentences;
  config.pos_training_sentences = scale.pos_training_sentences;
  env.context = std::make_shared<const core::AnalysisContext>(config);

  auto generate = [&](corpus::CorpusKind kind, size_t n, uint64_t seed) {
    corpus::TextGenerator generator(&env.context->lexicons(),
                                    corpus::ProfileFor(kind), seed);
    env.corpora[kind] = generator.GenerateCorpus(seed * 100000, n);
  };
  generate(corpus::CorpusKind::kRelevantWeb, scale.relevant_docs, 1);
  generate(corpus::CorpusKind::kIrrelevantWeb, scale.irrelevant_docs, 2);
  generate(corpus::CorpusKind::kMedline, scale.medline_docs, 3);
  generate(corpus::CorpusKind::kPmc, scale.pmc_docs, 4);
  return env;
}

core::CorpusAnalysis AnalyzeCorpus(const BenchEnv& env,
                                   corpus::CorpusKind kind, size_t dop) {
  core::FlowOptions options;
  dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
  auto result = core::RunFlow(plan, env.corpora.at(kind),
                              dataflow::ExecutorConfig{dop, 0, 8});
  if (!result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return core::AnalyzeRecords(kind, result->sink_outputs.at("analyzed"));
}

core::CorpusAnalysis AnalyzeCorpusIntoStore(const BenchEnv& env,
                                            corpus::CorpusKind kind,
                                            store::AnnotationStore* annotations,
                                            size_t dop) {
  core::FlowOptions options;
  dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
  auto sink = std::make_shared<store::StoreSink>();
  if (store::AttachStoreSink(&plan, sink) == dataflow::Plan::kInvalidNode) {
    std::fprintf(stderr, "no 'analyzed' sink to attach the store to\n");
    std::exit(1);
  }
  auto result = core::RunFlow(plan, env.corpora.at(kind),
                              dataflow::ExecutorConfig{dop, 0, 8});
  if (!result.ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  Status flushed = sink->FlushTo(annotations);
  if (!flushed.ok()) {
    std::fprintf(stderr, "store flush failed: %s\n",
                 flushed.ToString().c_str());
    std::exit(1);
  }
  return core::AnalyzeRecords(kind, result->sink_outputs.at("analyzed"));
}

JsonSummary::JsonSummary(std::string name, const BenchFlags& flags) {
  if (flags.json_path == "none") {
    path_.clear();
  } else if (!flags.json_path.empty()) {
    path_ = flags.json_path;
  } else {
    path_ = "BENCH_" + name + ".json";
  }
}

void JsonSummary::SetRaw(const std::string& key, std::string encoded) {
  for (auto& entry : entries_) {
    if (entry.first == key) {
      entry.second = std::move(encoded);
      return;
    }
  }
  entries_.emplace_back(key, std::move(encoded));
}

void JsonSummary::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  SetRaw(key, buf);
}

void JsonSummary::Set(const std::string& key, uint64_t value) {
  SetRaw(key, std::to_string(value));
}

void JsonSummary::Set(const std::string& key, int64_t value) {
  SetRaw(key, std::to_string(value));
}

void JsonSummary::Set(const std::string& key, bool value) {
  SetRaw(key, value ? "true" : "false");
}

void JsonSummary::Set(const std::string& key, const std::string& value) {
  std::string encoded = "\"";
  for (const char c : value) {
    switch (c) {
      case '"':
        encoded += "\\\"";
        break;
      case '\\':
        encoded += "\\\\";
        break;
      case '\n':
        encoded += "\\n";
        break;
      case '\t':
        encoded += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          encoded += buf;
        } else {
          encoded.push_back(c);
        }
    }
  }
  encoded.push_back('"');
  SetRaw(key, std::move(encoded));
}

bool JsonSummary::Write() const {
  if (path_.empty()) return true;  // --json=none
  std::string body = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    body += "  \"" + entries_[i].first + "\": " + entries_[i].second;
    if (i + 1 < entries_.size()) body += ",";
    body += "\n";
  }
  body += "}\n";
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench summary: cannot open %s\n", path_.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "bench summary: short write to %s\n", path_.c_str());
    return false;
  }
  std::printf("bench summary -> %s\n", path_.c_str());
  return true;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(reproduces %s)\n", paper_ref.c_str());
  std::printf("============================================================\n");
}

void PrintCompare(const std::string& what, const std::string& paper,
                  const std::string& measured) {
  std::printf("%-46s paper: %-18s here: %s\n", what.c_str(), paper.c_str(),
              measured.c_str());
}

obs::MetricsSnapshot SnapshotRegistry() {
  return obs::MetricsRegistry::Global().Snapshot();
}

double RunWallSecondsSince(const obs::MetricsSnapshot& before) {
  const char* kMetric = "wsie.dataflow.run.wall_ns";
  const obs::HistogramSnapshot* now =
      SnapshotRegistry().FindHistogram(kMetric);
  if (now == nullptr) return 0.0;
  const obs::HistogramSnapshot* prior = before.FindHistogram(kMetric);
  double prior_sum = prior == nullptr ? 0.0 : prior->sum;
  return (now->sum - prior_sum) / 1e9;
}

void PrintRegistryOperatorRuntimes(const obs::MetricsSnapshot& snapshot,
                                   double min_share) {
  // Counter names carry the operator as a label:
  //   wsie.dataflow.operator.process_ns{op="annotate_gene_ml"}
  const std::string kPrefix = "wsie.dataflow.operator.process_ns{op=\"";
  struct Row {
    std::string op;
    uint64_t process_ns;
  };
  std::vector<Row> rows;
  double total_ns = 0;
  for (const obs::CounterSnapshot& c : snapshot.counters) {
    if (c.name.rfind(kPrefix, 0) != 0) continue;
    std::string op = c.name.substr(kPrefix.size());
    if (op.size() >= 2) op.resize(op.size() - 2);  // strip trailing "}
    rows.push_back({std::move(op), c.value});
    total_ns += static_cast<double>(c.value);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.process_ns > b.process_ns; });
  std::printf("%-28s %12s %8s %14s %14s\n", "operator (registry)", "proc s",
              "share", "records in", "records out");
  for (const Row& row : rows) {
    double share =
        total_ns <= 0 ? 0.0 : static_cast<double>(row.process_ns) / total_ns;
    if (share < min_share) continue;
    uint64_t in = snapshot.CounterValue(
        obs::WithLabel("wsie.dataflow.operator.records_in", "op", row.op));
    uint64_t out = snapshot.CounterValue(
        obs::WithLabel("wsie.dataflow.operator.records_out", "op", row.op));
    std::printf("%-28s %12.3f %7.1f%% %14llu %14llu\n", row.op.c_str(),
                static_cast<double>(row.process_ns) / 1e9, 100 * share,
                static_cast<unsigned long long>(in),
                static_cast<unsigned long long>(out));
  }
}

}  // namespace wsie::bench
