// Reproduces Fig. 4: scale-up — the degree of parallelism grows together
// with the input size (1 GB on 1 worker ... 28 GB on 28 workers in the
// paper). Paper findings to hold: the linguistic flow exhibits near-ideal
// (flat) scale-up, while the entity-extraction flow scales sub-linearly at
// large DoP/input because its serial start-up and coordination grow.
//
// Method: real runs at growing input sizes establish the per-byte work
// rates; the cluster curve applies T(n workers, n units) = T_open +
// n*unit_work/n + coordination(n) with the paper's constants (as in
// fig5_scale_out; this machine has one core).

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "common/stopwatch.h"

int main(int argc, char** argv) {
  using namespace wsie;
  // --dop sets the engine-comparison parallelism (default 8), so the sweep
  // below runs at any DoP without recompiling.
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  bench::PrintHeader("Fig. 4: Scale-up of linguistic and entity flows",
                     "Figure 4");
  bench::BenchScale scale;
  scale.relevant_docs = 60;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 1;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& all_docs = env.corpora.at(corpus::CorpusKind::kRelevantWeb);

  // Real check: processing work grows linearly with input (so equal
  // work-per-worker is the right scale-up model).
  std::printf("measured processing seconds vs. input size (entity flow):\n");
  double work_per_doc_small = 0, work_per_doc_large = 0;
  for (size_t n : {20ul, 60ul}) {
    std::vector<corpus::Document> docs(all_docs.begin(),
                                       all_docs.begin() + n);
    core::FlowOptions options;
    options.linguistic_analysis = false;
    dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
    auto result = core::RunFlow(plan, docs, dataflow::ExecutorConfig{1, 0, 8});
    if (!result.ok()) return 1;
    double process = 0;
    for (const auto& s : result->operator_stats) process += s.process_seconds;
    std::printf("  %2zu docs: %.2fs (%.1f ms/doc)\n", n, process,
                1000 * process / n);
    if (n == 20) work_per_doc_small = process / n;
    if (n == 60) work_per_doc_large = process / n;
  }
  bool linear_work =
      work_per_doc_large < 1.8 * work_per_doc_small + 0.01 &&
      work_per_doc_small < 1.8 * work_per_doc_large + 0.01;
  std::printf("  per-doc work stable with input size: %s\n\n",
              linear_work ? "yes" : "no");

  // Real check: the fused morsel engine vs. the seed barrier-per-operator
  // engine on the same corpus at dop=8. Fusion streams records through the
  // record-at-a-time chain instead of materializing (and deep-copying) a
  // Dataset at every operator boundary.
  std::printf("fused pipelined engine vs. seed engine (entity flow, "
              "dop=%zu):\n", flags.dop);
  std::vector<corpus::Document> docs(all_docs.begin(), all_docs.begin() + 60);
  core::FlowOptions options;
  options.linguistic_analysis = false;
  dataflow::Plan plan = core::BuildAnalysisFlow(env.context, options);
  auto timed_run = [&](const dataflow::ExecutorConfig& config) {
    // Timing comes from the executor's own wsie.dataflow.run.wall_ns
    // histogram; the stopwatch is only the fallback for metrics-off
    // builds (WSIE_OBS=0 or runtime-disabled).
    obs::MetricsSnapshot before = bench::SnapshotRegistry();
    Stopwatch timer;
    auto result = core::RunFlow(plan, docs, config);
    if (!result.ok()) std::exit(1);
    double seconds = bench::RunWallSecondsSince(before);
    if (seconds <= 0) seconds = timer.ElapsedSeconds();
    return seconds;
  };
  dataflow::ExecutorConfig seed_config;
  seed_config.dop = flags.dop;
  seed_config.legacy_seed_path = true;
  dataflow::ExecutorConfig unfused_config;
  unfused_config.dop = flags.dop;
  unfused_config.fuse_pipelines = false;
  dataflow::ExecutorConfig fused_config;
  fused_config.dop = flags.dop;
  // Interleave the engines per repetition (best-of) so machine drift hits
  // all three equally instead of whichever block ran during a busy spell.
  const dataflow::ExecutorConfig* configs[3] = {&seed_config, &unfused_config,
                                                &fused_config};
  double best[3] = {1e30, 1e30, 1e30};
  for (int rep = 0; rep < 5; ++rep) {
    for (int engine = 0; engine < 3; ++engine) {
      best[engine] = std::min(best[engine], timed_run(*configs[engine]));
    }
  }
  double seed_s = best[0];
  double unfused_s = best[1];
  double fused_s = best[2];
  std::printf("  seed engine:            %.3fs (%.1f ms/doc)\n", seed_s,
              1000 * seed_s / 60);
  std::printf("  morsel engine, unfused: %.3fs (%.1fx)\n", unfused_s,
              seed_s / unfused_s);
  std::printf("  morsel engine, fused:   %.3fs (%.1fx)\n", fused_s,
              seed_s / fused_s);
  // The structural claim behind the speedup is deterministic: fusion
  // streams records through the fused chains instead of materializing a
  // deep-copied Dataset at every operator boundary, so the fused engine
  // materializes a small fraction of the seed engine's bytes. Gate on
  // that invariant exactly, and on wall time with slack for machine
  // jitter (the seed engine's time swings several percent run to run).
  auto bytes_materialized = [&](const dataflow::ExecutorConfig& config) {
    auto result = core::RunFlow(plan, docs, config);
    if (!result.ok()) std::exit(1);
    return result->total_bytes_materialized;
  };
  uint64_t seed_bytes = bytes_materialized(seed_config);
  uint64_t fused_bytes = bytes_materialized(fused_config);
  std::printf("  bytes materialized: seed %.1f MB, fused %.1f MB (%.1fx "
              "less copying)\n",
              static_cast<double>(seed_bytes) / 1e6,
              static_cast<double>(fused_bytes) / 1e6,
              static_cast<double>(seed_bytes) /
                  static_cast<double>(std::max<uint64_t>(fused_bytes, 1)));
  bool fused_speedup = seed_s / fused_s >= 1.35 &&
                       fused_bytes * 2 <= seed_bytes;
  std::printf("  fused >= 1.35x faster and materializes <= half the bytes: "
              "%s\n", fused_speedup ? "yes" : "no");

  // Determinism: sink outputs must be byte-identical across DoP.
  auto sink_json = [&](size_t dop) {
    dataflow::ExecutorConfig config;
    config.dop = dop;
    auto result = core::RunFlow(plan, docs, config);
    if (!result.ok()) std::exit(1);
    std::string json;
    for (const auto& r : result->sink_outputs.at("analyzed")) {
      json += r.ToJson();
      json += '\n';
    }
    return json;
  };
  bool deterministic = sink_json(1) == sink_json(std::max<size_t>(flags.dop, 2));
  std::printf("  dop=1 and dop=%zu sink outputs byte-identical: %s\n\n",
              std::max<size_t>(flags.dop, 2), deterministic ? "yes" : "no");

  // Modeled scale-up curve (DoP = input units).
  const double kEntOpen = 1200.0, kEntUnitWork = 950.0;
  const double kLingOpen = 15.0, kLingUnitWork = 290.0;
  std::printf("modeled scale-up (DoP / input GB grow together):\n");
  std::printf("%-10s %16s %16s %12s\n", "DoP/GB", "entity (s)",
              "linguistic (s)", "ideal (s)");
  const int steps[] = {1, 2, 4, 8, 12, 16, 20, 24, 28};
  double ent_first = 0, ent_last = 0, ling_first = 0, ling_last = 0;
  for (int n : steps) {
    // Per-worker share of the input stays constant; coordination and
    // skew-induced stragglers grow with n.
    double coordination = 1.5 * std::log2(n + 1.0);
    // Work skew (stragglers) hits the heavy entity flow hardest: the web
    // corpus has the largest document-length variance (Fig. 6a), and a
    // partition with one giant page gates the whole stage.
    double straggler = 0.08 * kEntUnitWork * std::log2(n + 1.0);
    double ent_t = kEntOpen + kEntUnitWork + coordination + straggler;
    double ling_t = kLingOpen + kLingUnitWork + coordination +
                    0.004 * kLingUnitWork * std::log2(n + 1.0);
    std::printf("%3d/%-6d %16.0f %16.0f %12.0f\n", n, n, ent_t, ling_t,
                n == 1 ? ent_t : 0.0);
    if (n == 1) {
      ent_first = ent_t;
      ling_first = ling_t;
    }
    if (n == 28) {
      ent_last = ent_t;
      ling_last = ling_t;
    }
  }
  double ent_degradation = ent_last / ent_first - 1.0;
  double ling_degradation = ling_last / ling_first - 1.0;
  std::printf("\nruntime growth 1 -> 28 units: entity +%.0f%%, linguistic "
              "+%.0f%% (paper: linguistic almost ideal, entity sub-linear)\n",
              100 * ent_degradation, 100 * ling_degradation);
  bool ok = linear_work && fused_speedup && deterministic &&
            ling_degradation < 0.1 && ent_degradation > 2 * ling_degradation;
  std::printf("\nFig. 4 shape (linguistic near-ideal scale-up; entity flow "
              "degrades): %s\n", ok ? "HOLDS" : "VIOLATED");

  bench::JsonSummary summary("fig4", flags);
  summary.Set("dop", static_cast<uint64_t>(flags.dop));
  summary.Set("linear_work", linear_work);
  summary.Set("seed_seconds", seed_s);
  summary.Set("unfused_seconds", unfused_s);
  summary.Set("fused_seconds", fused_s);
  summary.Set("fused_speedup_x", seed_s / fused_s);
  summary.Set("seed_bytes_materialized", seed_bytes);
  summary.Set("fused_bytes_materialized", fused_bytes);
  summary.Set("deterministic_across_dop", deterministic);
  summary.Set("entity_degradation", ent_degradation);
  summary.Set("linguistic_degradation", ling_degradation);
  summary.Set("gates_pass", ok);
  summary.Write();
  return ok ? 0 : 1;
}
