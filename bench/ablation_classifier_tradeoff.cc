// Ablation (Sect. 5, "Trade-off between precision and yield in focused
// crawling"): sweeps the relevance classifier's decision threshold and the
// follow-irrelevant-links margin n, reporting crawl yield, harvest rate,
// and classifier precision for each setting. Paper hypothesis revisited:
// the high-precision model starves the frontier; more recall (or a
// follow-margin) buys a larger crawl at lower purity.

#include "bench_util.h"
#include "common/string_util.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main() {
  using namespace wsie;
  bench::PrintHeader(
      "Ablation: classifier threshold and follow-irrelevant margin",
      "Sect. 5 trade-off discussion and Sect. 2.2 n-step alternative");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 120;
  web_config.mean_pages_per_host = 12;
  web_config.seed = 8;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &env.context->lexicons());
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&env.context->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{40, 80, 60, 80});
  std::printf("seeds: %zu\n\n", seeds.seed_urls.size());

  struct Row {
    double threshold;
    int margin;
    uint64_t fetched;
    uint64_t relevant;
    double harvest;
    double precision;
  };
  std::vector<Row> rows;
  for (double threshold : {0.95, 0.8, 0.5, 0.2}) {
    for (int margin : {0, 1, 2}) {
      crawler::ClassifierTrainConfig classifier_config;
      classifier_config.docs_per_class = 150;
      classifier_config.relevance_threshold = threshold;
      crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                              classifier_config);
      crawler::CrawlerConfig config;
      config.max_pages = 1500;
      config.follow_irrelevant_margin = margin;
      crawler::FocusedCrawler crawler(&sim, &classifier, config);
      crawler.InjectSeeds(seeds.seed_urls);
      crawler.Crawl();
      const auto& stats = crawler.stats();
      rows.push_back(Row{threshold, margin, stats.fetched,
                         stats.classified_relevant, stats.HarvestRate(),
                         stats.classification_vs_truth.Precision()});
    }
  }

  std::printf("%-10s %-7s %10s %10s %10s %11s\n", "threshold", "margin",
              "fetched", "relevant", "harvest", "precision");
  for (const auto& row : rows) {
    std::printf("%-10.2f %-7d %10llu %10llu %9.1f%% %10.1f%%\n",
                row.threshold, row.margin,
                static_cast<unsigned long long>(row.fetched),
                static_cast<unsigned long long>(row.relevant),
                100 * row.harvest, 100 * row.precision);
  }

  // Shape checks: with threshold fixed, larger margins fetch more pages;
  // with margin fixed at 0, lower thresholds classify more pages relevant.
  auto find = [&](double threshold, int margin) -> const Row& {
    for (const auto& row : rows) {
      if (row.threshold == threshold && row.margin == margin) return row;
    }
    return rows[0];
  };
  bool margin_grows = find(0.95, 2).fetched >= find(0.95, 0).fetched &&
                      find(0.5, 2).fetched >= find(0.5, 0).fetched;
  bool recall_grows_yield =
      find(0.2, 0).relevant >= find(0.95, 0).relevant;
  std::printf("\nmargin n>0 grows the crawl (Sect. 2.2 alternative): %s\n",
              margin_grows ? "HOLDS" : "VIOLATED");
  std::printf("lower threshold yields more (but less pure) relevant pages: "
              "%s\n", recall_grows_yield ? "HOLDS" : "VIOLATED");
  return (margin_grows && recall_grows_yield) ? 0 : 1;
}
