// Query throughput of the serving layer under an actively compacting
// store: one writer keeps appending segments, the background compactor
// keeps folding them, and N reader threads hammer the query engine with a
// mixed workload. Snapshot isolation means not a single query may fail or
// observe a regression while segments are swapped underneath. QPS and
// latency quantiles are read from the wsie.serve.query.latency_ns
// histogram — the same numbers the obs exporters ship.
//
// Reader count defaults to the machine's hardware concurrency; override
// with --readers=N (or the WSIE_QPS_THREADS env knob), the window with
// --seconds=N (or WSIE_QPS_SECONDS, default 2).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/query_engine.h"
#include "store/annotation_store.h"

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

size_t FlagSize(int argc, char** argv, const char* name, size_t fallback) {
  const size_t name_len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, name_len) != 0 ||
        argv[i][name_len] != '=') {
      continue;
    }
    long parsed = std::strtol(argv[i] + name_len + 1, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsie;
  const size_t hw = std::thread::hardware_concurrency();
  const size_t default_readers = EnvSize("WSIE_QPS_THREADS", hw > 0 ? hw : 1);
  const size_t num_readers =
      FlagSize(argc, argv, "--readers", default_readers);
  const size_t seconds =
      FlagSize(argc, argv, "--seconds", EnvSize("WSIE_QPS_SECONDS", 2));
  bench::PrintHeader("Store query throughput under active compaction",
                     "serving-layer microbench");

  std::string dir =
      (std::filesystem::temp_directory_path() / "wsie_micro_store_qps")
          .string();
  std::filesystem::remove_all(dir);
  auto store_or = store::AnnotationStore::Open(dir);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  auto store = *store_or;

  // Seed segment so readers always have a hit target.
  auto make_segment = [](uint64_t round) {
    store::SegmentBuilder builder;
    for (uint64_t t = 0; t < 50; ++t) {
      store::Posting posting{round * 50 + t, static_cast<uint32_t>(t % 7),
                             static_cast<uint32_t>(t), static_cast<uint32_t>(t + 4)};
      builder.Add("gene" + std::to_string((round * 13 + t) % 400), 0, 0,
                  t % 2 == 0 ? 0 : 1, posting);
      builder.Add("anchor", 0, 0, 0, posting);
    }
    builder.AddCorpusStats(0, 1, 25, 900);
    return builder;
  };
  if (!store->Append(make_segment(0)).ok()) return 1;

  obs::MetricsRegistry::Global().Reset();
  serve::QueryEngine engine(store);
  store::BackgroundCompactor compactor(store, /*min_segments=*/4,
                                       std::chrono::milliseconds(2));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_queries{0};
  std::atomic<uint64_t> failed_queries{0};

  std::thread writer([&] {
    uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!store->Append(make_segment(round++)).ok()) ++failed_queries;
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  std::vector<std::thread> readers;
  std::vector<uint64_t> per_thread_queries(num_readers, 0);
  for (size_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      uint64_t queries = 0, failures = 0, last_anchor = 0, i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++i;
        switch (i % 4) {
          case 0: {
            auto lookup = engine.Lookup("anchor");
            // "anchor" only ever gains postings; going backwards would
            // mean a torn segment-set install.
            if (!lookup.found || lookup.count < last_anchor) ++failures;
            last_anchor = lookup.count;
            break;
          }
          case 1:
            if (engine.TopK(5).empty()) ++failures;
            break;
          case 2:
            if (engine.CorpusFrequency(0, 0, 0).sentences == 0) ++failures;
            break;
          default:
            engine.PrefixScan("gene1", 10);
            if ((r & 1) != 0) engine.CoOccurrence("anchor", "gene7");
            break;
        }
        ++queries;
      }
      per_thread_queries[r] = queries;
      total_queries.fetch_add(queries);
      failed_queries.fetch_add(failures);
    });
  }

  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  stop = true;
  writer.join();
  for (auto& reader : readers) reader.join();
  compactor.Stop();
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* latency =
      snapshot.FindHistogram("wsie.serve.query.latency_ns");
  double qps = static_cast<double>(total_queries.load()) / elapsed;
  std::printf("readers: %zu, window: %.1f s, compactions: %llu, "
              "live segments at end: %zu\n",
              num_readers, elapsed,
              static_cast<unsigned long long>(compactor.compactions_run()),
              store->num_segments());
  std::printf("queries: %llu  (%.0f QPS aggregate)\n",
              static_cast<unsigned long long>(total_queries.load()), qps);
  for (size_t r = 0; r < num_readers; ++r) {
    std::printf("  reader %zu: %llu queries  (%.0f QPS)\n", r,
                static_cast<unsigned long long>(per_thread_queries[r]),
                static_cast<double>(per_thread_queries[r]) / elapsed);
  }
  if (latency != nullptr && latency->count > 0) {
    std::printf("latency p50: %.1f us   p99: %.1f us   (n=%llu from "
                "wsie.serve.query.latency_ns)\n",
                latency->Quantile(0.5) / 1e3, latency->Quantile(0.99) / 1e3,
                static_cast<unsigned long long>(latency->count));
  }
  std::printf("failed queries: %llu\n",
              static_cast<unsigned long long>(failed_queries.load()));
  bool ok = failed_queries.load() == 0 && total_queries.load() > 0 &&
            compactor.compactions_run() > 0;
  std::printf("\nConcurrent serving under compaction, zero failures: %s\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
