// Ablation (Sect. 5, "Crawling and text analytics as a consolidated
// process"): the paper proposes feeding IE results back into the crawl
// classifier, "as the occurrence of gene names or disease names are strong
// indicators for biomedical content". This bench implements that proposal
// (EntityDensitySignal blended into the relevance decision) and compares
// crawl quality with and without it, including under a deliberately
// weakened text classifier (tiny training set), where the IE signal must
// carry more of the decision.

#include "bench_util.h"
#include "core/ie_feedback.h"
#include "crawler/focused_crawler.h"
#include "crawler/seed_generator.h"
#include "web/search_engine.h"
#include "web/simulated_web.h"

int main() {
  using namespace wsie;
  bench::PrintHeader("Ablation: consolidated crawl+IE relevance feedback",
                     "Sect. 5 (future-work proposal, implemented)");
  bench::BenchScale scale;
  scale.relevant_docs = scale.irrelevant_docs = scale.medline_docs =
      scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);

  web::WebConfig web_config;
  web_config.num_hosts = 130;
  web_config.mean_pages_per_host = 13;
  web_config.seed = 9;
  web::SyntheticWeb graph(web_config);
  web::SimulatedWeb sim(&graph, &env.context->lexicons());
  web::SearchEngineFederation engines(&sim);
  crawler::SeedGenerator seeder(&env.context->lexicons(), &engines);
  auto seeds = seeder.Generate(crawler::SeedQueryBudget{40, 90, 70, 90});
  std::printf("seeds: %zu\n\n", seeds.seed_urls.size());

  core::EntityDensitySignal signal(env.context);

  struct Row {
    const char* classifier;
    bool feedback;
    double harvest, precision, recall;
    uint64_t relevant;
  };
  std::vector<Row> rows;
  for (size_t docs_per_class : {250ul, 3ul}) {  // strong vs starved classifier
    crawler::ClassifierTrainConfig classifier_config;
    classifier_config.docs_per_class = docs_per_class;
    classifier_config.relevance_threshold = 0.5;
    crawler::RelevanceClassifier classifier(&env.context->lexicons(),
                                            classifier_config);
    for (bool feedback : {false, true}) {
      crawler::CrawlerConfig config;
      config.max_pages = 1500;
      if (feedback) {
        config.ie_feedback = &signal;
        config.ie_feedback_weight = 0.6;
      }
      crawler::FocusedCrawler crawler(&sim, &classifier, config);
      crawler.InjectSeeds(seeds.seed_urls);
      crawler.Crawl();
      const auto& stats = crawler.stats();
      rows.push_back(Row{docs_per_class == 250 ? "strong" : "starved", feedback,
                         stats.HarvestRate(),
                         stats.classification_vs_truth.Precision(),
                         stats.classification_vs_truth.Recall(),
                         stats.classified_relevant});
    }
  }

  std::printf("%-12s %-10s %9s %11s %9s %10s\n", "classifier", "feedback",
              "harvest", "precision", "recall", "relevant");
  for (const auto& row : rows) {
    std::printf("%-12s %-10s %8.1f%% %10.1f%% %8.1f%% %10llu\n",
                row.classifier, row.feedback ? "on" : "off",
                100 * row.harvest, 100 * row.precision, 100 * row.recall,
                static_cast<unsigned long long>(row.relevant));
  }

  // Shape: with the weak classifier, IE feedback must improve the F1 of the
  // crawl decisions; with the strong classifier it must not hurt much.
  auto f1 = [](const Row& row) {
    return (row.precision + row.recall) == 0
               ? 0.0
               : 2 * row.precision * row.recall /
                     (row.precision + row.recall);
  };
  double strong_off = f1(rows[0]), strong_on = f1(rows[1]);
  double weak_off = f1(rows[2]), weak_on = f1(rows[3]);
  std::printf("\nF1 of crawl decisions: strong %0.3f -> %0.3f with feedback; "
              "weak %0.3f -> %0.3f with feedback\n",
              strong_off, strong_on, weak_off, weak_on);
  bool ok = weak_on >= weak_off - 0.02 && strong_on >= strong_off - 0.05 &&
            (weak_on > weak_off + 0.01 || weak_off > 0.95);
  std::printf("\nconsolidated-IE ablation (feedback helps a weak classifier, "
              "does not hurt a strong one): %s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
