// Ablation (DESIGN.md #4): the SOFA-style logical optimizer. Builds a
// deliberately mis-ordered UDF chain (expensive annotators before cheap
// selective filters), then compares estimated and measured runtimes with
// the optimizer off and on.

#include "bench_util.h"
#include "common/stopwatch.h"
#include "dataflow/executor.h"
#include "dataflow/operators_base.h"
#include "dataflow/optimizer.h"

int main() {
  using namespace wsie;
  using dataflow::Record;
  bench::PrintHeader("Ablation: SOFA-style logical optimization",
                     "Sect. 3.1 (logical optimization, [23])");
  bench::BenchScale scale;
  scale.relevant_docs = 1;
  scale.irrelevant_docs = 1;
  scale.medline_docs = 120;
  scale.pmc_docs = 1;
  bench::BenchEnv env = bench::MakeBenchEnv(scale);
  const auto& docs = env.corpora.at(corpus::CorpusKind::kMedline);

  // A mis-ordered flow: annotate everything, then keep only documents that
  // mention "cancer" (selective, cheap, commutes with the annotators).
  auto build_plan = [&] {
    dataflow::Plan plan;
    int node = plan.AddSource("docs");
    node = plan.AddNode(core::MakeAnnotateSentences(env.context), {node});
    node = plan.AddNode(core::MakeAnnotatePos(env.context), {node});
    node = plan.AddNode(
        core::MakeAnnotateEntitiesMl(env.context, ie::EntityType::kGene),
        {node});
    dataflow::OperatorTraits filter_traits;
    filter_traits.reads = {core::kFieldText};
    filter_traits.selectivity = 0.2;
    filter_traits.cost_per_record = 0.2;
    node = plan.AddNode(
        std::make_shared<dataflow::FilterOperator>(
            "filter_mentions_cancer",
            [](const Record& r) {
              return r.Field(core::kFieldText).AsString().find("cancer") !=
                     std::string::npos;
            },
            filter_traits),
        {node});
    plan.MarkSink(node, "out");
    return plan;
  };

  dataflow::Executor executor(dataflow::ExecutorConfig{1, 0, 8});
  auto run = [&](dataflow::Plan& plan) {
    Stopwatch sw;
    auto result = executor.Run(
        plan, {{"docs", core::DocumentsToRecords(docs)}});
    double seconds = sw.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return std::pair<double, size_t>(seconds,
                                     result->sink_outputs.at("out").size());
  };

  dataflow::Plan naive = build_plan();
  auto [naive_seconds, naive_out] = run(naive);

  dataflow::Plan optimized = build_plan();
  dataflow::Optimizer optimizer;
  auto report = optimizer.Optimize(&optimized);
  auto [optimized_seconds, optimized_out] = run(optimized);

  std::printf("reorderings applied: %zu\n", report.steps.size());
  for (const auto& step : report.steps) {
    std::printf("  moved '%s' ahead of '%s'\n", step.moved_earlier.c_str(),
                step.moved_later.c_str());
  }
  std::printf("estimated chain cost: %.0f -> %.0f\n",
              report.estimated_cost_before, report.estimated_cost_after);
  std::printf("measured runtime:     %.3fs -> %.3fs (%.1fx)\n", naive_seconds,
              optimized_seconds,
              optimized_seconds > 0 ? naive_seconds / optimized_seconds : 0.0);
  std::printf("result cardinality:   %zu -> %zu (must be equal)\n", naive_out,
              optimized_out);

  bool ok = !report.steps.empty() && naive_out == optimized_out &&
            report.estimated_cost_after < report.estimated_cost_before &&
            optimized_seconds < naive_seconds * 1.05;
  std::printf("\noptimizer ablation (filter pushed ahead of UDFs, same "
              "result, faster): %s\n", ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
